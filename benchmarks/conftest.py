"""Shared benchmark fixtures: reduced-scale regeneration of Figs. 3-7.

Every figure/table of the paper's evaluation has a bench module in this
directory.  The sweeps behind Figs. 3-6 are executed once per session
(session-scoped fixtures) at a reduced repetition count and reused by the
figure benches; the printed tables put the measured series next to the
paper's reported numbers.

Scaling knobs (environment variables):

``REPRO_BENCH_REPS``
    Repetitions per grid point (default 2; the paper used 50).
``REPRO_BENCH_IP_BUDGET``
    IDDE-IP's per-trial search budget in seconds (default 0.6; the paper
    capped CPLEX at 100 s).
``REPRO_BENCH_WORKERS``
    Worker processes for trial execution (default: CPUs − 1).

Artifacts: each bench writes its markdown tables to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.settings import SET1, SET2, SET3, SET4
from repro.experiments.sweep import SweepResult, run_sweep
from repro.parallel import ParallelConfig

OUT_DIR = Path(__file__).parent / "out"

BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "2"))
BENCH_IP_BUDGET = float(os.environ.get("REPRO_BENCH_IP_BUDGET", "0.6"))
_workers_env = os.environ.get("REPRO_BENCH_WORKERS")
BENCH_WORKERS = int(_workers_env) if _workers_env else None


def write_artifact(name: str, content: str) -> Path:
    """Persist a bench's markdown output under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(content)
    return path


def _sweep(settings) -> SweepResult:
    return run_sweep(
        settings,
        reps=BENCH_REPS,
        seed=0,
        ip_time_budget_s=BENCH_IP_BUDGET,
        parallel=ParallelConfig(n_workers=BENCH_WORKERS),
    )


@pytest.fixture(scope="session")
def set1_sweep() -> SweepResult:
    return _sweep(SET1)


@pytest.fixture(scope="session")
def set2_sweep() -> SweepResult:
    return _sweep(SET2)


@pytest.fixture(scope="session")
def set3_sweep() -> SweepResult:
    return _sweep(SET3)


@pytest.fixture(scope="session")
def set4_sweep() -> SweepResult:
    return _sweep(SET4)
