"""Fig. 7 — computation time per approach across all four sets.

Two views:

* the sweep-measured per-set average solve times (the figure's content),
  printed against the paper's reported averages;
* direct pytest-benchmark timings of each approach on the default
  instance (N=30, M=200, K=5, density=1.0), which is what the benchmark
  table of this module shows.
"""

from io import StringIO

import pytest

from repro.core.instance import IDDEInstance
from repro.experiments.figures import PAPER
from repro.experiments.report import render_timing_markdown
from repro.experiments.runner import build_solver, TrialSpec

from conftest import write_artifact, BENCH_IP_BUDGET

DEFAULT = TrialSpec(ip_time_budget_s=BENCH_IP_BUDGET)


def test_fig7_timing_table(benchmark, set1_sweep, set2_sweep, set3_sweep, set4_sweep):
    results = [set1_sweep, set2_sweep, set3_sweep, set4_sweep]
    benchmark(render_timing_markdown, results)
    out = StringIO()
    out.write("## Fig. 7 — computation time (s)\n\n")
    out.write(render_timing_markdown(results))
    out.write("\n### Cross-set averages vs paper\n\n")
    out.write("| approach | measured (s) | paper (s) |\n|---|---|---|\n")
    for name in results[0].solver_names:
        measured = sum(r.average(name, "time_s") for r in results) / len(results)
        out.write(
            f"| {name} | {measured:.4f} | {PAPER['computation_time_s'][name]:.4f} |\n"
        )
    out.write(
        "\n(The IDDE-IP budget is scaled down from the paper's 100 s cap "
        f"to {BENCH_IP_BUDGET} s; its *relative* cost ordering is the claim "
        "under test.)\n"
    )
    report = out.getvalue()
    write_artifact("fig7_computation_time.md", report)
    print("\n" + report)

    # The figure's orderings: IDDE-IP far slowest; CDP fastest of all;
    # SAA the slowest pure heuristic.
    for result in results:
        times = {s: result.average(s, "time_s") for s in result.solver_names}
        assert max(times, key=times.get) == "IDDE-IP", times
        heuristics = {s: t for s, t in times.items() if s != "IDDE-IP"}
        assert min(heuristics, key=heuristics.get) in ("CDP", "DUP-G"), times


@pytest.mark.parametrize("name", ["IDDE-G", "SAA", "CDP", "DUP-G"])
def test_fig7_heuristic_benchmark(benchmark, name):
    """Direct timing of each heuristic on the default instance."""
    instance = IDDEInstance.generate(n=30, m=200, k=5, density=1.0, seed=0)
    solver = build_solver(name, DEFAULT)
    strategy = benchmark.pedantic(
        solver.solve, args=(instance,), kwargs={"rng": 0}, rounds=3, iterations=1
    )
    assert strategy.r_avg > 0


def test_fig7_idde_ip_benchmark(benchmark):
    """IDDE-IP's cost is its budget by construction — one round suffices."""
    instance = IDDEInstance.generate(n=30, m=200, k=5, density=1.0, seed=0)
    solver = build_solver("IDDE-IP", DEFAULT)
    strategy = benchmark.pedantic(
        solver.solve, args=(instance,), kwargs={"rng": 0}, rounds=1, iterations=1
    )
    assert strategy.wall_time_s >= BENCH_IP_BUDGET * 0.9
