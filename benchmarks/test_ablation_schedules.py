"""Ablation A3 — best-response update schedules for the IDDE-U game.

Algorithm 1's literal loop elects one winning update per round
("best-gain-winner"); the package defaults to the faster round-robin
sweep.  This bench shows that the schedules reach equilibria of the same
quality while costing very different wall time — justifying the default.
"""

from io import StringIO
import time

import numpy as np

from repro.config import GameConfig
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_data_rate

from conftest import write_artifact

SCHEDULES = ("round-robin", "best-gain-winner", "random-winner")


def test_ablation_schedules(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    instance = IDDEInstance.generate(n=30, m=150, k=5, density=1.0, seed=0)
    rows = []
    rates = {}
    for schedule in SCHEDULES:
        game = IddeUGame(instance, GameConfig(schedule=schedule))
        t0 = time.perf_counter()
        result = game.run(rng=0)
        elapsed = time.perf_counter() - t0
        rate = average_data_rate(instance, result.profile)
        rates[schedule] = rate
        rows.append(
            (schedule, rate, result.moves, result.rounds, elapsed, result.is_nash)
        )
    out = StringIO()
    out.write("## Ablation A3 — IDDE-U update schedules\n\n")
    out.write("| schedule | R_avg (MB/s) | moves | rounds | time (s) | Nash |\n")
    out.write("|---|---|---|---|---|---|\n")
    for schedule, rate, moves, rounds, elapsed, nash in rows:
        out.write(
            f"| {schedule} | {rate:.2f} | {moves} | {rounds} | {elapsed:.3f} | {nash} |\n"
        )
    report = out.getvalue()
    write_artifact("ablation_schedules.md", report)
    print("\n" + report)

    # All schedules certify an equilibrium of comparable quality (±5%).
    values = np.array(list(rates.values()))
    assert values.std() / values.mean() < 0.05, rates
    assert all(nash for *_, nash in rows), rows


def test_round_robin_benchmark(benchmark):
    instance = IDDEInstance.generate(n=30, m=150, k=5, density=1.0, seed=0)
    game = IddeUGame(instance, GameConfig(schedule="round-robin"))
    result = benchmark(game.run, 0)
    assert result.converged


def test_winner_schedule_benchmark(benchmark):
    instance = IDDEInstance.generate(n=30, m=150, k=5, density=1.0, seed=0)
    game = IddeUGame(instance, GameConfig(schedule="best-gain-winner"))
    result = benchmark.pedantic(game.run, args=(0,), rounds=2, iterations=1)
    assert result.converged
