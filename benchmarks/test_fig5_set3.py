"""Fig. 5 — Set #3: effectiveness vs number of data items K.

Regenerates both panels (5a: R_avg vs K, 5b: L_avg vs K).  The paper's
reading: K barely moves the rates (allocation ignores K) but drives the
latencies up (fixed storage covers a smaller share of the catalogue).
"""

import numpy as np

from repro.core.idde_g import IddeG
from repro.core.instance import IDDEInstance
from repro.experiments.figures import PAPER

from _common import assert_headline_shapes, figure_report
from conftest import write_artifact

PAPER_NOTES = """Paper (Set #3): K has an insignificant impact on rates, but
latencies rise with K: IDDE-G 2.61→7.52 ms, IDDE-IP 18.58→38.50, SAA
9.33→22.12, CDP 24.12→36.80, DUP-G 32.16→48.88 from K=2 to K=8; the
cross-grid averages are 5.22 / 27.98 / 16.88 / 31.26 / 41.10 ms."""


def test_fig5_series(benchmark, set3_sweep):
    report = benchmark(figure_report, set3_sweep, "Fig. 5 — Set #3 (vary K)", PAPER_NOTES)
    lines = ["", "### Cross-grid average latency vs paper", "",
             "| approach | measured (ms) | paper (ms) |", "|---|---|---|"]
    for name in set3_sweep.solver_names:
        measured = set3_sweep.average(name, "l_avg_ms")
        lines.append(
            f"| {name} | {measured:.2f} | {PAPER['set3_latency_average'][name]:.2f} |"
        )
    report += "\n".join(lines) + "\n"
    write_artifact("fig5_set3.md", report)
    print("\n" + report)
    assert_headline_shapes(set3_sweep)


def test_fig5a_rates_insensitive_to_k(set3_sweep):
    """Fig. 5(a): the rate series is flat in K — the allocation game never
    sees the catalogue.  Tolerate sampling noise of 15%."""
    for name in ("IDDE-G", "CDP", "DUP-G"):
        series = np.array(set3_sweep.series(name, "r_avg"))
        spread = (series.max() - series.min()) / series.mean()
        assert spread < 0.15, (name, series.tolist())


def test_fig5b_latency_rises_with_k(set3_sweep):
    """Fig. 5(b): latency rises from K=2 to K=8 for every approach."""
    for name in set3_sweep.solver_names:
        series = set3_sweep.series(name, "l_avg_ms")
        assert series[-1] > series[0], (name, series)


def test_fig5b_idde_g_clearly_lower(set3_sweep):
    """The paper's headline: IDDE-G's Set #3 latency is multiple times
    lower than every baseline's.  Our calibration compresses the latency
    spread (EXPERIMENTS.md, known deviation #2), so require a clear margin
    over every baseline and the paper's multiple over collaboration-blind
    DUP-G."""
    ours = set3_sweep.average("IDDE-G", "l_avg_ms")
    for name in set3_sweep.solver_names:
        if name == "IDDE-G":
            continue
        assert set3_sweep.average(name, "l_avg_ms") > 1.1 * ours, name
    assert set3_sweep.average("DUP-G", "l_avg_ms") > 2.0 * ours


def test_fig5_idde_g_solve_benchmark(benchmark):
    """Wall time of one IDDE-G solve at the largest Set #3 point (K=8)."""
    instance = IDDEInstance.generate(n=30, m=200, k=8, density=1.0, seed=0)
    strategy = benchmark(IddeG().solve, instance, 0)
    assert strategy.r_avg > 0
