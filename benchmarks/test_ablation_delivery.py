"""Ablation A1 — Eq. (17)'s ratio rule vs absolute-gain greedy delivery.

DESIGN.md calls out the per-byte normalisation of the Phase 2 greedy as a
design choice; this bench measures what it buys across a batch of paper-
scale instances and benchmarks the delivery kernel itself.
"""

from io import StringIO

import numpy as np

from repro.config import DeliveryConfig
from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_delivery_latency_ms

from conftest import write_artifact

SEEDS = range(8)


def _latency_pair(seed: int) -> tuple[float, float]:
    instance = IDDEInstance.generate(n=30, m=200, k=5, density=1.0, seed=seed)
    alloc = IddeUGame(instance).run(rng=seed).profile
    ratio = greedy_delivery(instance, alloc, DeliveryConfig(ratio_rule=True))
    absolute = greedy_delivery(instance, alloc, DeliveryConfig(ratio_rule=False))
    return (
        average_delivery_latency_ms(instance, alloc, ratio.profile),
        average_delivery_latency_ms(instance, alloc, absolute.profile),
    )


def test_ablation_ratio_vs_absolute(benchmark):
    pairs = [_latency_pair(seed) for seed in SEEDS]
    benchmark.pedantic(_latency_pair, args=(0,), rounds=1, iterations=1)
    ratio = np.array([p[0] for p in pairs])
    absolute = np.array([p[1] for p in pairs])
    out = StringIO()
    out.write("## Ablation A1 — delivery selection rule\n\n")
    out.write("| seed | ratio rule (ms) | absolute rule (ms) |\n|---|---|---|\n")
    for seed, (r, a) in zip(SEEDS, pairs):
        out.write(f"| {seed} | {r:.2f} | {a:.2f} |\n")
    out.write(
        f"\nmeans: ratio {ratio.mean():.2f} ms vs absolute {absolute.mean():.2f} ms\n"
    )
    report = out.getvalue()
    write_artifact("ablation_delivery.md", report)
    print("\n" + report)
    # The rules mostly coincide at the paper's size menu (30/60/90 MB);
    # the ratio rule must not lose on average.
    assert ratio.mean() <= absolute.mean() * 1.05


def test_delivery_kernel_benchmark(benchmark):
    """Throughput of the vectorised O(N²K)-per-iteration greedy."""
    instance = IDDEInstance.generate(n=50, m=350, k=8, density=1.5, seed=1)
    alloc = IddeUGame(instance).run(rng=1).profile
    result = benchmark(greedy_delivery, instance, alloc)
    assert result.profile.n_replicas > 0
