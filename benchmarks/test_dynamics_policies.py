"""Extension D1 — dynamic IDDE: re-solve policies under mobility.

The paper's future-work scenario, measured: warm-started re-formulation
must match cold re-solves on both objectives while spending a fraction of
the game moves, and a static strategy must decay.  Also benchmarks one
full simulation epoch.
"""

from io import StringIO

import numpy as np

from repro.core.instance import IDDEInstance
from repro.datasets.melbourne import CBD_REGION
from repro.dynamics import DynamicSimulation, RandomWaypoint

from conftest import write_artifact

EPOCHS = 6
DT = 45.0
SPEEDS = (8.0, 20.0)


def _run(policy: str) -> dict[str, float]:
    instance = IDDEInstance.generate(n=20, m=120, k=5, density=1.5, seed=7)
    mobility = RandomWaypoint(
        instance.scenario.user_xy, CBD_REGION, rng=7, speed_range=SPEEDS
    )
    sim = DynamicSimulation(instance, mobility, policy=policy)
    return DynamicSimulation.summarize(sim.run(epochs=EPOCHS, dt=DT, rng=7))


def test_dynamics_policy_comparison(benchmark):
    summaries = {p: _run(p) for p in ("warm", "cold", "static")}
    benchmark.pedantic(_run, args=("warm",), rounds=1, iterations=1)

    out = StringIO()
    out.write("## Extension D1 — mobility re-solve policies\n\n")
    out.write(
        "| policy | R_avg (MB/s) | L_avg (ms) | realloc/epoch | moves/epoch "
        "| migration MB/epoch |\n|---|---|---|---|---|---|\n"
    )
    for policy, s in summaries.items():
        out.write(
            f"| {policy} | {s['mean_r_avg']:.2f} | {s['mean_l_avg_ms']:.2f} | "
            f"{s['mean_realloc']:.1f} | {s['mean_moves']:.1f} | "
            f"{s['mean_migration_mb']:.1f} |\n"
        )
    report = out.getvalue()
    write_artifact("dynamics_policies.md", report)
    print("\n" + report)

    warm, cold, static = summaries["warm"], summaries["cold"], summaries["static"]
    # Static decays on both objectives.
    assert static["mean_r_avg"] < warm["mean_r_avg"]
    assert static["mean_l_avg_ms"] > warm["mean_l_avg_ms"]
    # Warm matches cold quality within 10%.
    assert abs(warm["mean_r_avg"] - cold["mean_r_avg"]) < 0.1 * cold["mean_r_avg"]
    # Static never migrates; the adaptive policies do.
    assert static["mean_migration_mb"] == 0.0
    assert warm["mean_migration_mb"] > 0.0
