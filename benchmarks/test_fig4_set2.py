"""Fig. 4 — Set #2: effectiveness vs number of users M.

Regenerates both panels (4a: R_avg vs M, 4b: L_avg vs M) and compares the
endpoint rates against the values the paper states in prose.
"""

from repro.core.idde_g import IddeG
from repro.core.instance import IDDEInstance
from repro.experiments.figures import PAPER

from _common import assert_headline_shapes, figure_report
from conftest import write_artifact

PAPER_NOTES = """Paper (Set #2): rates fall as M grows (more interference):
IDDE-G 196.71→68.48 MB/s, IDDE-IP 196.06→62.01, SAA 143.75→49.60,
CDP 153.62→60.87, DUP-G 174.76→58.26 from M=50 to M=350.  Latencies rise
with M (fixed storage serves more demand)."""


def test_fig4_series(benchmark, set2_sweep):
    report = benchmark(figure_report, set2_sweep, "Fig. 4 — Set #2 (vary M)", PAPER_NOTES)
    # Endpoint comparison against the paper's stated numbers.
    lines = ["", "### Endpoint rates vs paper (M=50 → M=350)", "",
             "| approach | measured | paper |", "|---|---|---|"]
    for name in set2_sweep.solver_names:
        series = set2_sweep.series(name, "r_avg")
        lo, hi = PAPER["set2_rate_endpoints"][name]
        lines.append(
            f"| {name} | {series[0]:.2f} → {series[-1]:.2f} | {lo:.2f} → {hi:.2f} |"
        )
    report += "\n".join(lines) + "\n"
    write_artifact("fig4_set2.md", report)
    print("\n" + report)
    assert_headline_shapes(set2_sweep)


def test_fig4a_rates_fall_with_m(set2_sweep):
    """Fig. 4(a): every approach's R_avg decreases from M=50 to M=350."""
    for name in set2_sweep.solver_names:
        series = set2_sweep.series(name, "r_avg")
        assert series[-1] < series[0], (name, series)


def test_fig4a_relative_drop_matches_paper_scale(set2_sweep):
    """The paper reports ~60-68% rate drops across the M grid; ours should
    be a substantial drop too (>30%) for the winning approach."""
    series = set2_sweep.series("IDDE-G", "r_avg")
    drop = (series[0] - series[-1]) / series[0]
    assert drop > 0.30, series


def test_fig4b_latency_rises_with_m(set2_sweep):
    """Fig. 4(b): latency at M=350 exceeds latency at M=50 for the
    storage-bound approaches (allow IDDE-IP noise at tiny budgets)."""
    rising = [
        name
        for name in set2_sweep.solver_names
        if set2_sweep.series(name, "l_avg_ms")[-1]
        > set2_sweep.series(name, "l_avg_ms")[0]
    ]
    assert len(rising) >= 3, {
        name: set2_sweep.series(name, "l_avg_ms") for name in set2_sweep.solver_names
    }


def test_fig4_idde_g_solve_benchmark(benchmark):
    """Wall time of one IDDE-G solve at the largest Set #2 point (M=350)."""
    instance = IDDEInstance.generate(n=30, m=350, k=5, density=1.0, seed=0)
    strategy = benchmark(IddeG().solve, instance, 0)
    assert strategy.r_avg > 0
