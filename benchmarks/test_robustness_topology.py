"""Robustness R2 — solver orderings across engineered topology families.

The paper evaluates random ``density·N`` graphs only; real deployments use
rings, grids, hubs and organically grown (scale-free) networks.  This
bench re-runs the line-up on each family and asserts the headline
orderings survive the wiring.
"""

from io import StringIO

import numpy as np

from repro.baselines import default_solvers
from repro.core.instance import IDDEInstance
from repro.topology.generators import (
    grid_topology,
    ring_topology,
    scale_free_topology,
    star_topology,
)

from conftest import BENCH_IP_BUDGET, write_artifact

FAMILIES = {
    "ring": ring_topology,
    "grid": grid_topology,
    "star": star_topology,
    "scale-free": scale_free_topology,
}


def _run(family: str, seed: int = 0) -> dict[str, tuple[float, float]]:
    base = IDDEInstance.generate(n=25, m=150, k=5, density=1.0, seed=seed)
    topo = FAMILIES[family](base.n_servers, rng=seed)
    instance = IDDEInstance(base.scenario, topo, base.radio)
    out = {}
    for solver in default_solvers(ip_time_budget=BENCH_IP_BUDGET):
        s = solver.solve(instance, rng=seed)
        out[s.solver] = (s.r_avg, s.l_avg_ms)
    return out


def test_orderings_survive_topology_families(benchmark):
    results = {family: _run(family) for family in FAMILIES}
    benchmark.pedantic(_run, args=("ring",), rounds=1, iterations=1)

    out = StringIO()
    out.write("## Robustness R2 — engineered topology families\n\n")
    out.write("| family | best rate | best latency | worst latency |\n|---|---|---|---|\n")
    for family, metrics in results.items():
        rates = {n: v[0] for n, v in metrics.items()}
        lats = {n: v[1] for n, v in metrics.items()}
        out.write(
            f"| {family} | {max(rates, key=rates.get)} | "
            f"{min(lats, key=lats.get)} | {max(lats, key=lats.get)} |\n"
        )
    report = out.getvalue()
    write_artifact("robustness_topology.md", report)
    print("\n" + report)

    for family, metrics in results.items():
        rates = {n: v[0] for n, v in metrics.items()}
        lats = {n: v[1] for n, v in metrics.items()}
        # Rates are topology-independent: IDDE-G must top every family.
        assert max(rates, key=rates.get) == "IDDE-G", (family, rates)
        # Latency: IDDE-G best or within 10% of the best (one seed only).
        best = min(lats.values())
        assert lats["IDDE-G"] <= best * 1.10 + 0.5, (family, lats)
        # DUP-G (no collaboration) never profits from good wiring.
        assert lats["DUP-G"] >= lats["IDDE-G"], (family, lats)
