"""Ablation A2 — interference sensitivity to the per-server channel count.

The paper fixes 3 channels per server (§4.2).  This ablation sweeps the
channel count and measures the equilibrium rate, quantifying how much of
IDDE-G's Objective #1 performance comes from having channels to manage at
all — and benchmarks the IDDE-U game at the paper's setting.
"""

from io import StringIO

from repro.config import RadioConfig, ScenarioConfig
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_data_rate

from conftest import write_artifact

CHANNELS = (1, 2, 3, 4, 6)


def _rate_at(channels: int, seed: int = 0) -> float:
    cfg = ScenarioConfig(radio=RadioConfig(channels_per_server=channels))
    instance = IDDEInstance.generate(
        n=30, m=200, k=5, density=1.0, seed=seed, config=cfg
    )
    profile = IddeUGame(instance).run(rng=seed).profile
    return average_data_rate(instance, profile)


def test_ablation_channel_count(benchmark):
    rates = {x: _rate_at(x) for x in CHANNELS}
    benchmark.pedantic(_rate_at, args=(3,), rounds=1, iterations=1)
    out = StringIO()
    out.write("## Ablation A2 — channels per server vs equilibrium rate\n\n")
    out.write("| channels | R_avg (MB/s) |\n|---|---|\n")
    for x, r in rates.items():
        out.write(f"| {x} | {r:.2f} |\n")
    report = out.getvalue()
    write_artifact("ablation_channels.md", report)
    print("\n" + report)
    # More channels, less interference, strictly better equilibrium rate.
    values = list(rates.values())
    assert all(b > a for a, b in zip(values, values[1:])), rates


def test_game_benchmark_paper_setting(benchmark):
    """Wall time of the IDDE-U game at the paper's default point."""
    instance = IDDEInstance.generate(n=30, m=200, k=5, density=1.0, seed=0)
    game = IddeUGame(instance)
    result = benchmark(game.run, 0)
    assert result.converged
