"""Ablation A4 — the Phase 2 greedy's true optimality gap.

The paper proves a worst-case `(e−1)/2e` guarantee (Theorems 6-7); the
exact MILP delivery oracle lets us measure the *actual* gap at full paper
scale, where brute force is hopeless.  Also benchmarks the MILP solve.
"""

from io import StringIO

import numpy as np

from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_delivery_latency_ms
from repro.solvers import optimal_delivery_milp

from conftest import write_artifact

SEEDS = range(6)


def _gap(seed: int) -> tuple[float, float]:
    instance = IDDEInstance.generate(n=30, m=200, k=5, density=1.0, seed=seed)
    alloc = IddeUGame(instance).run(rng=seed).profile
    greedy = greedy_delivery(instance, alloc)
    l_greedy = average_delivery_latency_ms(instance, alloc, greedy.profile)
    milp = optimal_delivery_milp(instance, alloc)
    return l_greedy, milp.l_avg_ms


def test_ablation_greedy_gap(benchmark):
    pairs = [_gap(seed) for seed in SEEDS]
    benchmark.pedantic(_gap, args=(0,), rounds=1, iterations=1)
    out = StringIO()
    out.write("## Ablation A4 — greedy vs exact MILP delivery (paper scale)\n\n")
    out.write("| seed | greedy (ms) | optimal (ms) | gap % |\n|---|---|---|---|\n")
    gaps = []
    for seed, (g, o) in zip(SEEDS, pairs):
        gap = 100.0 * (g - o) / o if o > 0 else 0.0
        gaps.append(gap)
        out.write(f"| {seed} | {g:.3f} | {o:.3f} | {gap:.2f} |\n")
    out.write(
        f"\nmean gap {np.mean(gaps):.2f}% — far inside the worst-case bound "
        "(the guarantee only promises ~31.6% of the optimal *reduction*).\n"
    )
    report = out.getvalue()
    write_artifact("ablation_greedy_gap.md", report)
    print("\n" + report)

    # Sanity: the oracle never loses to the greedy; the greedy stays close.
    for g, o in pairs:
        assert o <= g + 1e-6
    assert np.mean(gaps) < 25.0, gaps
