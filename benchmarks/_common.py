"""Shared helpers for the figure benches: series printing and checks."""

from __future__ import annotations

from io import StringIO

from repro.experiments.figures import shape_checks
from repro.experiments.report import render_advantage_markdown, render_sweep_markdown
from repro.experiments.sweep import SweepResult

__all__ = ["figure_report", "assert_headline_shapes"]


def figure_report(result: SweepResult, figure: str, paper_notes: str = "") -> str:
    """Render one figure's measured tables plus its paper context."""
    out = StringIO()
    out.write(f"## {figure} — measured at reduced repetitions\n\n")
    if paper_notes:
        out.write(paper_notes.rstrip() + "\n\n")
    for metric in ("r_avg", "l_avg_ms"):
        out.write(render_sweep_markdown(result, metric))
        out.write("\n")
    out.write(render_advantage_markdown(result))
    out.write(f"\nshape checks: {shape_checks(result)}\n")
    return out.getvalue()


def assert_headline_shapes(result: SweepResult) -> None:
    """The §4.5 orderings that must hold at any scale: IDDE-G wins both
    objectives on the cross-grid average, and IDDE-IP costs the most."""
    checks = shape_checks(result)
    assert checks["idde_g_best_rate"], (
        "IDDE-G must achieve the highest average data rate",
        {s: result.average(s, "r_avg") for s in result.solver_names},
    )
    assert checks["idde_g_best_latency"], (
        "IDDE-G must achieve the lowest average delivery latency",
        {s: result.average(s, "l_avg_ms") for s in result.solver_names},
    )
    assert checks["ip_slowest"], (
        "IDDE-IP must cost the most computation time",
        {s: result.average(s, "time_s") for s in result.solver_names},
    )
