"""Fig. 3 — Set #1: effectiveness vs number of edge servers N.

Regenerates both panels (3a: R_avg vs N, 3b: L_avg vs N) at reduced
repetitions and benchmarks the IDDE-G solve at the grid's largest N.
"""

import numpy as np

from repro.core.idde_g import IddeG
from repro.core.instance import IDDEInstance

from _common import assert_headline_shapes, figure_report
from conftest import write_artifact

PAPER_NOTES = """Paper (Set #1 averages): IDDE-G's advantage in data rate is
10.36% over IDDE-IP, 55.55% over SAA, 28.99% over CDP and 41.51% over
DUP-G; in delivery latency 83.16%, 70.42%, 84.05% and 82.76%.  Rates rise
with N (less interference per server); latencies fall with N (more
reserved storage, closer replicas)."""


def test_fig3_series(benchmark, set1_sweep):
    report = benchmark(figure_report, set1_sweep, "Fig. 3 — Set #1 (vary N)", PAPER_NOTES)
    write_artifact("fig3_set1.md", report)
    print("\n" + report)
    assert_headline_shapes(set1_sweep)


def test_fig3a_rates_rise_with_n(set1_sweep):
    """Fig. 3(a): every approach's R_avg increases from N=20 to N=50."""
    for name in set1_sweep.solver_names:
        series = set1_sweep.series(name, "r_avg")
        assert series[-1] > series[0], (name, series)


def test_fig3b_idde_g_latency_tracks_low(set1_sweep):
    """Fig. 3(b): IDDE-G's latency is the lowest at every grid point."""
    lat = {s: set1_sweep.series(s, "l_avg_ms") for s in set1_sweep.solver_names}
    wins = sum(
        1
        for idx in range(len(set1_sweep.values))
        if min(lat, key=lambda s: lat[s][idx]) == "IDDE-G"
    )
    # Allow one noisy point at reduced repetitions.
    assert wins >= len(set1_sweep.values) - 1, lat


def test_fig3_idde_g_solve_benchmark(benchmark):
    """Wall time of one IDDE-G solve at the largest Set #1 point (N=50)."""
    instance = IDDEInstance.generate(n=50, m=200, k=5, density=1.0, seed=0)
    strategy = benchmark(IddeG().solve, instance, 0)
    assert strategy.r_avg > 0
