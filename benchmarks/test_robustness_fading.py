"""Robustness R1 — the paper's model-independence claim under shadowing.

Section 2.2: "the SINR can be calculated based on other wireless
communication models … it will not impact the IDDE problem or the
performance of the proposed approaches fundamentally."  This bench re-runs
the solver line-up with log-normally shadowed gains (σ = 6 dB, the urban
standard) and asserts that the headline orderings survive.
"""

from io import StringIO

import numpy as np

from repro.baselines import default_solvers
from repro.core.instance import IDDEInstance
from repro.radio.fading import lognormal_shadowing

from conftest import BENCH_IP_BUDGET, write_artifact

SEEDS = (0, 1, 2)


def _shadowed_instance(seed: int) -> IDDEInstance:
    base = IDDEInstance.generate(n=30, m=200, k=5, density=1.0, seed=seed)
    gain = lognormal_shadowing(
        base.scenario.server_xy, base.scenario.user_xy, rng=seed, sigma_db=6.0
    )
    return IDDEInstance(
        base.scenario, base.topology, base.radio, gain_override=gain
    )


def _run(seed: int) -> dict[str, tuple[float, float]]:
    instance = _shadowed_instance(seed)
    out = {}
    for solver in default_solvers(ip_time_budget=BENCH_IP_BUDGET):
        s = solver.solve(instance, rng=seed)
        out[s.solver] = (s.r_avg, s.l_avg_ms)
    return out


def test_orderings_survive_shadowing(benchmark):
    runs = [_run(seed) for seed in SEEDS]
    benchmark.pedantic(_shadowed_instance, args=(0,), rounds=1, iterations=1)
    names = list(runs[0])
    mean_rate = {n: float(np.mean([r[n][0] for r in runs])) for n in names}
    mean_lat = {n: float(np.mean([r[n][1] for r in runs])) for n in names}

    out = StringIO()
    out.write("## Robustness R1 — 6 dB log-normal shadowing\n\n")
    out.write("| approach | R_avg (MB/s) | L_avg (ms) |\n|---|---|---|\n")
    for n in names:
        out.write(f"| {n} | {mean_rate[n]:.2f} | {mean_lat[n]:.2f} |\n")
    report = out.getvalue()
    write_artifact("robustness_fading.md", report)
    print("\n" + report)

    assert max(mean_rate, key=mean_rate.get) == "IDDE-G", mean_rate
    # IDDE-IP's wall-clock-budgeted search is not deterministic; allow it
    # within noise of IDDE-G's latency, but IDDE-G must beat every
    # deterministic heuristic outright.
    best_lat = min(mean_lat.values())
    assert mean_lat["IDDE-G"] <= best_lat * 1.05 + 0.2, mean_lat
    for name in ("SAA", "CDP", "DUP-G"):
        assert mean_lat[name] > mean_lat["IDDE-G"], mean_lat
    assert min(mean_rate, key=mean_rate.get) in ("SAA", "DUP-G"), mean_rate
    assert max(mean_lat, key=mean_lat.get) == "DUP-G", mean_lat
