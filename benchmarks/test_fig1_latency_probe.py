"""Fig. 1 — end-to-end latency: edge vs cloud regions (motivation).

Regenerates the paper's motivation figure from the calibrated probe model
and benchmarks the probe generator itself.
"""

from io import StringIO

from repro.experiments.figures import PAPER
from repro.experiments.latency_probe import run_latency_probe

from conftest import write_artifact


def test_fig1_series(benchmark):
    probe = benchmark(run_latency_probe, 0)
    means = probe.mean_ms()
    p95 = probe.percentile_ms(95)
    out = StringIO()
    out.write("## Fig. 1 — end-to-end network latency (simulated probes)\n\n")
    out.write("| target | measured mean (ms) | measured p95 (ms) | paper (ms) |\n")
    out.write("|---|---|---|---|\n")
    for target in probe.targets:
        ref = PAPER["fig1_latency_ms"].get(target, float("nan"))
        out.write(
            f"| {target} | {means[target]:.1f} | {p95[target]:.1f} | {ref:.0f} |\n"
        )
    report = out.getvalue()
    write_artifact("fig1_latency_probe.md", report)
    print("\n" + report)

    # The figure's claim: edge is an order of magnitude below the clouds.
    adv = probe.edge_advantage()
    assert all(ratio > 5 for ratio in adv.values()), adv


def test_fig1_probe_benchmark(benchmark):
    """Throughput of the probe generator (one simulated week)."""
    probe = benchmark(run_latency_probe, 0)
    assert probe.hours == 168
