"""Calibration C1 — sensitivity of the results to the coverage radius.

EXPERIMENTS.md's known deviation #1 swaps the raw EUA 100–150 m radii for
macro-cell 250–350 m so users see multiple candidate servers (|V_j| ≈ 2 at
N=30), matching the multi-coverage regime of the paper's Fig. 2.  This
bench measures what the choice actually changes: the mean covering-set
size grows monotonically with the radius, while IDDE-G's advantage over
the channel-blind CDP stays positive at *every* radius — i.e. the headline
conclusion is **robust** to the calibration; the radius governs how much
of the advantage comes from server choice (overlap) versus intra-cell
channel management alone.
"""

from io import StringIO

from repro.experiments.calibration import radius_sensitivity

from conftest import write_artifact

RANGES = [(100.0, 150.0), (175.0, 250.0), (250.0, 350.0), (350.0, 450.0)]


def test_calibration_radius(benchmark):
    points = radius_sensitivity(RANGES, n=25, m=150, k=5, reps=2)
    benchmark.pedantic(
        radius_sensitivity,
        args=([(250.0, 350.0)],),
        kwargs={"n": 10, "m": 40, "k": 3, "reps": 1},
        rounds=1,
        iterations=1,
    )

    out = StringIO()
    out.write("## Calibration C1 — coverage radius sensitivity\n\n")
    out.write(
        "| radius | mean |V_j| | IDDE-G R_avg | CDP R_avg | rate adv % "
        "| latency adv % |\n|---|---|---|---|---|---|\n"
    )
    for p in points:
        out.write(
            f"| {p.label} | {p.mean_covering:.2f} | {p.r_avg_ours:.2f} | "
            f"{p.r_avg_baseline:.2f} | {p.rate_advantage_pct:+.2f} | "
            f"{p.latency_advantage_pct:+.2f} |\n"
        )
    report = out.getvalue()
    write_artifact("calibration_radius.md", report)
    print("\n" + report)

    # Overlap grows monotonically with radius ...
    coverings = [p.mean_covering for p in points]
    assert all(b > a for a, b in zip(coverings, coverings[1:])), coverings
    # ... and IDDE-G's advantage over the channel-blind baseline holds at
    # every radius calibration — the headline claim is not an artefact of
    # the macro-cell radius choice.
    for p in points:
        assert p.rate_advantage_pct > 0, (p.label, p.rate_advantage_pct)
        assert p.latency_advantage_pct > 0, (p.label, p.latency_advantage_pct)
