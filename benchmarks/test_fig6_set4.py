"""Fig. 6 — Set #4: effectiveness vs network density.

Regenerates both panels (6a: R_avg vs density, 6b: L_avg vs density).
The paper's reading: density barely moves the rates (the radio model does
not see the wired graph), but a denser graph lowers the latencies —
mildly for IDDE-G, which already serves most users at minimum latency at
density 1.0.
"""

import numpy as np

from repro.core.idde_g import IddeG
from repro.core.instance import IDDEInstance

from _common import assert_headline_shapes, figure_report
from conftest import write_artifact

PAPER_NOTES = """Paper (Set #4): IDDE-G's rate advantage is 13.94% over
IDDE-IP, 62.92% over SAA, 36.87% over CDP, 54.91% over DUP-G; latency
advantage 90.38% / 75.91% / 89.63% / 86.72%.  Density affects latency
slightly and rates not at all."""


def test_fig6_series(benchmark, set4_sweep):
    report = benchmark(figure_report, set4_sweep, "Fig. 6 — Set #4 (vary density)", PAPER_NOTES)
    write_artifact("fig6_set4.md", report)
    print("\n" + report)
    assert_headline_shapes(set4_sweep)


def test_fig6a_rates_insensitive_to_density(set4_sweep):
    """Fig. 6(a): the wired-graph density cannot affect the radio model."""
    for name in ("IDDE-G", "CDP", "DUP-G"):
        series = np.array(set4_sweep.series(name, "r_avg"))
        spread = (series.max() - series.min()) / series.mean()
        assert spread < 0.15, (name, series.tolist())


def test_fig6b_density_lowers_collaborative_latency(set4_sweep):
    """Fig. 6(b): a denser edge graph lowers latency for the
    collaboration-aware approaches (IDDE-G, SAA, CDP)."""
    improving = [
        name
        for name in ("IDDE-G", "SAA", "CDP")
        if set4_sweep.series(name, "l_avg_ms")[-1]
        < set4_sweep.series(name, "l_avg_ms")[0]
    ]
    assert len(improving) >= 2, {
        name: set4_sweep.series(name, "l_avg_ms") for name in set4_sweep.solver_names
    }


def test_fig6b_dup_g_insensitive_to_density(set4_sweep):
    """DUP-G ignores collaboration, so density helps it least: its latency
    stays the worst across the grid."""
    lat = {s: set4_sweep.average(s, "l_avg_ms") for s in set4_sweep.solver_names}
    assert max(lat, key=lat.get) == "DUP-G", lat


def test_fig6_idde_g_solve_benchmark(benchmark):
    """Wall time of one IDDE-G solve at the densest Set #4 point."""
    instance = IDDEInstance.generate(n=30, m=200, k=5, density=3.0, seed=0)
    strategy = benchmark(IddeG().solve, instance, 0)
    assert strategy.r_avg > 0
