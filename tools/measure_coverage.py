"""Measure line coverage of ``src/repro`` under the test suite — stdlib only.

CI gates coverage with pytest-cov (``pytest --cov=repro
--cov-fail-under=<floor>``, floor recorded in ``pyproject.toml`` under
``[tool.coverage.report] fail_under``), but the development container has
no coverage package. This script reproduces the measurement with
:mod:`sys.monitoring` (PEP 669, Python >= 3.12), falling back to
:func:`sys.settrace` on older interpreters (filtered per *call*, so
frames outside ``src/repro`` pay one callback, not one per line), so the
committed floor can be chosen from a local number rather than a guess:

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

It reports per-package and total line coverage over the executable lines
(as approximated by code-object line tables) of every ``repro`` module the
run imports, plus files never imported at all (counted as 0%-covered so
dead modules cannot inflate the total).

The number is *close to* but not identical to coverage.py's: line tables
slightly disagree with coverage.py's AST-based arc analysis (docstrings,
``else`` arcs). Keep the committed floor a few points below the local
reading to absorb both that skew and platform variance.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def _executable_lines(path: Path) -> set[int]:
    """Lines with code, from the compiled code objects' line tables."""
    import dis

    try:
        code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        lines.update(ln for _, ln in dis.findlinestarts(co) if ln is not None)
        stack.extend(c for c in co.co_consts if hasattr(c, "co_code"))
    return lines


def _run_with_monitoring(argv: list[str], prefix: str, hits) -> int:
    mon = sys.monitoring
    tool = mon.COVERAGE_ID

    def on_line(code, line):
        fn = code.co_filename
        if fn.startswith(prefix):
            hits[fn].add(line)

    mon.use_tool_id(tool, "measure_coverage")
    mon.register_callback(tool, mon.events.LINE, on_line)
    mon.set_events(tool, mon.events.LINE)
    try:
        import pytest

        return pytest.main(argv or ["tests"])
    finally:
        mon.set_events(tool, 0)
        mon.free_tool_id(tool)


def _run_with_settrace(argv: list[str], prefix: str, hits) -> int:
    def tracer(frame, event, arg):
        fn = frame.f_code.co_filename
        if not fn.startswith(prefix):
            return None  # never re-enter for this frame's lines
        if event == "line":
            hits[fn].add(frame.f_lineno)
        return tracer

    sys.settrace(tracer)
    try:
        import pytest

        return pytest.main(argv or ["tests"])
    finally:
        sys.settrace(None)


def main(argv: list[str]) -> int:
    prefix = str(SRC / "repro") + "/"
    hits: dict[str, set[int]] = defaultdict(set)
    if sys.version_info >= (3, 12):
        rc = _run_with_monitoring(argv, prefix, hits)
    else:
        rc = _run_with_settrace(argv, prefix, hits)
    if rc not in (0,):
        print(f"pytest exited {rc}; coverage below is for the partial run")

    total_exec = total_hit = 0
    by_pkg: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for path in sorted((SRC / "repro").rglob("*.py")):
        executable = _executable_lines(path)
        covered = hits.get(str(path), set()) & executable
        pkg = path.relative_to(SRC / "repro").parts[0]
        by_pkg[pkg][0] += len(executable)
        by_pkg[pkg][1] += len(covered)
        total_exec += len(executable)
        total_hit += len(covered)

    print(f"\n{'package':<24s} {'lines':>7s} {'covered':>8s} {'pct':>7s}")
    for pkg, (n_exec, n_hit) in sorted(by_pkg.items()):
        pct = 100.0 * n_hit / n_exec if n_exec else 100.0
        print(f"{pkg:<24s} {n_exec:>7d} {n_hit:>8d} {pct:>6.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<24s} {total_exec:>7d} {total_hit:>8d} {pct:>6.1f}%")
    return 0 if rc == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
