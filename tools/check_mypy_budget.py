#!/usr/bin/env python
"""Gate ``mypy src/repro`` against a committed error budget.

The repo is typed incrementally: instead of blocking on a clean mypy run,
CI enforces that the *number* of errors never grows past the budget in
``tools/mypy_budget.json``.  Policy mirrors the lint baseline: the budget
may only ever shrink.  Run with ``--update`` after a typing cleanup to
ratchet it down (the script refuses to ratchet up).

mypy is a dev-extra, not a runtime dependency; when it is not installed
(e.g. a minimal local checkout) the check degrades to a skip so the
script is safe to call from any environment.

Usage::

    python tools/check_mypy_budget.py            # gate against the budget
    python tools/check_mypy_budget.py --update   # shrink the budget to now
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BUDGET_FILE = REPO_ROOT / "tools" / "mypy_budget.json"

#: ``path:line: error: message  [code]`` — the per-error mypy report line.
_ERROR_LINE = re.compile(r"^.+?:\d+(?::\d+)?: error: ")


def load_budget(path: Path = BUDGET_FILE) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def count_errors(output: str) -> int:
    """Number of error lines in a mypy report (0 for a clean run)."""
    return sum(1 for line in output.splitlines() if _ERROR_LINE.match(line))


def run_mypy(target: str) -> tuple[int, str] | None:
    """(exit code, combined output), or None when mypy is not installed."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return None
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", target],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout + proc.stderr


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="shrink the budget to the current error count (never grows it)",
    )
    args = parser.parse_args(argv)

    budget = load_budget()
    target = budget.get("target", "src/repro")
    max_errors = int(budget["max_errors"])

    result = run_mypy(target)
    if result is None:
        print("mypy is not installed; skipping the budget check "
              "(install the dev extras: pip install -e '.[dev]')")
        return 0
    code, output = result
    errors = count_errors(output)
    if code not in (0, 1):  # crash/usage error, not a type report
        print(output)
        print(f"mypy exited with unexpected status {code}")
        return 2

    if args.update:
        if errors > max_errors:
            print(f"refusing to grow the budget: {errors} > {max_errors}")
            return 1
        budget["max_errors"] = errors
        BUDGET_FILE.write_text(json.dumps(budget, indent=2) + "\n", encoding="utf-8")
        print(f"budget updated: max_errors = {errors}")
        return 0

    print(f"mypy {target}: {errors} error(s), budget {max_errors}")
    if errors > max_errors:
        print(output)
        print(
            f"error budget exceeded by {errors - max_errors}; fix the new "
            "errors (or, after a deliberate decision, edit tools/mypy_budget.json)"
        )
        return 1
    if errors < max_errors:
        print(
            f"budget has slack ({max_errors - errors}); consider ratcheting: "
            "python tools/check_mypy_budget.py --update"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
