#!/usr/bin/env python3
"""CI smoke for IDDE-Serve: boot `idde serve`, drive the API, drain it.

Stdlib-only, mirrors the lifecycle in docs/SERVING.md:

1. boot the daemon as a subprocess on an ephemeral port and parse the
   listen banner;
2. POST /v1/solve (empty body = the session's base request) and check
   the idde-solution/2 document certifies;
3. POST /v1/events delta batches and check each warm re-solve advances
   the epoch with a verified certificate;
4. read /v1/health, /v1/metrics and /v1/solution concurrently with a
   solve in flight (reads must never queue);
5. check the structured error contract (unknown solver -> 400 with a
   SolverLookupError payload, cold-read semantics via a fresh path);
6. stream /v1/trace and validate the NDJSON frame;
7. SIGTERM and require a graceful exit 0.

Exit status: 0 on success, 1 on any failed check (with a message).
Usage: python tools/serve_smoke.py [--events N] [--batches B]
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


class SmokeFailure(AssertionError):
    pass


def check(cond: bool, message: str) -> None:
    if not cond:
        raise SmokeFailure(message)


def request(
    port: int, method: str, path: str, body: object = None, timeout: float = 120.0
) -> tuple[int, dict]:
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, json.load(exc)


def stream_trace(port: int, timeout: float = 60.0) -> list[dict]:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/v1/trace", timeout=timeout
    ) as response:
        return [json.loads(line) for line in response if line.strip()]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=40, help="events per batch")
    parser.add_argument("--batches", type=int, default=3, help="delta batches")
    args = parser.parse_args()

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--n", "10", "--m", "60", "--k", "4",
            "--seed", "7", "--kernel", "batched", "--delivery-kernel", "batched",
        ],
        cwd=REPO_ROOT,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stderr.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        check(bool(match), f"no listen banner, got {banner!r}")
        port = int(match.group(1))
        print(f"serve_smoke: daemon up on port {port}")

        # -- 1. base solve certifies --------------------------------------
        status, doc = request(port, "POST", "/v1/solve")
        check(status == 200, f"solve returned {status}: {doc}")
        check(doc["schema"] == "idde-solution/2", f"bad schema {doc['schema']}")
        check(doc["session"]["certified"] is True, "epoch 0 not certified")
        check(doc["game"]["is_nash"], "epoch 0 solve is not an ε-Nash")
        print(f"serve_smoke: epoch 0 certified (eps={doc['game']['effective_epsilon']:.2e})")

        # -- 2. delta batches warm re-solve with verified certificates ----
        rng_state = 12345
        for batch_index in range(args.batches):
            events = []
            for i in range(args.events):
                rng_state = (1103515245 * rng_state + 12345) % 2**31
                user = rng_state % 60
                t = float(batch_index * args.events + i)
                if i % 3 == 0:
                    events.append({"kind": "leave", "t": t, "user": user})
                elif i % 3 == 1:
                    events.append({"kind": "join", "t": t, "user": user})
                else:
                    events.append(
                        {"kind": "move", "t": t, "user": user,
                         "x": float(rng_state % 500), "y": float(rng_state % 400)}
                    )
            status, doc = request(port, "POST", "/v1/events", {"events": events})
            check(status == 200, f"events batch {batch_index} -> {status}: {doc}")
            check(
                doc["session"]["epoch"] == batch_index + 1,
                f"epoch {doc['session']['epoch']} != {batch_index + 1}",
            )
            check(
                doc["session"]["certified"] is True,
                f"batch {batch_index} re-solve not certified",
            )
        print(f"serve_smoke: {args.batches} warm re-solves certified")

        # -- 3. reads answer while a solve is in flight -------------------
        read_results: list[tuple[str, int]] = []

        def reader() -> None:
            for path in ("/v1/health", "/v1/metrics", "/v1/solution"):
                status, _ = request(port, "GET", path, timeout=30)
                read_results.append((path, status))

        solver = threading.Thread(
            target=lambda: request(port, "POST", "/v1/solve", timeout=120)
        )
        solver.start()
        probe = threading.Thread(target=reader)
        probe.start()
        probe.join(timeout=30)
        solver.join(timeout=120)
        check(
            [s for _, s in read_results] == [200, 200, 200],
            f"reads failed mid-solve: {read_results}",
        )
        print("serve_smoke: health/metrics/solution answered mid-solve")

        # -- 4. structured errors -----------------------------------------
        bad = {"schema": "idde-request/1", "solver": "ide-g"}
        status, doc = request(port, "POST", "/v1/solve", bad)
        check(status == 400, f"unknown solver -> {status}, want 400")
        check(
            doc["error"]["type"] == "SolverLookupError",
            f"error type {doc['error']['type']}",
        )
        check("idde-g" in doc["error"]["message"], "did-you-mean lost on the wire")
        status, doc = request(port, "GET", "/v1/nope")
        check(status == 400, f"unknown endpoint -> {status}")
        print("serve_smoke: structured errors OK")

        # -- 5. metrics + trace frame -------------------------------------
        status, metrics = request(port, "GET", "/v1/metrics")
        solves = metrics["counters"]["serve.solves"]
        warm = metrics["counters"]["serve.solves.warm"]
        check(solves == args.batches + 2, f"serve.solves={solves}")
        check(warm >= args.batches, f"serve.solves.warm={warm}")
        records = stream_trace(port)
        check(records[0]["kind"] == "header", "trace does not start with a header")
        check(records[0]["schema"] == "idde-trace/1", "bad trace schema")
        check(records[-1]["kind"] == "metrics", "trace does not end with metrics")
        check(
            any(r.get("name") == "serve.certify" for r in records),
            "no serve.certify span in the trace",
        )
        print(f"serve_smoke: trace streamed ({len(records)} records)")

        # -- 6. graceful drain --------------------------------------------
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        check(code == 0, f"SIGTERM drain exited {code}, want 0")
        print("serve_smoke: SIGTERM drain exit 0 — all checks passed")
        return 0
    except SmokeFailure as exc:
        print(f"serve_smoke: FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        proc.stderr.close()


if __name__ == "__main__":
    sys.exit(main())
