"""CLI smoke tests: exit codes and schema-valid JSON for the subcommands.

Tiny instances throughout — these pin the command contracts (exit codes,
document schemas, error channels), not solution quality.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import SCHEMA as TRACE_SCHEMA
from repro.obs import load_trace

TINY = ["--n", "5", "--m", "12", "--k", "2", "--seed", "0"]


def _run(capsys, argv) -> tuple[int, str, str]:
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSolve:
    def test_json_document(self, capsys):
        code, out, _ = _run(
            capsys, ["solve", *TINY, "--solver", "idde-g", "--format", "json"]
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == "idde-solution/1"
        assert doc["instance"]["n"] == 5
        (sol,) = doc["solutions"]
        assert sol["solver"] == "IDDE-G"
        assert sol["game"]["effective_epsilon"] > 0

    def test_trace_emits_loadable_document(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _, err = _run(
            capsys,
            ["solve", *TINY, "--solver", "idde-g", "--trace", str(trace)],
        )
        assert code == 0
        assert str(trace) in err
        doc = load_trace(trace)
        assert doc.meta["command"] == "solve"
        names = {s.name for s in doc.spans}
        assert {"api.solve", "game.run", "delivery.greedy"} <= names

    def test_batched_kernel_recorded(self, capsys):
        code, out, _ = _run(
            capsys,
            [
                "solve", *TINY, "--solver", "idde-g",
                "--kernel", "batched", "--format", "json",
            ],
        )
        assert code == 0
        (sol,) = json.loads(out)["solutions"]
        assert sol["config"]["kernel"] == "batched"

    def test_unknown_solver_exits_2_with_suggestion(self, capsys):
        code, _, err = _run(capsys, ["solve", *TINY, "--solver", "ide-g"])
        assert code == 2
        assert "did you mean 'idde-g'" in err


class TestTheoryAndGap:
    def test_theory(self, capsys):
        code, out, _ = _run(capsys, ["theory", *TINY])
        assert code == 0
        assert "Theorem 4" in out and "PoA" in out

    def test_gap(self, capsys):
        code, out, _ = _run(capsys, ["gap", *TINY, "--trials", "1"])
        assert code == 0
        assert "mean gap" in out


class TestTrace:
    @pytest.fixture()
    def trace_path(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        code, _, _ = _run(
            capsys, ["solve", *TINY, "--solver", "idde-g", "--trace", str(path)]
        )
        assert code == 0
        return path

    def test_summarize_text(self, capsys, trace_path):
        code, out, _ = _run(capsys, ["trace", "summarize", str(trace_path)])
        assert code == 0
        assert TRACE_SCHEMA in out
        assert "game.run" in out

    def test_summarize_json(self, capsys, trace_path):
        code, out, _ = _run(
            capsys, ["trace", "summarize", str(trace_path), "--format", "json"]
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["schema"] == TRACE_SCHEMA
        assert summary["n_spans"] > 0

    def test_missing_file_exits_2(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, ["trace", "summarize", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error" in err
