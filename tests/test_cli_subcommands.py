"""CLI smoke tests: exit codes and schema-valid JSON for the subcommands.

Tiny instances throughout — these pin the command contracts (exit codes,
document schemas, error channels), not solution quality.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import SCHEMA as TRACE_SCHEMA
from repro.obs import load_trace

TINY = ["--n", "5", "--m", "12", "--k", "2", "--seed", "0"]


def _run(capsys, argv) -> tuple[int, str, str]:
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSolve:
    def test_json_document(self, capsys):
        code, out, _ = _run(
            capsys, ["solve", *TINY, "--solver", "idde-g", "--format", "json"]
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == "idde-solution/2"
        assert doc["instance"]["n"] == 5
        (sol,) = doc["solutions"]
        assert sol["solver"] == "IDDE-G"
        assert sol["game"]["effective_epsilon"] > 0

    def test_trace_emits_loadable_document(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _, err = _run(
            capsys,
            ["solve", *TINY, "--solver", "idde-g", "--trace", str(trace)],
        )
        assert code == 0
        assert str(trace) in err
        doc = load_trace(trace)
        assert doc.meta["command"] == "solve"
        names = {s.name for s in doc.spans}
        assert {"api.solve", "game.run", "delivery.greedy"} <= names

    def test_batched_kernel_recorded(self, capsys):
        code, out, _ = _run(
            capsys,
            [
                "solve", *TINY, "--solver", "idde-g",
                "--kernel", "batched", "--format", "json",
            ],
        )
        assert code == 0
        (sol,) = json.loads(out)["solutions"]
        assert sol["config"]["kernel"] == "batched"

    def test_batched_delivery_kernel_recorded(self, capsys):
        code, out, _ = _run(
            capsys,
            [
                "solve", *TINY, "--solver", "idde-g",
                "--delivery-kernel", "batched", "--format", "json",
            ],
        )
        assert code == 0
        (sol,) = json.loads(out)["solutions"]
        assert sol["config"]["delivery_kernel"] == "batched"
        assert sol["config"]["kernel"] == "reference"  # game kernel untouched
        assert sol["extras"]["delivery_kernel"] == "batched"

    def test_unknown_solver_exits_2_with_suggestion(self, capsys):
        code, _, err = _run(capsys, ["solve", *TINY, "--solver", "ide-g"])
        assert code == 2
        assert "did you mean 'idde-g'" in err


class TestTheoryAndGap:
    def test_theory(self, capsys):
        code, out, _ = _run(capsys, ["theory", *TINY])
        assert code == 0
        assert "Theorem 4" in out and "PoA" in out

    def test_gap(self, capsys):
        code, out, _ = _run(capsys, ["gap", *TINY, "--trials", "1"])
        assert code == 0
        assert "mean gap" in out


class TestTrace:
    @pytest.fixture()
    def trace_path(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        code, _, _ = _run(
            capsys, ["solve", *TINY, "--solver", "idde-g", "--trace", str(path)]
        )
        assert code == 0
        return path

    def test_summarize_text(self, capsys, trace_path):
        code, out, _ = _run(capsys, ["trace", "summarize", str(trace_path)])
        assert code == 0
        assert TRACE_SCHEMA in out
        assert "game.run" in out

    def test_summarize_json(self, capsys, trace_path):
        code, out, _ = _run(
            capsys, ["trace", "summarize", str(trace_path), "--format", "json"]
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["schema"] == TRACE_SCHEMA
        assert summary["n_spans"] > 0

    def test_missing_file_exits_2(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, ["trace", "summarize", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error" in err


class TestReplay:
    ARGS = ["replay", *TINY, "--events", "60", "--epoch-events", "20"]

    def test_table_row_and_exit_code(self, capsys):
        code, out, _ = _run(capsys, [*self.ARGS, "--policy", "warm"])
        assert code == 0
        lines = out.strip().splitlines()
        assert "policy" in lines[0] and "cert" in lines[0]
        assert lines[1].lstrip().startswith("warm")
        assert "ok" in lines[1]

    def test_static_policy_has_no_certificates(self, capsys):
        code, out, _ = _run(capsys, [*self.ARGS, "--policy", "static"])
        assert code == 0
        # Static never re-solves after epoch 0, so only epoch 0 certifies.
        assert out.strip().splitlines()[1].lstrip().startswith("static")

    def test_verify_certifies_both_policies(self, capsys):
        code, out, err = _run(capsys, [*self.ARGS, "--verify"])
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[1].lstrip().startswith("warm")
        assert lines[2].lstrip().startswith("cold")
        assert all("ok" in line for line in lines[1:3])
        assert "speedup" in err

    def test_save_and_replay_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "events.jsonl"
        code, out1, err = _run(
            capsys, [*self.ARGS, "--save-events", str(trace)]
        )
        assert code == 0
        assert "wrote 60 events" in err
        assert trace.exists()
        # Replaying the saved trace reproduces the generated run exactly
        # (all columns except wall-time, which is never deterministic).
        code, out2, _ = _run(capsys, [*self.ARGS, "--input", str(trace)])
        assert code == 0
        row1 = out1.strip().splitlines()[1].split("|")
        row2 = out2.strip().splitlines()[1].split("|")
        del row1[6], row2[6]
        assert row1 == row2

    def test_input_universe_mismatch_fails(self, capsys, tmp_path):
        trace = tmp_path / "events.jsonl"
        code, _, _ = _run(capsys, [*self.ARGS, "--save-events", str(trace)])
        assert code == 0
        code, _, err = _run(
            capsys,
            ["replay", "--n", "5", "--m", "13", "--k", "2", "--seed", "0",
             "--events", "60", "--epoch-events", "20", "--input", str(trace)],
        )
        assert code == 2
        assert "error" in err

    def test_trace_document(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _, err = _run(capsys, [*self.ARGS, "--trace", str(trace)])
        assert code == 0
        doc = load_trace(trace)
        assert doc.meta["command"] == "replay"
        names = {s.name for s in doc.spans}
        assert {"timeline.epoch", "workload.batch", "api.solve"} <= names
