"""Geometry substrate tests."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.geometry import (
    Region,
    coverage_matrix,
    covering_sets,
    jittered_grid,
    pairwise_distances,
    sample_points_in_coverage,
    sample_points_uniform,
)


class TestRegion:
    def test_dimensions(self):
        r = Region(0, 0, 200, 100)
        assert r.width == 200 and r.height == 100 and r.area == 20_000

    def test_degenerate_rejected(self):
        with pytest.raises(ScenarioError):
            Region(0, 0, 0, 100)
        with pytest.raises(ScenarioError):
            Region(0, 5, 10, 5)

    def test_contains(self):
        r = Region(0, 0, 10, 10)
        inside = r.contains(np.array([[5, 5], [0, 0], [10, 10], [11, 5], [-1, 2]]))
        assert inside.tolist() == [True, True, True, False, False]

    def test_contains_single_point(self):
        r = Region(0, 0, 10, 10)
        assert r.contains(np.array([3.0, 3.0])).tolist() == [True]


class TestPairwiseDistances:
    def test_known_values(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        b = np.array([[0.0, 0.0]])
        d = pairwise_distances(a, b)
        assert d.shape == (2, 1)
        assert d[0, 0] == 0.0
        assert d[1, 0] == pytest.approx(5.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        pts = rng.random((6, 2)) * 100
        d = pairwise_distances(pts, pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_shape_validation(self):
        with pytest.raises(ScenarioError):
            pairwise_distances(np.zeros((3, 3)), np.zeros((2, 2)))


class TestCoverage:
    def test_radius_boundary_inclusive(self):
        cov = coverage_matrix(
            np.array([[0.0, 0.0]]), np.array([5.0]), np.array([[5.0, 0.0], [5.01, 0.0]])
        )
        assert cov[0, 0] and not cov[0, 1]

    def test_shape(self):
        cov = coverage_matrix(
            np.zeros((3, 2)), np.ones(3), np.zeros((7, 2))
        )
        assert cov.shape == (3, 7)
        assert cov.all()  # all users at server sites

    def test_radius_shape_mismatch(self):
        with pytest.raises(ScenarioError):
            coverage_matrix(np.zeros((3, 2)), np.ones(2), np.zeros((1, 2)))

    def test_covering_sets(self):
        cov = np.array([[True, False], [True, True]])
        sets = covering_sets(cov)
        assert sets[0].tolist() == [0, 1]
        assert sets[1].tolist() == [1]


class TestSampling:
    def test_uniform_in_region(self):
        r = Region(10, 20, 30, 40)
        pts = sample_points_uniform(r, 500, np.random.default_rng(1))
        assert pts.shape == (500, 2)
        assert r.contains(pts).all()

    def test_uniform_negative_raises(self):
        with pytest.raises(ScenarioError):
            sample_points_uniform(Region(0, 0, 1, 1), -1, np.random.default_rng(0))

    def test_coverage_sampling_always_covered(self):
        rng = np.random.default_rng(2)
        server_xy = rng.random((5, 2)) * 1000
        radius = rng.uniform(50, 150, 5)
        pts = sample_points_in_coverage(server_xy, radius, 300, rng)
        cov = coverage_matrix(server_xy, radius, pts)
        assert cov.any(axis=0).all()

    def test_coverage_sampling_rejects_bad_radius(self):
        with pytest.raises(ScenarioError):
            sample_points_in_coverage(
                np.zeros((1, 2)), np.array([0.0]), 3, np.random.default_rng(0)
            )

    def test_coverage_sampling_zero_servers(self):
        with pytest.raises(ScenarioError):
            sample_points_in_coverage(
                np.empty((0, 2)), np.empty(0), 3, np.random.default_rng(0)
            )


class TestJitteredGrid:
    def test_in_region_and_count(self):
        r = Region(0, 0, 1000, 600)
        pts = jittered_grid(r, 37, np.random.default_rng(3))
        assert pts.shape == (37, 2)
        assert r.contains(pts).all()

    def test_spread_covers_region(self):
        r = Region(0, 0, 1000, 1000)
        pts = jittered_grid(r, 100, np.random.default_rng(4))
        # Points should span most of the region, not cluster in a corner.
        assert pts[:, 0].max() - pts[:, 0].min() > 700
        assert pts[:, 1].max() - pts[:, 1].min() > 700

    def test_zero_raises(self):
        with pytest.raises(ScenarioError):
            jittered_grid(Region(0, 0, 1, 1), 0, np.random.default_rng(0))
