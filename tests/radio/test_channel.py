"""Channel gain model tests."""

import numpy as np
import pytest

from repro.config import RadioConfig
from repro.radio.channel import gain_from_distance, gain_matrix


class TestGainFromDistance:
    def test_power_law(self):
        g = gain_from_distance(np.array([10.0, 100.0]))
        assert g[0] / g[1] == pytest.approx(1000.0)  # (100/10)^3

    def test_min_distance_clamp(self):
        cfg = RadioConfig(min_distance=1.0)
        g0 = gain_from_distance(np.array([0.0]), cfg)
        g1 = gain_from_distance(np.array([1.0]), cfg)
        assert g0 == g1
        assert np.isfinite(g0).all()

    def test_eta_scales(self):
        g1 = gain_from_distance(np.array([50.0]), RadioConfig(eta=1.0))
        g2 = gain_from_distance(np.array([50.0]), RadioConfig(eta=2.0))
        assert g2 == pytest.approx(2 * g1)

    def test_loss_exponent(self):
        cfg = RadioConfig(loss_exponent=2.0)
        g = gain_from_distance(np.array([10.0]), cfg)
        assert g[0] == pytest.approx(0.01)


class TestGainMatrix:
    def test_shape_and_positive(self):
        rng = np.random.default_rng(0)
        g = gain_matrix(rng.random((4, 2)) * 100, rng.random((9, 2)) * 100)
        assert g.shape == (4, 9)
        assert (g > 0).all()

    def test_closer_is_stronger(self):
        servers = np.array([[0.0, 0.0]])
        users = np.array([[10.0, 0.0], [50.0, 0.0]])
        g = gain_matrix(servers, users)
        assert g[0, 0] > g[0, 1]

    def test_known_value(self):
        g = gain_matrix(np.array([[0.0, 0.0]]), np.array([[100.0, 0.0]]))
        assert g[0, 0] == pytest.approx(1e-6)
