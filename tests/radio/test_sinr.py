"""SINR engine tests: incremental bookkeeping vs first-principles math."""

import numpy as np
import pytest

from repro.config import RadioConfig
from repro.errors import AllocationError, CoverageError
from repro.radio.sinr import UNALLOCATED, SinrEngine

from ..conftest import make_scenario


@pytest.fixture
def engine(tiny_scenario):
    return SinrEngine(tiny_scenario, RadioConfig(channels_per_server=2))


class TestMutation:
    def test_assign_updates_power(self, engine):
        engine.assign(0, 1, 0)
        assert engine.channel_power[1, 0] == pytest.approx(engine.power[0])
        assert engine.channel_count[1, 0] == 1
        assert engine.alloc_server[0] == 1 and engine.alloc_channel[0] == 0

    def test_double_assign_rejected(self, engine):
        engine.assign(0, 1, 0)
        with pytest.raises(AllocationError):
            engine.assign(0, 2, 0)

    def test_move(self, engine):
        engine.assign(0, 1, 0)
        engine.move(0, 2, 1)
        assert engine.channel_power[1, 0] == 0.0
        assert engine.channel_count[2, 1] == 1

    def test_unassign_idempotent(self, engine):
        engine.unassign(0)
        engine.assign(0, 0, 0)
        engine.unassign(0)
        engine.unassign(0)
        assert engine.alloc_server[0] == UNALLOCATED
        assert engine.channel_power.sum() == 0.0

    def test_coverage_enforced(self):
        sc = make_scenario([[0.0, 0.0]], [[1.0, 1.0], [5000.0, 0.0]], radius=10.0)
        eng = SinrEngine(sc)
        with pytest.raises(CoverageError):
            eng.assign(1, 0, 0)

    def test_channel_range_enforced(self, engine):
        with pytest.raises(AllocationError):
            engine.assign(0, 1, 7)

    def test_user_range_enforced(self, engine):
        with pytest.raises(AllocationError):
            engine.assign(99, 0, 0)

    def test_reset(self, engine):
        engine.assign(0, 0, 0)
        engine.assign(1, 0, 1)
        engine.reset()
        assert (engine.alloc_server == UNALLOCATED).all()
        assert engine.channel_power.sum() == 0.0

    def test_load_profile(self, engine):
        server = np.array([0, 1, UNALLOCATED, 2, 0, 1])
        channel = np.array([0, 1, UNALLOCATED, 0, 1, 0])
        engine.load_profile(server, channel)
        assert engine.channel_count.sum() == 5
        assert engine.alloc_server[2] == UNALLOCATED

    def test_load_profile_shape_check(self, engine):
        with pytest.raises(AllocationError):
            engine.load_profile(np.array([0]), np.array([0]))


class TestSinrMath:
    def test_solo_user_noise_limited(self, engine):
        engine.assign(0, 0, 0)
        sinr = engine.user_sinr(0)
        g = engine.gain[0, 0]
        expected = g * engine.power[0] / engine.noise
        assert sinr == pytest.approx(expected)

    def test_two_users_same_channel_interfere(self, engine):
        engine.assign(0, 0, 0)
        engine.assign(1, 0, 0)
        g0 = engine.gain[0, 0]
        # user 0's interference: own-server gain times user 1's power.
        expected = g0 * engine.power[0] / (g0 * engine.power[1] + engine.noise)
        assert engine.user_sinr(0) == pytest.approx(expected)

    def test_other_channel_no_interference(self, engine):
        engine.assign(0, 0, 0)
        engine.assign(1, 0, 1)
        assert engine.user_sinr(0) == pytest.approx(
            engine.gain[0, 0] * engine.power[0] / engine.noise
        )

    def test_cross_cell_interference(self, engine):
        # Users on the same channel index of different covering servers
        # interfere (the F term of Eq. 2).
        engine.assign(0, 0, 0)
        engine.assign(1, 1, 0)
        g0 = engine.gain[0, 0]
        g1_to_u0 = engine.gain[1, 0]
        expected = g0 * engine.power[0] / (g1_to_u0 * engine.power[1] + engine.noise)
        assert engine.user_sinr(0) == pytest.approx(expected)

    def test_unallocated_rate_zero(self, engine):
        assert engine.user_rate(0) == 0.0
        assert engine.user_sinr(0) == 0.0
        assert engine.user_benefit(0) == 0.0

    def test_rates_vector_matches_scalar(self, engine):
        rng = np.random.default_rng(0)
        for j in range(engine.scenario.n_users):
            i = int(rng.integers(0, 3))
            x = int(rng.integers(0, 2))
            engine.assign(j, i, x)
        vec = engine.rates()
        for j in range(engine.scenario.n_users):
            assert vec[j] == pytest.approx(engine.user_rate(j), rel=1e-10)

    def test_average_rate(self, engine):
        engine.assign(0, 0, 0)
        rates = engine.rates()
        assert engine.average_rate() == pytest.approx(rates.sum() / 6)

    def test_rate_cap_applied(self, engine):
        engine.assign(0, 0, 0)  # solo user => astronomically high SINR
        assert engine.user_rate(0) == pytest.approx(engine.scenario.rmax[0])

    def test_uncapped_rates_exceed_cap_for_solo(self, engine):
        engine.assign(0, 0, 0)
        assert engine.uncapped_rates()[0] > engine.scenario.rmax[0]


class TestCandidates:
    def test_view_shapes(self, engine):
        view = engine.candidates(0)
        assert view.servers.shape == (3,)
        assert view.sinr.shape == (3, 2)
        assert view.valid.all()

    def test_benefit_in_unit_interval(self, engine):
        engine.assign(1, 0, 0)
        view = engine.candidates(0)
        assert (view.benefit > 0).all() and (view.benefit <= 1).all()

    def test_best_avoids_loaded_channel(self, engine):
        # Load channel 0 of every server; channel 1 must win.
        for j in range(1, 6):
            engine.assign(j, j % 3, 0)
        _, channel, _ = engine.candidates(0).best("benefit")
        assert channel == 1

    def test_best_empty_raises(self):
        sc = make_scenario([[0.0, 0.0]], [[9999.0, 0.0]], radius=10.0)
        eng = SinrEngine(sc)
        view = eng.candidates(0)
        assert view.servers.size == 0
        with pytest.raises(CoverageError):
            view.best()

    def test_candidate_matches_realised_rate(self, engine):
        engine.assign(1, 0, 0)
        engine.assign(2, 1, 1)
        view = engine.candidates(0)
        s_idx = 2  # allocate to server 2, channel 0
        engine.assign(0, 2, 0)
        assert engine.user_rate(0) == pytest.approx(float(view.rate[s_idx, 0]))

    def test_heterogeneous_channel_mask(self):
        sc = make_scenario(
            [[0.0, 0.0], [50.0, 0.0]], [[10.0, 0.0]], channels=[1, 3], radius=500.0
        )
        eng = SinrEngine(sc, RadioConfig())
        view = eng.candidates(0)
        assert view.valid.tolist() == [[True, False, False], [True, True, True]]


class TestInterferenceProfile:
    def test_excludes_own_power(self, engine):
        engine.assign(0, 0, 0)
        _, w = engine.interference_profile(0)
        assert w[0] == pytest.approx(0.0, abs=1e-25)

    def test_includes_other_users(self, engine):
        engine.assign(1, 0, 0)
        _, w = engine.interference_profile(0)
        assert w[0] == pytest.approx(engine.gain[0, 0] * engine.power[1])
        assert w[1] == 0.0
