"""Alternative gain model tests (shadowing / fading / injection)."""

import numpy as np
import pytest

from repro.config import RadioConfig
from repro.errors import AllocationError, ConfigurationError
from repro.radio.channel import gain_matrix
from repro.radio.fading import composite_gain, lognormal_shadowing, rayleigh_expected
from repro.radio.sinr import SinrEngine

from ..conftest import make_scenario


@pytest.fixture
def points():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 500, size=(4, 2)), rng.uniform(0, 500, size=(12, 2))


class TestLognormalShadowing:
    def test_positive(self, points):
        servers, users = points
        g = lognormal_shadowing(servers, users, rng=0)
        assert (g > 0).all()
        assert g.shape == (4, 12)

    def test_zero_sigma_is_power_law(self, points):
        servers, users = points
        g = lognormal_shadowing(servers, users, rng=0, sigma_db=0.0)
        assert np.allclose(g, gain_matrix(servers, users))

    def test_median_unbiased(self, points):
        """Log-normal shadowing in dB has median 1 in linear scale."""
        servers, users = points
        base = gain_matrix(servers, users)
        samples = np.stack(
            [
                lognormal_shadowing(servers, users, rng=i, sigma_db=8.0) / base
                for i in range(300)
            ]
        )
        med = np.median(samples)
        assert 0.85 < med < 1.15

    def test_deterministic_given_seed(self, points):
        servers, users = points
        a = lognormal_shadowing(servers, users, rng=7)
        b = lognormal_shadowing(servers, users, rng=7)
        assert np.allclose(a, b)

    def test_negative_sigma_rejected(self, points):
        servers, users = points
        with pytest.raises(ConfigurationError):
            lognormal_shadowing(servers, users, rng=0, sigma_db=-1.0)


class TestRayleighExpected:
    def test_unit_backoff_is_power_law(self, points):
        servers, users = points
        assert np.allclose(
            rayleigh_expected(servers, users), gain_matrix(servers, users)
        )

    def test_backoff_scales(self, points):
        servers, users = points
        g = rayleigh_expected(servers, users, diversity_backoff=0.5)
        assert np.allclose(g, 0.5 * gain_matrix(servers, users))

    def test_bad_backoff(self, points):
        servers, users = points
        with pytest.raises(ConfigurationError):
            rayleigh_expected(servers, users, diversity_backoff=0.0)
        with pytest.raises(ConfigurationError):
            rayleigh_expected(servers, users, diversity_backoff=1.5)


class TestCompositeGain:
    def test_combines(self, points):
        servers, users = points
        g = composite_gain(servers, users, rng=0, sigma_db=4.0, diversity_backoff=0.8)
        assert (g > 0).all()
        shadowed = lognormal_shadowing(servers, users, rng=0, sigma_db=4.0)
        assert np.allclose(g, 0.8 * shadowed)


class TestEngineInjection:
    def test_engine_accepts_override(self):
        sc = make_scenario(
            [[0.0, 0.0], [100.0, 0.0]],
            [[10.0, 0.0], [90.0, 0.0], [50.0, 40.0]],
            radius=400.0,
        )
        gain = lognormal_shadowing(sc.server_xy, sc.user_xy, rng=0)
        engine = SinrEngine(sc, RadioConfig(), gain=gain)
        assert np.allclose(engine.gain, gain)
        engine.assign(0, 0, 0)
        assert engine.user_rate(0) > 0

    def test_override_shape_checked(self):
        sc = make_scenario([[0.0, 0.0]], [[10.0, 0.0]])
        with pytest.raises(AllocationError):
            SinrEngine(sc, gain=np.ones((2, 2)))

    def test_override_must_be_positive(self):
        sc = make_scenario([[0.0, 0.0]], [[10.0, 0.0]])
        with pytest.raises(AllocationError):
            SinrEngine(sc, gain=np.zeros((1, 1)))

    def test_instance_level_override(self):
        from repro.core.game import IddeUGame
        from repro.core.instance import IDDEInstance
        from repro.topology.graph import build_topology

        sc = make_scenario(
            [[0.0, 0.0], [200.0, 0.0]],
            np.random.default_rng(0).uniform(0, 200, size=(8, 2)),
            radius=500.0,
        )
        gain = lognormal_shadowing(sc.server_xy, sc.user_xy, rng=3, sigma_db=8.0)
        instance = IDDEInstance(
            sc, build_topology(2, 2.0, 0), gain_override=gain
        )
        engine = instance.new_engine()
        assert np.allclose(engine.gain, gain)
        # The game still converges under the shadowed environment.
        result = IddeUGame(instance).run(rng=0)
        assert result.converged
