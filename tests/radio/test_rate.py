"""Shannon rate tests (Eqs. 3-4)."""

import numpy as np
import pytest

from repro.radio.rate import capped_rate, shannon_rate


class TestShannonRate:
    def test_unit_sinr(self):
        assert shannon_rate(200.0, np.array(1.0)) == pytest.approx(200.0)

    def test_zero_sinr(self):
        assert shannon_rate(200.0, np.array(0.0)) == 0.0

    def test_negative_clamped(self):
        assert shannon_rate(200.0, np.array(-0.5)) == 0.0

    def test_monotone_in_sinr(self):
        sinr = np.linspace(0, 100, 50)
        r = shannon_rate(100.0, sinr)
        assert (np.diff(r) > 0).all()

    def test_bandwidth_scales_linearly(self):
        assert shannon_rate(400.0, np.array(3.0)) == pytest.approx(
            2 * shannon_rate(200.0, np.array(3.0))
        )

    def test_vector_bandwidth(self):
        out = shannon_rate(np.array([100.0, 200.0]), np.array([1.0, 1.0]))
        assert np.allclose(out, [100.0, 200.0])


class TestCappedRate:
    def test_cap_binds(self):
        assert capped_rate(200.0, np.array(1e15), 180.0) == pytest.approx(180.0)

    def test_cap_loose(self):
        assert capped_rate(200.0, np.array(1.0), 1000.0) == pytest.approx(200.0)

    def test_elementwise_cap(self):
        out = capped_rate(200.0, np.array([1e15, 0.0]), np.array([150.0, 150.0]))
        assert np.allclose(out, [150.0, 0.0])
