"""DUP-G baseline tests."""

import numpy as np

from repro.baselines.dup_g import DupG
from repro.core.profiles import UNALLOCATED


class TestServerGame:
    def test_balances_load(self):
        """With two co-located servers, the load-balancing game must split
        users across them rather than piling onto one."""
        from ..conftest import make_instance, make_scenario

        rng = np.random.default_rng(0)
        sc = make_scenario(
            [[0.0, 0.0], [10.0, 0.0]],
            rng.uniform(-50, 50, size=(12, 2)),
            radius=500.0,
        )
        inst = make_instance(sc)
        assigned, rounds = DupG()._server_game(inst)
        counts = np.bincount(assigned[assigned != UNALLOCATED], minlength=2)
        assert abs(int(counts[0]) - int(counts[1])) <= 2
        assert rounds >= 1

    def test_game_terminates(self, medium_instance):
        assigned, rounds = DupG()._server_game(medium_instance)
        assert rounds < DupG().max_rounds
        covered = medium_instance.scenario.covered_users
        assert ((assigned != UNALLOCATED) == covered).all()


class TestPacking:
    def test_all_serving_servers_pack_same_head(self, medium_instance):
        """Collaboration-blind packing: every serving server holds the
        most popular item that fits, so the head is replicated everywhere
        it can be."""
        s = DupG().solve(medium_instance, rng=0)
        popularity = medium_instance.requests_per_item.astype(float)
        sizes = medium_instance.scenario.sizes
        head = int(np.argmax(popularity / sizes))
        serving = np.unique(s.allocation.server[s.allocation.allocated])
        fits = medium_instance.scenario.storage[serving] >= sizes[head]
        assert s.delivery.placed[serving[fits], head].all()

    def test_idle_servers_store_nothing(self, line_instance):
        s = DupG().solve(line_instance, rng=0)
        idle = np.setdiff1d(
            np.arange(line_instance.n_servers),
            np.unique(s.allocation.server[s.allocation.allocated]),
        )
        assert s.delivery.placed[idle].sum() == 0

    def test_extras(self, small_instance):
        s = DupG().solve(small_instance, rng=0)
        assert s.extras["game_rounds"] >= 1
