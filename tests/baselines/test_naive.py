"""Strawman solver tests."""

import numpy as np
import pytest

from repro.baselines import solver_by_name
from repro.baselines.naive import NearestNeighbor, RandomSolver


class TestRandomSolver:
    def test_valid(self, small_instance):
        s = RandomSolver().solve(small_instance, rng=0)
        s.allocation.validate(small_instance.scenario)
        s.delivery.validate(small_instance.scenario)

    def test_seed_matters(self, small_instance):
        a = RandomSolver().solve(small_instance, rng=np.random.default_rng(1))
        b = RandomSolver().solve(small_instance, rng=np.random.default_rng(2))
        assert a.allocation != b.allocation or a.delivery != b.delivery


class TestNearestNeighbor:
    def test_strongest_server_chosen(self, small_instance):
        s = NearestNeighbor().solve(small_instance, rng=0)
        engine = small_instance.new_engine()
        for j in range(small_instance.n_users):
            cov = small_instance.scenario.covering_servers[j]
            if len(cov) == 0:
                continue
            assert s.allocation.server[j] == int(
                cov[int(np.argmax(engine.gain[cov, j]))]
            )

    def test_channels_balanced_per_server(self, medium_instance):
        s = NearestNeighbor().solve(medium_instance, rng=0)
        for i in range(medium_instance.n_servers):
            users = s.allocation.users_of_server(i)
            if len(users) < 2:
                continue
            counts = np.bincount(
                s.allocation.channel[users],
                minlength=int(medium_instance.scenario.channels[i]),
            )
            assert counts.max() - counts.min() <= 1

    def test_popularity_packing(self, medium_instance):
        s = NearestNeighbor().solve(medium_instance, rng=0)
        s.delivery.validate(medium_instance.scenario)
        assert s.delivery.n_replicas > 0


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["idde-g", "idde-ip", "saa", "cdp", "dup-g", "random", "nearest"]
    )
    def test_lookup(self, name):
        solver = solver_by_name(name)
        assert solver.name

    def test_case_insensitive(self):
        assert solver_by_name("IDDE-G").name == "IDDE-G"

    def test_kwargs_forwarded(self):
        solver = solver_by_name("idde-ip", time_budget_s=1.5)
        assert solver.time_budget_s == 1.5

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            solver_by_name("oracle")

    def test_default_solvers_order(self):
        from repro.baselines import default_solvers

        names = [s.name for s in default_solvers()]
        assert names == ["IDDE-IP", "IDDE-G", "SAA", "CDP", "DUP-G"]
