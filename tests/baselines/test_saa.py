"""SAA baseline tests."""

import numpy as np
import pytest

from repro.baselines.saa import SAA
from repro.core.objectives import average_delivery_latency_ms
from repro.core.profiles import DeliveryProfile


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_samples": 0},
            {"n_rounds": 0},
            {"sample_fraction": 0.0},
            {"sample_fraction": 1.5},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            SAA(**kwargs)


class TestBehaviour:
    def test_allocation_random_but_covered(self, small_instance):
        s = SAA(n_samples=3, n_rounds=1).solve(small_instance, rng=0)
        s.allocation.validate(small_instance.scenario)
        assert s.allocation.n_allocated == int(
            small_instance.scenario.covered_users.sum()
        )

    def test_placement_avoids_pointless_duplicates(self, line_instance):
        """With better-response refinement, a server skips items that a
        peer already serves cheaply when its own demand is lower-value."""
        s = SAA(n_samples=20, n_rounds=2).solve(line_instance, rng=0)
        # The placement must reduce latency below cloud-only.
        empty = DeliveryProfile.empty(4, 3)
        cloud_only = average_delivery_latency_ms(line_instance, s.allocation, empty)
        assert s.l_avg_ms < cloud_only

    def test_more_samples_cost_more_time(self, medium_instance):
        cheap = SAA(n_samples=2, n_rounds=1).solve(medium_instance, rng=0)
        pricey = SAA(n_samples=80, n_rounds=3).solve(medium_instance, rng=0)
        assert pricey.wall_time_s > cheap.wall_time_s

    def test_extras(self, small_instance):
        s = SAA(n_samples=4, n_rounds=2).solve(small_instance, rng=0)
        assert s.extras == {"n_samples": 4, "n_rounds": 2}

    def test_sampling_seed_sensitivity(self, small_instance):
        a = SAA(n_samples=3, n_rounds=1).solve(small_instance, rng=0)
        b = SAA(n_samples=3, n_rounds=1).solve(small_instance, rng=99)
        # Different sampling streams may change the profile; both valid.
        a.delivery.validate(small_instance.scenario)
        b.delivery.validate(small_instance.scenario)
