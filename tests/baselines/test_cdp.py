"""CDP baseline tests."""

import numpy as np

from repro.baselines.cdp import CDP


class TestAllocation:
    def test_strongest_server(self, small_instance):
        s = CDP().solve(small_instance, rng=0)
        engine = small_instance.new_engine()
        for j in range(small_instance.n_users):
            cov = small_instance.scenario.covering_servers[j]
            if len(cov) == 0:
                continue
            expected = int(cov[int(np.argmax(engine.gain[cov, j]))])
            assert s.allocation.server[j] == expected

    def test_channels_within_range(self, small_instance):
        s = CDP().solve(small_instance, rng=0)
        alloc = s.allocation
        mask = alloc.allocated
        channels = alloc.channel[mask]
        servers = alloc.server[mask]
        assert (channels >= 0).all()
        assert (channels < small_instance.scenario.channels[servers]).all()


class TestPlacement:
    def test_places_popular_items_widely(self, medium_instance):
        s = CDP().solve(medium_instance, rng=0)
        popularity = medium_instance.requests_per_item
        placed_per_item = s.delivery.placed.sum(axis=0)
        # The most popular item gets at least as many replicas as the least
        # popular one under the popularity-uniform demand model.
        top = int(np.argmax(popularity))
        bottom = int(np.argmin(popularity))
        assert placed_per_item[top] >= placed_per_item[bottom]

    def test_fast(self, medium_instance):
        s = CDP().solve(medium_instance, rng=0)
        assert s.wall_time_s < 1.0

    def test_extras(self, small_instance):
        s = CDP().solve(small_instance, rng=0)
        assert s.extras["delivery_iterations"] >= 1
