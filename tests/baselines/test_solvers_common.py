"""Contract tests every approach must satisfy."""

import numpy as np
import pytest

from repro.baselines import CDP, SAA, DupG, IddeIP, NearestNeighbor, RandomSolver
from repro.core.idde_g import IddeG

ALL_SOLVERS = [
    pytest.param(lambda: IddeG(), id="IDDE-G"),
    pytest.param(lambda: IddeIP(time_budget_s=0.3), id="IDDE-IP"),
    pytest.param(lambda: SAA(n_samples=5, n_rounds=1), id="SAA"),
    pytest.param(lambda: CDP(), id="CDP"),
    pytest.param(lambda: DupG(), id="DUP-G"),
    pytest.param(lambda: RandomSolver(), id="Random"),
    pytest.param(lambda: NearestNeighbor(), id="Nearest"),
]


@pytest.mark.parametrize("factory", ALL_SOLVERS)
class TestSolverContract:
    def test_produces_valid_strategy(self, factory, small_instance):
        strategy = factory().solve(small_instance, rng=0)
        # solve() already validates; re-validate explicitly for belt and
        # braces, and check the metric ranges.
        strategy.allocation.validate(small_instance.scenario)
        strategy.delivery.validate(small_instance.scenario)
        assert strategy.r_avg >= 0
        assert strategy.l_avg_ms >= 0
        assert strategy.wall_time_s > 0

    def test_all_covered_users_allocated(self, factory, small_instance):
        strategy = factory().solve(small_instance, rng=0)
        covered = small_instance.scenario.covered_users
        assert (strategy.allocation.allocated >= covered).all() or (
            strategy.allocation.allocated == covered
        ).all()

    def test_latency_never_beats_full_local_replication(self, factory, line_instance):
        strategy = factory().solve(line_instance, rng=0)
        assert strategy.l_avg_ms >= 0.0

    def test_deterministic_given_rng(self, factory, small_instance):
        a = factory().solve(small_instance, rng=np.random.default_rng(7))
        b = factory().solve(small_instance, rng=np.random.default_rng(7))
        if isinstance(factory(), IddeIP):
            pytest.skip("IDDE-IP is wall-clock budgeted, not proposal budgeted")
        assert a.allocation == b.allocation
        assert a.delivery == b.delivery
