"""IDDE-IP (budgeted joint search) tests."""

import time

import pytest

from repro.baselines.idde_ip import IddeIP


class TestBudget:
    def test_respects_wall_clock(self, small_instance):
        solver = IddeIP(time_budget_s=0.4)
        t0 = time.perf_counter()
        solver.solve(small_instance, rng=0)
        elapsed = time.perf_counter() - t0
        assert 0.3 < elapsed < 2.0  # budget plus bounded overhead

    def test_longer_budget_not_worse_on_objective(self, small_instance):
        short = IddeIP(time_budget_s=0.15).solve(small_instance, rng=0)
        long = IddeIP(time_budget_s=1.2).solve(small_instance, rng=0)
        j_short = short.extras["best_objective"]
        j_long = long.extras["best_objective"]
        # Annealing is stochastic but the incumbent is monotone in budget
        # for the same seed stream up to schedule effects; allow slack.
        assert j_long >= j_short - 0.05

    def test_extras_recorded(self, small_instance):
        s = IddeIP(time_budget_s=0.2).solve(small_instance, rng=0)
        assert s.extras["proposals"] > 0
        assert 0 <= s.extras["accepted"] <= s.extras["proposals"]
        assert s.extras["time_budget_s"] == 0.2

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            IddeIP(time_budget_s=0.0)


class TestQuality:
    def test_beats_random_solver(self, medium_instance):
        from repro.baselines.naive import RandomSolver

        ip = IddeIP(time_budget_s=1.0).solve(medium_instance, rng=0)
        rnd = RandomSolver().solve(medium_instance, rng=0)
        assert ip.r_avg > rnd.r_avg

    def test_incumbent_always_feasible(self, small_instance):
        s = IddeIP(time_budget_s=0.3).solve(small_instance, rng=1)
        s.delivery.validate(small_instance.scenario)
        s.allocation.validate(small_instance.scenario)
