"""The :mod:`repro.api` façade: solve(), Solution and the solver registry."""

from __future__ import annotations

import json

import pytest

from repro.api import SOLUTION_SCHEMA, Solution, solve
from repro.baselines import CANONICAL_SOLVERS, resolve_solver_name, solver_by_name
from repro.config import DeliveryConfig, GameConfig
from repro.core.idde_g import IddeG
from repro.core.instance import IDDEInstance
from repro.errors import ConfigurationError, SolverLookupError
from repro.obs import RecordingTracer


@pytest.fixture(scope="module")
def instance() -> IDDEInstance:
    return IDDEInstance.generate(n=6, m=24, k=3, density=1.0, seed=3)


class TestSolve:
    def test_matches_direct_solver(self, instance):
        sol = solve(instance, "idde-g", rng=3)
        direct = IddeG().solve(instance, rng=3)
        assert sol.r_avg == direct.r_avg
        assert sol.l_avg_ms == direct.l_avg_ms
        assert sol.solver == "IDDE-G"

    def test_game_and_delivery_results_attached(self, instance):
        sol = solve(instance, "idde-g", rng=3)
        assert sol.game is not None and sol.game.moves > 0
        assert sol.delivery_result is not None
        assert sol.evaluation.allocated_users > 0

    def test_baseline_has_no_game(self, instance):
        sol = solve(instance, "cdp", rng=3)
        assert sol.game is None and sol.delivery_result is None
        assert sol.r_avg > 0

    def test_name_is_case_insensitive(self, instance):
        sol = solve(instance, "IDDE-G", rng=3)
        assert sol.solver == "IDDE-G"

    def test_batched_kernel_recorded_and_identical(self, instance):
        ref = solve(instance, "idde-g", rng=3)
        bat = solve(instance, "idde-g", game_config=GameConfig(kernel="batched"), rng=3)
        assert bat.config["kernel"] == "batched"
        assert bat.r_avg == ref.r_avg
        assert bat.l_avg_ms == ref.l_avg_ms
        assert bat.game.move_log == ref.game.move_log

    def test_game_config_rejected_for_baselines(self, instance):
        with pytest.raises(ConfigurationError, match="idde-g"):
            solve(instance, "cdp", game_config=GameConfig(), rng=3)
        with pytest.raises(ConfigurationError):
            solve(instance, "saa", delivery_config=DeliveryConfig(), rng=3)

    def test_tracer_observes_the_run(self, instance):
        tracer = RecordingTracer()
        solve(instance, "idde-g", tracer=tracer, rng=3)
        names = [s.name for s in tracer.spans]
        assert "api.solve" in names
        assert "game.run" in names
        assert "delivery.greedy" in names
        assert tracer.counters["game.moves"] > 0

    def test_tracer_does_not_perturb_results(self, instance):
        quiet = solve(instance, "idde-g", rng=3)
        traced = solve(instance, "idde-g", tracer=RecordingTracer(), rng=3)
        assert traced.game.move_log == quiet.game.move_log
        assert traced.r_avg == quiet.r_avg


class TestSolutionDocument:
    def test_to_dict_surfaces_certificate_fields(self, instance):
        doc = solve(instance, "idde-g", rng=3).to_dict()
        assert doc["schema"] == SOLUTION_SCHEMA
        assert doc["game"]["effective_epsilon"] > 0
        assert isinstance(doc["game"]["capped_users"], list)
        assert doc["config"]["kernel"] == "reference"
        assert doc["config"]["schedule"] == "round-robin"
        assert doc["delivery"]["iterations"] == len(doc["delivery"]["placements"])
        json.dumps(doc)

    def test_baseline_document(self, instance):
        doc = solve(instance, "saa", rng=3).to_dict()
        assert doc["game"] is None and doc["delivery"] is None
        assert doc["solver"] == "SAA"
        json.dumps(doc)

    def test_summary_line(self, instance):
        line = solve(instance, "idde-g", rng=3).summary()
        assert "IDDE-G" in line and "R_avg" in line and "game=" in line


class TestRegistry:
    def test_canonical_names_resolve(self):
        for name in CANONICAL_SOLVERS:
            assert resolve_solver_name(name) == name
        assert resolve_solver_name("  IDDE-G ") == "idde-g"

    def test_unknown_name_did_you_mean(self):
        with pytest.raises(SolverLookupError) as err:
            resolve_solver_name("ide-g")
        assert "did you mean 'idde-g'" in err.value.args[0]
        # The lookup error is a KeyError for callers catching that.
        assert isinstance(err.value, KeyError)

    def test_dropped_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="bogus_kw"):
            solver = solver_by_name("cdp", bogus_kw=1)
        assert solver.name == "CDP"

    def test_accepted_kwargs_pass_through(self):
        solver = solver_by_name("idde-ip", time_budget_s=0.5)
        assert solver.time_budget_s == 0.5


class TestSolutionConstruction:
    def test_frozen(self, instance):
        sol = solve(instance, "idde-g", rng=3)
        with pytest.raises(AttributeError):
            sol.solver = "other"
        assert isinstance(sol, Solution)


class TestWarmStart:
    def test_warm_from_equilibrium_is_zero_moves(self, instance):
        cold = solve(instance, "idde-g", rng=0)
        warm = solve(instance, "idde-g", warm_start=cold, rng=1)
        assert warm.game.moves == 0
        assert warm.game.is_nash
        assert warm.config["warm_start"] is True
        assert warm.extras["warm_detached"] == 0

    def test_accepts_bare_allocation_profile(self, instance):
        cold = solve(instance, "idde-g", rng=0)
        warm = solve(instance, "idde-g", warm_start=cold.allocation, rng=1)
        assert warm.game.moves == 0

    def test_active_mask_detaches_and_excludes(self, instance):
        import numpy as np

        cold = solve(instance, "idde-g", rng=0)
        active = np.ones(instance.n_users, dtype=bool)
        inactive = [0, 1, 2]
        active[inactive] = False
        warm = solve(instance, "idde-g", warm_start=cold, active=active, rng=1)
        assert not warm.allocation.allocated[inactive].any()
        assert warm.config["active_users"] == instance.n_users - 3
        assert warm.extras["warm_detached"] == int(
            cold.allocation.allocated[inactive].sum()
        )
        assert warm.game.is_nash

    def test_warm_composes_with_sharding(self, instance):
        from repro.sharding import ShardConfig

        cold = solve(instance, "idde-g", rng=0)
        warm = solve(
            instance,
            "idde-g",
            warm_start=cold,
            sharding=ShardConfig(n_workers=0),
            rng=1,
        )
        assert warm.game.is_nash
        assert warm.config["warm_start"] is True

    def test_warm_start_traced(self, instance):
        cold = solve(instance, "idde-g", rng=0)
        tracer = RecordingTracer()
        solve(instance, "idde-g", warm_start=cold, tracer=tracer, rng=1)
        spans = [s for s in tracer.spans if s.name == "api.warm_start"]
        assert len(spans) == 1
        assert spans[0].attrs["detached"] == 0
        assert spans[0].attrs["carried"] == cold.allocation.n_allocated

    def test_rejected_for_baselines(self, instance):
        cold = solve(instance, "idde-g", rng=0)
        with pytest.raises(ConfigurationError, match="warm_start"):
            solve(instance, "nearest", warm_start=cold)

    def test_active_rejected_for_baselines(self, instance):
        import numpy as np

        with pytest.raises(ConfigurationError, match="active"):
            solve(
                instance,
                "random",
                active=np.ones(instance.n_users, dtype=bool),
                rng=0,
            )


class TestSolutionSchemaVersions:
    """idde-solution/1 -> /2: the dual-version loader and typed extras."""

    def _v2_doc(self, instance):
        from repro.request import SolveRequest

        return solve(instance, SolveRequest(solver="idde-g", rng=3)).to_dict()

    def test_loader_passes_v2_through(self, instance):
        from repro.api import load_solution_document

        doc = self._v2_doc(instance)
        loaded = load_solution_document(json.loads(json.dumps(doc)))
        assert loaded["schema"] == SOLUTION_SCHEMA
        assert loaded["request"]["schema"] == "idde-request/1"

    def test_loader_upgrades_v1_in_place(self, instance):
        from repro.api import SOLUTION_SCHEMA_V1, load_solution_document

        doc = self._v2_doc(instance)
        doc["schema"] = SOLUTION_SCHEMA_V1
        del doc["request"]  # v1 never recorded the producing request
        loaded = load_solution_document(doc)
        assert loaded["schema"] == SOLUTION_SCHEMA
        assert loaded["request"] is None
        assert loaded["solver"] == "IDDE-G"

    def test_loader_rejects_unknown_schema(self, instance):
        from repro.api import load_solution_document

        doc = self._v2_doc(instance)
        doc["schema"] = "idde-solution/3"
        with pytest.raises(ConfigurationError, match="idde-solution"):
            load_solution_document(doc)

    def test_loader_rejects_missing_keys(self):
        from repro.api import load_solution_document

        with pytest.raises(ConfigurationError, match="r_avg"):
            load_solution_document({"schema": SOLUTION_SCHEMA, "solver": "x"})
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_solution_document([1])

    def test_typed_extras_accessors(self, instance):
        from repro.sharding import ShardConfig

        cold = solve(instance, "idde-g", rng=0)
        assert cold.warm_detached is None
        assert cold.sharding_stats is None
        assert cold.delivery_kernel == "reference"

        warm = solve(instance, "idde-g", warm_start=cold, rng=1)
        assert warm.warm_detached == 0

        sharded = solve(
            instance, "idde-g", sharding=ShardConfig(n_workers=0), rng=0
        )
        stats = sharded.sharding_stats
        assert stats is not None and stats["n_shards"] >= 1
