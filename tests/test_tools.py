"""Tests for the repo-level helper scripts in ``tools/``."""

from __future__ import annotations

import importlib.util
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[1] / "tools"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


MYPY_REPORT = """\
src/repro/core/game.py:10: error: Incompatible return value  [return-value]
src/repro/core/game.py:11: note: See https://example
src/repro/radio/sinr.py:5:17: error: Argument 1 has incompatible type  [arg-type]
Found 2 errors in 2 files (checked 10 source files)
"""


class TestMypyBudget:
    def test_count_errors_ignores_notes_and_summary(self):
        mod = _load("check_mypy_budget")
        assert mod.count_errors(MYPY_REPORT) == 2
        assert mod.count_errors("Success: no issues found in 10 files\n") == 0

    def test_budget_file_is_well_formed(self):
        mod = _load("check_mypy_budget")
        budget = mod.load_budget()
        assert budget["target"] == "src/repro"
        assert isinstance(budget["max_errors"], int)

    def test_skips_when_mypy_missing(self, monkeypatch, capsys):
        mod = _load("check_mypy_budget")
        monkeypatch.setattr(mod, "run_mypy", lambda target: None)
        assert mod.main([]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_fails_over_budget_and_passes_under(self, monkeypatch, capsys):
        mod = _load("check_mypy_budget")
        monkeypatch.setattr(mod, "run_mypy", lambda target: (1, MYPY_REPORT))
        monkeypatch.setattr(
            mod, "load_budget", lambda path=None: {"max_errors": 1}
        )
        assert mod.main([]) == 1
        assert "budget exceeded" in capsys.readouterr().out
        monkeypatch.setattr(
            mod, "load_budget", lambda path=None: {"max_errors": 5}
        )
        assert mod.main([]) == 0
        assert "slack" in capsys.readouterr().out

    def test_update_refuses_to_grow(self, monkeypatch, capsys):
        mod = _load("check_mypy_budget")
        monkeypatch.setattr(mod, "run_mypy", lambda target: (1, MYPY_REPORT))
        monkeypatch.setattr(
            mod, "load_budget", lambda path=None: {"max_errors": 1}
        )
        assert mod.main(["--update"]) == 1
        assert "refusing to grow" in capsys.readouterr().out
