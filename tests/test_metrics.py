"""QoE metric tests."""

import numpy as np
import pytest

from repro.core.idde_g import IddeG
from repro.metrics import (
    coverage_ratio,
    jain_index,
    percentile_summary,
    strategy_report,
)


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index(np.full(10, 3.7)) == pytest.approx(1.0)

    def test_single_taker_is_one_over_n(self):
        x = np.zeros(8)
        x[0] = 5.0
        assert jain_index(x) == pytest.approx(1 / 8)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.random(15) * 100
            j = jain_index(x)
            assert 1 / 15 - 1e-12 <= j <= 1.0 + 1e-12

    def test_empty_and_zero(self):
        assert jain_index(np.array([])) == 1.0
        assert jain_index(np.zeros(5)) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index(np.array([1.0, -1.0]))

    def test_scale_invariant(self):
        x = np.array([1.0, 2.0, 3.0])
        assert jain_index(x) == pytest.approx(jain_index(10 * x))


class TestPercentileSummary:
    def test_keys_and_ordering(self):
        s = percentile_summary(np.arange(101, dtype=float))
        assert s["min"] <= s["p10"] <= s["median"] <= s["p90"] <= s["max"]
        assert s["min"] == 0.0 and s["max"] == 100.0
        assert s["median"] == 50.0

    def test_empty(self):
        s = percentile_summary(np.array([]))
        assert all(v == 0.0 for v in s.values())


class TestCoverageRatio:
    def test_full(self, tiny_instance):
        from repro.core.game import IddeUGame

        profile = IddeUGame(tiny_instance).run(rng=0).profile
        assert coverage_ratio(profile) == 1.0

    def test_empty(self):
        from repro.core.profiles import AllocationProfile

        assert coverage_ratio(AllocationProfile.empty(4)) == 0.0
        assert coverage_ratio(AllocationProfile.empty(0)) == 1.0


class TestStrategyReport:
    def test_bundle(self, small_instance):
        s = IddeG().solve(small_instance, rng=0)
        report = strategy_report(small_instance, s.allocation, s.delivery)
        assert report.r_avg == pytest.approx(s.r_avg)
        assert report.l_avg_ms == pytest.approx(s.l_avg_ms)
        assert 0 < report.rate_fairness <= 1.0
        assert report.allocated_ratio == 1.0
        assert report.rate_percentiles["max"] >= report.rate_percentiles["min"]

    def test_game_fairer_than_random(self, medium_instance):
        """The equilibrium's rate distribution is fairer than a random
        allocation's (the interference_study example's claim)."""
        from repro.baselines.naive import RandomSolver

        game = IddeG().solve(medium_instance, rng=0)
        rand = RandomSolver().solve(medium_instance, rng=0)
        fair_game = strategy_report(
            medium_instance, game.allocation, game.delivery
        ).rate_fairness
        fair_rand = strategy_report(
            medium_instance, rand.allocation, rand.delivery
        ).rate_fairness
        assert fair_game > fair_rand
