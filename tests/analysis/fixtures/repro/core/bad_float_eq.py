"""Lint fixture: seeded IDDE006 violations.  Never imported."""


def converged(benefit: float) -> bool:
    return benefit == 0.0  # expect IDDE006


def same_gain(a: float, b: float, scale: float) -> bool:
    return a / scale != float(b)  # expect IDDE006
