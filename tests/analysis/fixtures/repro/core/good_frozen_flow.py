"""Near-miss counterpart to ``bad_frozen_flow``: the callee returns a
``dataclasses.replace`` copy instead of mutating — IDDE013 stays silent."""

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class Placement:
    server: int
    cost: float


def rescore(placement, cost):
    return dataclasses.replace(placement, cost=cost)


def touch_mutable(record, cost):
    # mutating a parameter is fine when no frozen instance is bound to it
    record.cost = cost
    return record


class MutableRecord:
    def __init__(self, cost):
        self.cost = cost


def evaluate():
    best = Placement(server=0, cost=1.0)
    rescored = rescore(best, 0.5)
    scratch = MutableRecord(cost=2.0)
    return rescored, touch_mutable(scratch, 0.25)
