"""Near-miss counterpart to ``bad_unit_flow``: the same computations with
units converted at the boundary — IDDE011 must stay silent."""

from repro.units import ms_to_seconds, seconds_to_ms


def mixed_arithmetic(deadline_s, elapsed_ms):
    return deadline_s - ms_to_seconds(elapsed_ms)


def mixed_comparison(timeout_s, latency_ms):
    return latency_ms > seconds_to_ms(timeout_s)


def record(latency_ms):
    return latency_ms


def well_bound_argument(wait_s):
    return record(seconds_to_ms(wait_s))


def rate_algebra(size_mb, rate_mbps):
    # division changes dimensions: MB / (MB/s) -> s is fine untagged
    return size_mb / rate_mbps


def total_ms(a_s, b_s):
    return seconds_to_ms(a_s + b_s)
