"""Seeded IDDE013 violation: a frozen instance aliased into a callee that
mutates its (untyped) parameter — invisible to the per-file IDDE005."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Placement:
    server: int
    cost: float


def rescore(placement, cost):
    # the parameter is untyped: per-file analysis cannot see it is frozen
    placement.cost = cost
    return placement


def evaluate():
    best = Placement(server=0, cost=1.0)
    # aliases the frozen instance into a mutating callee
    return rescore(best, 0.5)
