"""Lint fixture: seeded IDDE003/IDDE004 violations.  Never imported."""


def to_bytes(size_mb: float) -> float:
    return size_mb * 1e6  # expect IDDE003 (units.MB)


def report(latency_s: float) -> float:
    latency_ms = latency_s * 1000.0  # expect IDDE003 + IDDE004
    return latency_ms


def widen(window_ms: float) -> float:
    window_s = window_ms + 5.0  # expect IDDE004 (missing ms_to_seconds)
    return window_s
