"""Seeded IDDE011 violations: cross-unit dataflow the per-file
IDDE003/IDDE004 checks cannot see (no magic literals, no one-line
suffix-mismatched assignments)."""

from repro.units import seconds_to_ms


def mixed_arithmetic(deadline_s, elapsed_ms):
    # s minus ms without a conversion
    return deadline_s - elapsed_ms


def mixed_comparison(timeout_s, latency_ms):
    # ordering values of different units
    return latency_ms > timeout_s


def record(latency_ms):
    return latency_ms


def mis_bound_argument(wait_s):
    # an s-tagged value bound to a parameter declared *_ms
    return record(wait_s)


def wrong_converter_input(duration_ms):
    # feeding seconds_to_ms a value already in ms
    return seconds_to_ms(duration_ms)


def total_ms(a_s, b_s):
    # name promises ms, body returns seconds
    return a_s + b_s
