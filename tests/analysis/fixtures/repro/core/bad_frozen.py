"""Lint fixture: seeded IDDE005 violations.  Never imported."""

from dataclasses import dataclass

from repro.types import User


@dataclass(frozen=True)
class Snapshot:
    value: float


def clobber() -> Snapshot:
    snap = Snapshot(value=1.0)
    snap.value = 2.0  # expect IDDE005
    return snap


def relocate() -> None:
    u = User(index=0, x=0.0, y=0.0, power=0.1, rmax=10.0)
    u.x = 5.0  # expect IDDE005


def backdoor(u: User) -> None:
    object.__setattr__(u, "x", 0.0)  # expect IDDE005
