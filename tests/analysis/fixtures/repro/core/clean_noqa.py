"""Lint fixture: every violation here is suppressed — must lint clean."""

import random  # idde: noqa[IDDE001]


def report(latency_s: float) -> float:
    latency_ms = latency_s * 1000.0  # idde: noqa
    return latency_ms + random.random()
