"""Lint fixture: seeded IDDE009 violations.  Never imported."""

from repro.baselines import naive  # expect IDDE009

from ..solvers import milp_delivery  # expect IDDE009

__all__ = ["naive", "milp_delivery"]
