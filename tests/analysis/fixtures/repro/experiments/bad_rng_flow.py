"""Seeded IDDE010 violations: every anti-pattern of interprocedural RNG
stream flow, written to stay silent under the per-file IDDE001/IDDE002."""

from repro.parallel import parallel_map
from repro.rng import ensure_rng, spawn_rng

# module-global generator: one stream shared by every caller
_SHARED = spawn_rng(7, "module")


def draw(scale, rng=None):
    g = ensure_rng(rng)
    return g.random() * scale


def reseed_mid_chain(x, rng):
    # constant re-seed: the caller's stream is thrown away
    child = spawn_rng(42, "sub")
    return child, x


def stochastic_worker(item):
    # transitively stochastic (draw falls back to fresh entropy) but
    # spawn-free and without an rng/seed parameter of its own
    return draw(item)


def fan_out(items):
    return parallel_map(stochastic_worker, items)


def unthreaded(x, rng):
    # holds a stream but does not pass it on; draw() defaults to None
    return draw(x)
