"""Seeded IDDE012 violations: workers that cannot survive (or silently
lie across) a process boundary."""

from repro.parallel import parallel_map

RESULTS = []


def accumulating_worker(x):
    # mutates a captured module-level container: lost in the child
    RESULTS.append(x)
    return x


def fan_out_accumulating(items):
    return parallel_map(accumulating_worker, items)


def fan_out_nested(items):
    def closure_worker(x):
        return x + 1

    # nested function: unpicklable under process fan-out
    return parallel_map(closure_worker, items)


def fan_out_lambda(items):
    return parallel_map(lambda x: x * 2, items)
