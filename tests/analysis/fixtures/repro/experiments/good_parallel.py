"""Near-miss counterpart to ``bad_parallel``: module-level workers that
communicate only via arguments and return values — IDDE012 stays silent."""

from repro.parallel import parallel_map

SCALE = 3  # reading a module constant is fine


def pure_worker(x):
    local = []  # locals named like containers are not captured state
    local.append(x * SCALE)
    return local[0]


def fan_out(items):
    return parallel_map(pure_worker, items)


def aggregate(items):
    # mutation happens in the parent, after the fan-out returns
    results = parallel_map(pure_worker, items)
    RESULTS = []
    RESULTS.extend(results)
    return RESULTS
