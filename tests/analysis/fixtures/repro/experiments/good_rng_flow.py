"""Near-miss counterpart to ``bad_rng_flow``: the same call shapes with
streams threaded correctly — IDDE010 must stay silent on every line."""

from repro.parallel import parallel_map
from repro.rng import ensure_rng, spawn_rng


def draw(scale, rng=None):
    g = ensure_rng(rng)
    return g.random() * scale


def derive_child(x, seed):
    # spawning from the caller-provided seed keeps provenance
    child = spawn_rng(seed, "sub")
    return child, x


def spawning_worker(item):
    # per-item stream derived from the spec's own seed
    rng = spawn_rng(item.seed, "worker")
    return draw(item.scale, rng=rng)


def fan_out(items):
    return parallel_map(spawning_worker, items)


def threaded(x, rng):
    return draw(x, rng=rng)
