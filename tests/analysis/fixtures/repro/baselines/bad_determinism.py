"""Lint fixture: seeded IDDE007/IDDE008 violations.  Never imported."""

import time


def tie_break(candidates: list[int]) -> list[int]:
    order = [c for c in set(candidates)]  # expect IDDE007
    for extra in {1, 2, 3}:  # expect IDDE007
        order.append(extra)
    return order


def stamp_run() -> float:
    return time.time()  # expect IDDE008
