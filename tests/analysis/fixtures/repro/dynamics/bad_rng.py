"""Lint fixture: seeded IDDE001/IDDE002 violations.  Never imported."""

import random  # expect IDDE001

import numpy as np

from repro.rng import ensure_rng


def draw_jitter() -> float:
    rng = np.random.default_rng(123)  # expect IDDE001
    return float(rng.random()) + random.random()


def hidden_stream() -> float:
    rng = ensure_rng(None)  # expect IDDE002: no rng/seed parameter
    return float(rng.random())
