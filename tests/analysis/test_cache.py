"""Incremental-cache behaviour: content-hash hits and misses, rule-set
signature invalidation, tree-hash project caching, and pruning of
removed files."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.semantic.cache import LintCache, content_hash, rules_signature

BAD_UNITS = "def f(size_mb):\n    return size_mb * 1e6\n"
BAD_RNG_GLOBAL = (
    "from repro.rng import ensure_rng\n"
    "_SHARED = ensure_rng(0)\n"
)


def make_tree(root: Path) -> Path:
    pkg = root / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "m.py").write_text(BAD_UNITS, encoding="utf-8")
    (root / "repro" / "experiments").mkdir()
    (root / "repro" / "experiments" / "g.py").write_text(
        BAD_RNG_GLOBAL, encoding="utf-8"
    )
    return root


class TestPrimitives:
    def test_content_hash_tracks_content_not_identity(self):
        assert content_hash("x = 1\n") == content_hash("x = 1\n")
        assert content_hash("x = 1\n") != content_hash("x = 2\n")

    def test_rules_signature_is_stable(self):
        assert rules_signature() == rules_signature()

    def test_round_trip(self, tmp_path):
        cache = LintCache(path=tmp_path / "c.json")
        cache.put_file("a.py", "h1", [])
        cache.put_project("tree1", [])
        cache.save()
        loaded = LintCache.load(tmp_path / "c.json")
        assert loaded.get_file("a.py", "h1") == []
        assert loaded.get_project("tree1") == []

    def test_signature_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "c.json"
        cache = LintCache(path=path)
        cache.put_file("a.py", "h1", [])
        cache.save()
        doc = json.loads(path.read_text())
        doc["signature"] = "something-else"
        path.write_text(json.dumps(doc))
        assert LintCache.load(path).files == {}

    def test_corrupt_document_is_ignored(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        assert LintCache.load(path).files == {}

    def test_stale_hash_misses(self, tmp_path):
        cache = LintCache(path=tmp_path / "c.json")
        cache.put_file("a.py", "h1", [])
        assert cache.get_file("a.py", "h2") is None
        assert cache.get_file("b.py", "h1") is None
        assert cache.misses == 2

    def test_prune_drops_dead_files(self, tmp_path):
        cache = LintCache(path=tmp_path / "c.json")
        cache.put_file("a.py", "h1", [])
        cache.put_file("b.py", "h2", [])
        cache.prune({"a.py"})
        assert set(cache.files) == {"a.py"}


class TestLintPathsIntegration:
    def test_warm_run_serves_everything_from_cache(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_path = tmp_path / "cache.json"
        cold = lint_paths([tree], cache=cache_path)
        assert {f.code for f in cold} == {"IDDE003", "IDDE010"}
        assert cache_path.exists()

        warm_cache = LintCache.load(cache_path)
        warm = lint_paths([tree], cache=warm_cache)
        assert warm == cold
        # two file hits + one project hit, nothing recomputed
        assert warm_cache.hits == 3
        assert warm_cache.misses == 0

    def test_edited_file_invalidates_file_and_project(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_path = tmp_path / "cache.json"
        lint_paths([tree], cache=cache_path)

        target = tree / "repro" / "core" / "m.py"
        target.write_text("def f(size_mb):\n    return size_mb\n", encoding="utf-8")
        warm_cache = LintCache.load(cache_path)
        findings = lint_paths([tree], cache=warm_cache)
        assert {f.code for f in findings} == {"IDDE010"}
        # edited file + changed tree hash both miss; untouched file still hits
        assert warm_cache.misses == 2
        assert warm_cache.hits == 1

    def test_removed_file_is_pruned_from_cache(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_path = tmp_path / "cache.json"
        lint_paths([tree], cache=cache_path)
        (tree / "repro" / "core" / "m.py").unlink()
        lint_paths([tree], cache=cache_path)
        doc = json.loads(cache_path.read_text())
        assert all("m.py" not in path for path in doc["files"])

    def test_rule_restriction_bypasses_cache(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_path = tmp_path / "cache.json"
        findings = lint_paths([tree], rules=["unit-honesty"], cache=cache_path)
        assert {f.code for f in findings} == {"IDDE003"}
        assert not cache_path.exists()

    def test_cached_findings_match_uncached(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_path = tmp_path / "cache.json"
        lint_paths([tree], cache=cache_path)  # populate
        assert lint_paths([tree], cache=cache_path) == lint_paths([tree])
