"""Per-rule unit tests: each rule code fires on its seeded fixture source
and stays silent on the compliant counterpart."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def codes(findings) -> set[str]:
    return {f.code for f in findings}


def lint_fixture(rel: str):
    path = FIXTURES / rel
    return lint_source(path.read_text(encoding="utf-8"), path=str(path))


class TestRngDiscipline:
    def test_fixture_violations(self):
        found = lint_fixture("repro/dynamics/bad_rng.py")
        assert codes(found) == {"IDDE001", "IDDE002"}
        assert sum(f.code == "IDDE001" for f in found) == 2  # import + call

    def test_rng_module_is_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint_source(src, path="src/repro/rng.py") == []
        # outside rng.py both the per-file ban (IDDE001) and the
        # interprocedural module-global check (IDDE010) fire
        assert codes(lint_source(src, path="src/repro/dynamics/churn.py")) == {
            "IDDE001",
            "IDDE010",
        }

    def test_generator_annotations_allowed(self):
        src = (
            "import numpy as np\n"
            "def solve(instance, rng: np.random.Generator) -> None:\n"
            "    if isinstance(rng, np.random.Generator):\n"
            "        pass\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_entry_point_with_seed_param_allowed(self):
        src = (
            "from repro.rng import ensure_rng\n"
            "def run(seed):\n"
            "    return ensure_rng(seed)\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_seed_provenance_via_spec_attribute_allowed(self):
        src = (
            "from repro.rng import spawn_rng\n"
            "def run_trial(spec):\n"
            "    return spawn_rng(spec.seed, 'solver')\n"
        )
        assert lint_source(src, path="src/repro/experiments/x.py") == []

    def test_nested_function_not_attributed_to_parent(self):
        src = (
            "from repro.rng import spawn_rng\n"
            "def outer(seed):\n"
            "    def inner(trial_seed):\n"
            "        return spawn_rng(trial_seed)\n"
            "    return inner(seed)\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []


class TestUnitHonesty:
    def test_fixture_violations(self):
        found = lint_fixture("repro/core/bad_units.py")
        assert codes(found) == {"IDDE003", "IDDE004"}
        assert sum(f.code == "IDDE003" for f in found) == 2
        assert sum(f.code == "IDDE004" for f in found) == 2

    def test_units_module_is_exempt(self):
        src = "MB = 1_000_000\nX = 2 * 1_000_000\n"
        assert lint_source(src, path="src/repro/units.py") == []

    def test_integer_thousand_not_flagged(self):
        assert lint_source("n = m * 1000\n", path="src/repro/core/x.py") == []

    def test_converter_call_satisfies_suffix_rule(self):
        src = (
            "from repro.units import seconds_to_ms\n"
            "def f(wall_s):\n"
            "    wall_ms = seconds_to_ms(wall_s)\n"
            "    return wall_ms\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []


class TestFrozenMutation:
    def test_fixture_violations(self):
        found = lint_fixture("repro/core/bad_frozen.py")
        assert codes(found) == {"IDDE005"}
        assert len(found) == 3

    def test_post_init_setattr_allowed(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class P:\n"
            "    x: float\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', float(self.x))\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_rebound_name_not_tracked(self):
        src = (
            "from repro.types import User\n"
            "def f(other):\n"
            "    u = User(index=0, x=0.0, y=0.0, power=1.0, rmax=1.0)\n"
            "    u = other\n"
            "    u.x = 1.0\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []


class TestFloatEquality:
    def test_fixture_violations(self):
        found = lint_fixture("repro/core/bad_float_eq.py")
        assert codes(found) == {"IDDE006"}
        assert len(found) == 2

    def test_only_numeric_layers_in_scope(self):
        src = "def f(x):\n    return x == 0.0\n"
        assert codes(lint_source(src, path="src/repro/radio/x.py")) == {"IDDE006"}
        assert lint_source(src, path="src/repro/experiments/x.py") == []

    def test_integer_sentinels_allowed(self):
        src = "def f(server):\n    return server == -1\n"
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_ordering_comparisons_allowed(self):
        src = "def f(gain):\n    return gain > 0.0\n"
        assert lint_source(src, path="src/repro/core/x.py") == []


class TestDeterminism:
    def test_fixture_violations(self):
        found = lint_fixture("repro/baselines/bad_determinism.py")
        assert codes(found) == {"IDDE007", "IDDE008"}
        assert sum(f.code == "IDDE007" for f in found) == 2

    def test_sorted_set_iteration_allowed(self):
        src = "def f(xs):\n    return [x for x in sorted(set(xs))]\n"
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_perf_counter_allowed(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_out_of_scope_layers_ignored(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert lint_source(src, path="src/repro/experiments/x.py") == []


class TestLayering:
    def test_fixture_violations(self):
        found = lint_fixture("repro/datasets/bad_layering.py")
        assert codes(found) == {"IDDE009"}
        assert len(found) == 2  # one absolute, one relative import

    @pytest.mark.parametrize(
        "path, src, bad",
        [
            ("src/repro/core/x.py", "from repro.experiments import sweep\n", True),
            ("src/repro/core/x.py", "from ..experiments.sweep import run_sweep\n", True),
            ("src/repro/radio/x.py", "from .. import viz\n", True),
            ("src/repro/core/x.py", "import repro.cli\n", True),
            ("src/repro/topology/x.py", "from ..baselines import naive\n", True),
            ("src/repro/core/x.py", "from ..radio.sinr import SinrEngine\n", False),
            ("src/repro/experiments/x.py", "from ..core.game import IddeUGame\n", False),
            ("src/repro/datasets/x.py", "from ..topology import graph\n", False),
        ],
    )
    def test_import_dag(self, path, src, bad):
        found = lint_source(src, path=path)
        assert (codes(found) == {"IDDE009"}) is bad

    def test_relative_import_within_layer_allowed(self):
        src = "from .game import IddeUGame\n"
        assert lint_source(src, path="src/repro/core/idde_g.py") == []


class TestRngFlow:
    def test_fixture_violations(self):
        found = lint_fixture("repro/experiments/bad_rng_flow.py")
        assert codes(found) == {"IDDE010"}
        # module global, constant re-seed, spawn-free fan-out, unthreaded rng
        assert len(found) == 4

    def test_near_miss_is_clean(self):
        assert lint_fixture("repro/experiments/good_rng_flow.py") == []


class TestUnitFlow:
    def test_fixture_violations(self):
        found = lint_fixture("repro/core/bad_unit_flow.py")
        assert codes(found) == {"IDDE011"}
        # arithmetic, comparison, arg binding, converter input, return tag
        assert len(found) == 5

    def test_near_miss_is_clean(self):
        assert lint_fixture("repro/core/good_unit_flow.py") == []


class TestParallelSafety:
    def test_fixture_violations(self):
        found = lint_fixture("repro/experiments/bad_parallel.py")
        assert codes(found) == {"IDDE012"}
        # container mutation, nested closure worker, lambda worker
        assert len(found) == 3

    def test_near_miss_is_clean(self):
        assert lint_fixture("repro/experiments/good_parallel.py") == []


class TestFrozenFlow:
    def test_fixture_violations(self):
        found = lint_fixture("repro/core/bad_frozen_flow.py")
        assert codes(found) == {"IDDE013"}
        assert len(found) == 1

    def test_near_miss_is_clean(self):
        assert lint_fixture("repro/core/good_frozen_flow.py") == []


class TestFixtureTreeOverall:
    def test_whole_fixture_tree_has_all_codes(self):
        found = lint_paths([FIXTURES])
        assert codes(found) == {f"IDDE00{i}" for i in range(1, 10)} | {
            f"IDDE01{i}" for i in range(0, 4)
        }

    def test_noqa_fixture_is_clean(self):
        assert lint_fixture("repro/core/clean_noqa.py") == []
