"""Semantic-layer unit tests: symbol-table resolution (aliases and
re-exports), call-graph construction (methods, nested defs, callable
references), and dataflow fixpoint convergence on recursive chains."""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext
from repro.analysis.semantic import Project
from repro.analysis.semantic.callgraph import (
    build_call_graph,
    local_types,
    resolve_callable_ref,
)
from repro.analysis.semantic.dataflow import NO_TAGS, TagInterpreter, fixpoint_summaries
from repro.analysis.semantic.symbols import SymbolTable, module_name_for


def ctx(path: str, source: str) -> FileContext:
    return FileContext(path=path, source=source, tree=ast.parse(source, filename=path))


def table_for(files: dict[str, str]) -> SymbolTable:
    return SymbolTable.build([ctx(p, s) for p, s in files.items()])


class TestModuleNaming:
    def test_repro_anchored_path(self):
        c = ctx("src/repro/core/game.py", "x = 1\n")
        assert module_name_for(c) == "repro.core.game"

    def test_package_init_maps_to_package(self):
        c = ctx("src/repro/core/__init__.py", "x = 1\n")
        assert module_name_for(c) == "repro.core"

    def test_unanchored_file_gets_private_namespace(self):
        c = ctx("scratch/tool.py", "x = 1\n")
        assert module_name_for(c) == "<file>.tool"


class TestSymbolResolution:
    def test_aliased_relative_import(self):
        table = table_for(
            {
                "src/repro/rng.py": "def spawn_rng(seed, key):\n    return seed\n",
                "src/repro/experiments/sweep.py": (
                    "from ..rng import spawn_rng as sp\n"
                    "def run():\n    return sp(0, 'x')\n"
                ),
            }
        )
        q = table.resolve("repro.experiments.sweep", "sp")
        assert q == "repro.rng.spawn_rng"
        assert table.function(q) is not None

    def test_aliased_module_import(self):
        table = table_for(
            {
                "src/repro/core/game.py": "def step():\n    pass\n",
                "src/repro/experiments/x.py": (
                    "import repro.core.game as g\n"
                    "def run():\n    return g.step()\n"
                ),
            }
        )
        assert table.resolve("repro.experiments.x", "g.step") == "repro.core.game.step"

    def test_reexport_chased_to_defining_module(self):
        table = table_for(
            {
                "src/repro/core/game.py": (
                    "class IddeUGame:\n    def solve(self):\n        pass\n"
                ),
                "src/repro/core/__init__.py": "from .game import IddeUGame\n",
                "src/repro/experiments/x.py": (
                    "from repro.core import IddeUGame\n"
                    "def run():\n    return IddeUGame()\n"
                ),
            }
        )
        q = table.resolve("repro.experiments.x", "IddeUGame")
        assert q == "repro.core.game.IddeUGame"
        assert table.class_(q) is not None

    def test_unknown_name_resolves_to_none(self):
        table = table_for({"src/repro/core/x.py": "def f():\n    return len([])\n"})
        assert table.resolve("repro.core.x", "len") is None
        assert table.resolve("repro.core.x", "numpy.einsum") is None

    def test_frozen_class_detection(self):
        table = table_for(
            {
                "src/repro/core/t.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass(frozen=True)\n"
                    "class P:\n    x: float\n"
                    "@dataclass\n"
                    "class Q:\n    x: float\n"
                )
            }
        )
        assert set(table.frozen_classes()) == {"repro.core.t.P"}


class TestCallGraph:
    def test_aliased_call_is_resolved_edge(self):
        table = table_for(
            {
                "src/repro/rng.py": "def ensure_rng(seed):\n    return seed\n",
                "src/repro/core/x.py": (
                    "from ..rng import ensure_rng as er\n"
                    "def f(seed):\n    return er(seed)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert graph.callees("repro.core.x.f") == {"repro.rng.ensure_rng"}
        assert graph.callers("repro.rng.ensure_rng") == {"repro.core.x.f"}

    def test_method_call_via_constructor_type(self):
        table = table_for(
            {
                "src/repro/radio/sinr.py": (
                    "class SinrEngine:\n"
                    "    def snapshot(self):\n        pass\n"
                ),
                "src/repro/core/x.py": (
                    "from ..radio.sinr import SinrEngine\n"
                    "def f():\n"
                    "    eng = SinrEngine()\n"
                    "    return eng.snapshot()\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert "repro.radio.sinr.SinrEngine.snapshot" in graph.callees("repro.core.x.f")
        (site,) = [s for s in graph.sites_in("repro.core.x.f") if s.receiver == "eng"]
        assert site.resolved

    def test_self_method_call(self):
        table = table_for(
            {
                "src/repro/core/x.py": (
                    "class Game:\n"
                    "    def step(self):\n        return self.cost()\n"
                    "    def cost(self):\n        return 0.0\n"
                )
            }
        )
        graph = build_call_graph(table)
        assert graph.callees("repro.core.x.Game.step") == {"repro.core.x.Game.cost"}

    def test_nested_def_call_resolves_through_locals_mark(self):
        table = table_for(
            {
                "src/repro/core/x.py": (
                    "def outer():\n"
                    "    def inner():\n        return 1\n"
                    "    return inner()\n"
                )
            }
        )
        graph = build_call_graph(table)
        assert graph.callees("repro.core.x.outer") == {
            "repro.core.x.outer.<locals>.inner"
        }

    def test_unresolved_external_call_keeps_spelling(self):
        table = table_for(
            {"src/repro/core/x.py": "import numpy as np\ndef f(a):\n    return np.sum(a)\n"}
        )
        graph = build_call_graph(table)
        (site,) = graph.sites_in("repro.core.x.f")
        assert not site.resolved
        assert site.callee == "numpy.sum"

    def test_local_types_poisoned_by_rebinding(self):
        table = table_for(
            {
                "src/repro/core/x.py": (
                    "class C:\n    def m(self):\n        pass\n"
                    "def f(other):\n"
                    "    c = C()\n"
                    "    c = other\n"
                    "    d = C()\n"
                    "    return d\n"
                )
            }
        )
        fn = table.function("repro.core.x.f")
        types = local_types(fn, table)
        assert "c" not in types
        assert types["d"] == "repro.core.x.C"

    def test_callable_ref_unwraps_partial_and_nested_defs(self):
        table = table_for(
            {
                "src/repro/experiments/x.py": (
                    "import functools\n"
                    "def worker(item):\n    return item\n"
                    "def driver(items):\n"
                    "    def local(item):\n        return item\n"
                    "    a = functools.partial(worker, 1)\n"
                    "    return local, a\n"
                )
            }
        )
        fn = table.function("repro.experiments.x.driver")
        partial_node = None
        local_ref = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and getattr(node.func, "attr", "") == "partial":
                partial_node = node
            if isinstance(node, ast.Tuple):
                local_ref = node.elts[0]
        assert (
            resolve_callable_ref(fn, table, partial_node)
            == "repro.experiments.x.worker"
        )
        assert (
            resolve_callable_ref(fn, table, local_ref)
            == "repro.experiments.x.driver.<locals>.local"
        )


REC_SRC = """\
def base():
    return draw()

def rec(n):
    if n:
        return rec(n - 1)
    return base()

def ping(n):
    return pong(n)

def pong(n):
    if n:
        return ping(n - 1)
    return base()

def pure(n):
    return pure(n - 1) if n else 0
"""


class TestFixpoint:
    def _summaries(self):
        table = table_for({"src/repro/core/m.py": REC_SRC})
        graph = build_call_graph(table)
        functions = {fn.qname: fn for fn in table.all_functions()}

        def analyze(fn, summaries):
            tags = frozenset()
            for site in graph.sites_in(fn.qname):
                if site.callee.rsplit(".", 1)[-1] == "draw":
                    tags |= {"stochastic"}
                if site.resolved:
                    tags |= summaries.get(site.callee, frozenset())
            return tags

        return fixpoint_summaries(
            functions, graph, analyze, initial=lambda fn: frozenset()
        )

    def test_direct_recursion_converges(self):
        s = self._summaries()
        assert s["repro.core.m.rec"] == {"stochastic"}

    def test_mutual_recursion_propagates_tags(self):
        s = self._summaries()
        assert s["repro.core.m.ping"] == {"stochastic"}
        assert s["repro.core.m.pong"] == {"stochastic"}

    def test_clean_recursion_stays_empty(self):
        s = self._summaries()
        assert s["repro.core.m.pure"] == frozenset()


class _Interp(TagInterpreter):
    """Minimal concrete interpreter: ``source()`` introduces tag ``t``."""

    def eval_expr(self, node, env):
        if isinstance(node, ast.Name):
            return env.get(node.id, NO_TAGS)
        if isinstance(node, ast.Call) and getattr(node.func, "id", "") == "source":
            return frozenset({"t"})
        tags = NO_TAGS
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                tags |= self.eval_expr(child, env)
        return tags


class TestTagInterpreter:
    def _run(self, body: str) -> frozenset:
        src = "def f(flag, xs):\n" + "".join(
            f"    {line}\n" for line in body.splitlines()
        )
        table = table_for({"src/repro/core/i.py": src})
        return _Interp(table.function("repro.core.i.f")).run()

    def test_branch_join_unions_tags(self):
        tags = self._run("x = 0\nif flag:\n    x = source()\nreturn x")
        assert tags == {"t"}

    def test_loop_back_edge_observed(self):
        # `out` only picks up the tag via `cur` on the second body pass
        tags = self._run(
            "cur = 0\nout = 0\nfor i in xs:\n    out = out + cur\n    cur = source()\nreturn out"
        )
        assert tags == {"t"}

    def test_rebinding_clears_tags(self):
        tags = self._run("x = source()\nx = 0\nreturn x")
        assert tags == NO_TAGS


class TestProject:
    def test_functions_sorted_and_shared_memoised(self):
        project = Project.build(
            [ctx("src/repro/core/a.py", "def b():\n    pass\ndef a():\n    pass\n")]
        )
        names = [fn.qname for fn in project.functions()]
        assert names == sorted(names)
        calls = []
        assert project.shared("k", lambda: calls.append(1) or "v") == "v"
        assert project.shared("k", lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 1
