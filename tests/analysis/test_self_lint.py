"""The tier-1 self-lint invariant: ``src/repro`` must produce zero
non-baselined findings, fast.  This is the guardrail every later
refactoring PR leans on — do not delete it; fix (or explicitly baseline /
``# idde: noqa``) the violation instead.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import all_codes, lint_paths, load_baseline

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
BASELINE = REPO / ".idde-lint-baseline.json"
DOCS = REPO / "docs" / "STATIC_ANALYSIS.md"


def test_source_tree_lints_clean():
    baseline = load_baseline(BASELINE) if BASELINE.exists() else None
    findings = lint_paths([SRC], baseline=baseline)
    report = "\n".join(f.render() for f in findings)
    assert findings == [], f"new lint findings in src/repro:\n{report}"


def test_self_lint_is_fast():
    t0 = time.perf_counter()
    lint_paths([SRC])
    elapsed = time.perf_counter() - t0
    assert elapsed < 10.0, f"self-lint took {elapsed:.1f}s (budget 10s)"


def test_every_rule_code_is_documented():
    text = DOCS.read_text(encoding="utf-8")
    missing = [code for code in all_codes() if code not in text]
    assert not missing, f"undocumented rule codes: {missing}"


def test_baseline_only_shrinks():
    # Policy: the shipped baseline starts (and should stay) empty — new
    # code lints clean.  If a future PR must grandfather a finding, it
    # also has to relax this test, making the decision reviewable.
    if BASELINE.exists():
        assert len(load_baseline(BASELINE)) == 0


def test_rule_catalog_docs_in_sync():
    # Same drift check as ``idde lint --doc-check`` / CI.
    from repro.analysis.report import doc_catalog_problems

    problems = doc_catalog_problems(DOCS.read_text(encoding="utf-8"))
    assert problems == []


def test_doc_drift_is_detected():
    from repro.analysis.report import CATALOG_BEGIN, doc_catalog_problems

    text = DOCS.read_text(encoding="utf-8")
    # edit inside the generated block: must be reported as drift
    edited = text.replace("| unit-flow |", "| unit-flow-renamed |")
    assert any("out of date" in p for p in doc_catalog_problems(edited))
    # dropping a marker is also drift
    assert any(
        "markers" in p for p in doc_catalog_problems(text.replace(CATALOG_BEGIN, ""))
    )
    # as is losing a per-code section
    assert any(
        "IDDE011" in p for p in doc_catalog_problems(text.replace("### IDDE011", "### X"))
    )


def test_analysis_layer_is_in_the_import_dag():
    # The linter must never import (and thereby execute) the code it
    # analyses; only units/parallel/errors sit beneath it.
    from repro.analysis.rules.layering import FORBIDDEN

    assert "analysis" in FORBIDDEN
    assert {"core", "radio", "experiments", "dynamics", "obs"} <= FORBIDDEN["analysis"]
