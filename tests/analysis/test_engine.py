"""Engine behaviour: suppression comments, baseline round-trip, JSON
schema, file discovery, and syntax-error resilience."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Baseline,
    all_codes,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.engine import parse_noqa
from repro.analysis.registry import RULES

BAD_UNITS = "def f(size_mb):\n    return size_mb * 1e6\n"


class TestNoqa:
    def test_bare_noqa_suppresses_all(self):
        src = "def f(size_mb):\n    return size_mb * 1e6  # idde: noqa\n"
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_coded_noqa_suppresses_only_that_code(self):
        src = "def f(size_mb):\n    return size_mb * 1e6  # idde: noqa[IDDE003]\n"
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_wrong_code_does_not_suppress(self):
        src = "def f(size_mb):\n    return size_mb * 1e6  # idde: noqa[IDDE001]\n"
        found = lint_source(src, path="src/repro/core/x.py")
        assert [f.code for f in found] == ["IDDE003"]

    def test_noqa_on_other_line_does_not_suppress(self):
        src = "# idde: noqa\ndef f(size_mb):\n    return size_mb * 1e6\n"
        found = lint_source(src, path="src/repro/core/x.py")
        assert [f.code for f in found] == ["IDDE003"]

    def test_noqa_on_closing_line_of_wrapped_statement(self):
        # the finding anchors inside the statement, the comment sits on the
        # closing line: the owning statement's full span is consulted
        src = (
            "def f(size_mb):\n"
            "    return float(\n"
            "        size_mb * 1e6,\n"
            "    )  # idde: noqa[IDDE003]\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_wrong_code_on_closing_line_does_not_suppress(self):
        src = (
            "def f(size_mb):\n"
            "    return float(\n"
            "        size_mb * 1e6,\n"
            "    )  # idde: noqa[IDDE001]\n"
        )
        found = lint_source(src, path="src/repro/core/x.py")
        assert [f.code for f in found] == ["IDDE003"]

    def test_compound_statement_span_is_header_only(self):
        # a noqa inside a function body must never be attributed to the
        # `def` line: the def's suppression span stops before the body
        import ast

        from repro.analysis.engine import FileContext

        src = (
            "def f(\n"
            "    size_mb,\n"
            "):\n"
            "    return size_mb  # idde: noqa\n"
        )
        ctx = FileContext(path="src/repro/core/x.py", source=src, tree=ast.parse(src))
        assert ctx.suppression_span(1) == (1, 3)  # wrapped def header
        assert ctx.suppression_span(4) == (4, 4)  # body statement, not the def

    def test_project_scope_finding_respects_statement_span(self):
        # IDDE010 module-global finding, suppressed from the wrapped
        # statement's second line
        src = (
            "from repro.rng import ensure_rng\n"
            "_SHARED = ensure_rng(\n"
            "    0,\n"
            ")  # idde: noqa[IDDE010]\n"
        )
        assert lint_source(src, path="src/repro/experiments/x.py") == []

    def test_parse_noqa_multiple_codes(self):
        noqa = parse_noqa(["x = 1  # idde: noqa[IDDE001, IDDE003]"])
        assert noqa == {1: {"IDDE001", "IDDE003"}}

    def test_plain_flake8_noqa_is_not_ours(self):
        assert parse_noqa(["x = 1  # noqa"]) == {}


class TestBaseline:
    def _findings(self):
        return lint_source(BAD_UNITS, path="src/repro/core/x.py")

    def test_round_trip(self, tmp_path):
        found = self._findings()
        path = tmp_path / "baseline.json"
        write_baseline(path, found)
        loaded = load_baseline(path)
        assert len(loaded) == len(found)
        assert loaded.filter(found) == []

    def test_new_finding_survives_baseline(self):
        found = self._findings()
        baseline = Baseline.from_findings(found)
        extra = lint_source(
            "def g(wall_s):\n    wall_ms = wall_s * 2\n    return wall_ms\n",
            path="src/repro/core/y.py",
        )
        assert baseline.filter(found + extra) == extra

    def test_count_aware(self):
        found = self._findings()
        baseline = Baseline.from_findings(found)
        # A second identical occurrence (same fingerprint) must NOT be absorbed.
        assert baseline.filter(found + found) == found

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            Baseline.from_json(json.dumps({"version": 99}))

    def test_fingerprint_is_line_number_independent(self):
        a = lint_source(BAD_UNITS, path="src/repro/core/x.py")
        b = lint_source("# moved down a line\n" + BAD_UNITS, path="src/repro/core/x.py")
        assert [f.fingerprint for f in a] == [f.fingerprint for f in b]
        assert a[0].line != b[0].line


class TestReports:
    def test_json_schema(self):
        found = lint_source(BAD_UNITS, path="src/repro/core/x.py")
        doc = json.loads(render_json(found, baselined=2))
        assert doc["version"] == 1
        assert doc["summary"] == {
            "total": 1,
            "baselined": 2,
            "by_code": {"IDDE003": 1},
        }
        (entry,) = doc["findings"]
        assert set(entry) == {"path", "line", "col", "code", "message", "snippet"}
        assert entry["code"] == "IDDE003"
        assert entry["line"] == 2

    def test_text_report_mentions_counts(self):
        found = lint_source(BAD_UNITS, path="src/repro/core/x.py")
        text = render_text(found)
        assert "IDDE003" in text and "1 finding" in text
        assert render_text([]) == "no findings"


class TestEngine:
    def test_syntax_error_becomes_idde000(self):
        found = lint_source("def broken(:\n", path="src/repro/core/x.py")
        assert [f.code for f in found] == ["IDDE000"]

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        assert [p.name for p in iter_python_files([tmp_path])] == ["a.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([tmp_path / "nope"]))

    def test_lint_paths_sorted_and_stable(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "core").mkdir()
        f = tmp_path / "repro" / "core" / "m.py"
        f.write_text(BAD_UNITS)
        first = lint_paths([tmp_path])
        second = lint_paths([tmp_path])
        assert first == second
        assert [x.code for x in first] == ["IDDE003"]

    def test_rule_codes_unique_and_complete(self):
        expected = [f"IDDE00{i}" for i in range(1, 10)]
        expected += [f"IDDE01{i}" for i in range(0, 4)]
        assert all_codes() == expected
        assert len(RULES) == 10
        scopes = {r.scope for r in RULES.values()}
        assert scopes == {"file", "project"}
