"""``idde lint`` CLI behaviour: exit codes, JSON output, baselines."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_clean_tree_exits_zero(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_violation_fixtures_exit_nonzero(capsys):
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "IDDE001" in out and "IDDE009" in out


def test_json_format(capsys):
    assert main(["lint", str(FIXTURES), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["summary"]["total"] == len(doc["findings"]) > 0


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "rng-discipline" in out and "IDDE001" in out


def test_write_then_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(FIXTURES), "--write-baseline", "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # With every finding grandfathered the same tree now passes...
    assert main(["lint", str(FIXTURES), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out
    # ...unless the baseline is ignored.
    assert main(["lint", str(FIXTURES), "--baseline", str(baseline), "--no-baseline"]) == 1


def test_single_file_target(capsys):
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    assert main(["lint", str(bad)]) == 1
    assert "IDDE003" in capsys.readouterr().out
