"""``idde lint`` CLI behaviour: exit codes, JSON output, baselines."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_clean_tree_exits_zero(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_violation_fixtures_exit_nonzero(capsys):
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "IDDE001" in out and "IDDE009" in out


def test_json_format(capsys):
    assert main(["lint", str(FIXTURES), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["summary"]["total"] == len(doc["findings"]) > 0


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "rng-discipline" in out and "IDDE001" in out


def test_write_then_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(FIXTURES), "--write-baseline", "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # With every finding grandfathered the same tree now passes...
    assert main(["lint", str(FIXTURES), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out
    # ...unless the baseline is ignored.
    assert main(["lint", str(FIXTURES), "--baseline", str(baseline), "--no-baseline"]) == 1


def test_single_file_target(capsys):
    bad = FIXTURES / "repro" / "core" / "bad_units.py"
    assert main(["lint", str(bad)]) == 1
    assert "IDDE003" in capsys.readouterr().out


def test_explain_known_code(capsys):
    assert main(["lint", "--explain", "IDDE011"]) == 0
    out = capsys.readouterr().out
    assert "IDDE011" in out and "unit-flow" in out


def test_explain_unknown_code(capsys):
    assert main(["lint", "--explain", "IDDE999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_graph_json_export(capsys):
    assert main(["lint", "--graph", "json", str(SRC / "experiments")]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "idde-callgraph/1"
    assert doc["nodes"] and doc["edges"]


def test_graph_dot_export(capsys):
    assert main(["lint", "--graph", "dot", str(SRC / "experiments")]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph callgraph {")


def test_doc_check_in_sync(capsys):
    assert main(["lint", str(SRC), "--doc-check", "--no-cache"]) == 0


BAD_TWICE = "def f(size_mb):\n    a = size_mb * 1e6\n    b = size_mb * 1e6\n    return a + b\n"
BAD_ONCE = "def f(size_mb):\n    a = size_mb * 1e6\n    return a\n"


def _write_tree(root: Path, source: str) -> Path:
    pkg = root / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "m.py").write_text(source, encoding="utf-8")
    return root


def test_stale_baseline_fails_check_until_pruned(tmp_path, capsys):
    tree = _write_tree(tmp_path / "t", BAD_TWICE)
    baseline = tmp_path / "baseline.json"
    common = ["--baseline", str(baseline), "--no-cache"]
    assert main(["lint", str(tree), "--write-baseline", *common]) == 0
    assert main(["lint", str(tree), "--check-baseline", *common]) == 0
    capsys.readouterr()

    # fix one of the two grandfathered violations: the baseline is stale
    _write_tree(tmp_path / "t", BAD_ONCE)
    assert main(["lint", str(tree), "--check-baseline", *common]) == 1
    err = capsys.readouterr().err
    assert "stale baseline" in err and "only ever shrink" in err

    # --prune-baseline clamps the counts; the check passes again
    assert main(["lint", str(tree), "--prune-baseline", *common]) == 0
    assert "2 -> 1 entries" in capsys.readouterr().out
    assert main(["lint", str(tree), "--check-baseline", *common]) == 0

    # regression (re-adding the violation) still fails the plain lint
    _write_tree(tmp_path / "t", BAD_TWICE)
    assert main(["lint", str(tree), *common]) == 1


def test_prune_without_baseline_errors(tmp_path, capsys):
    tree = _write_tree(tmp_path / "t", BAD_ONCE)
    assert (
        main(
            ["lint", str(tree), "--prune-baseline", "--baseline",
             str(tmp_path / "none.json"), "--no-cache"]
        )
        == 2
    )
    assert "no baseline to prune" in capsys.readouterr().err


def test_cache_flag_writes_and_reuses(tmp_path, capsys):
    tree = _write_tree(tmp_path / "t", BAD_ONCE)
    cache = tmp_path / "cache.json"
    assert main(["lint", str(tree), "--cache", str(cache)]) == 1
    assert cache.exists()
    first = capsys.readouterr().out
    assert main(["lint", str(tree), "--cache", str(cache)]) == 1
    assert capsys.readouterr().out == first


def test_no_cache_leaves_no_file(tmp_path, monkeypatch):
    tree = _write_tree(tmp_path / "t", BAD_ONCE)
    monkeypatch.chdir(tmp_path)
    assert main(["lint", str(tree), "--no-cache"]) == 1
    assert not (tmp_path / ".idde-lint-cache.json").exists()
