"""The sharded solver: fallback bit-exactness, stitching, reconciliation,
extraction errors and the façade/extras contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import solve
from repro.config import GameConfig
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.errors import ConfigurationError, ShardingError
from repro.obs import RecordingTracer
from repro.radio.sinr import UNALLOCATED
from repro.sharding import (
    Domain,
    ShardConfig,
    ShardedIddeG,
    build_plan,
    extract_subinstance,
    solve_sharded_game,
)

from ..conftest import make_instance, make_scenario


@pytest.fixture(scope="module")
def two_cluster_instance() -> IDDEInstance:
    server_xy = [[0.0, 0.0], [200.0, 0.0], [3000.0, 0.0], [3200.0, 0.0]]
    user_xy = [[float(50 + 30 * i), 10.0] for i in range(6)] + [
        [float(3050 + 30 * i), -10.0] for i in range(6)
    ]
    return make_instance(make_scenario(server_xy, user_xy, radius=400.0), seed=0)


class TestTrivialFallback:
    @pytest.mark.parametrize(
        "schedule", ["round-robin", "best-gain-winner", "random-winner"]
    )
    def test_bit_identical_to_plain_game(self, tiny_instance, schedule):
        cfg = GameConfig(schedule=schedule)
        plain = IddeUGame(tiny_instance, cfg).run(rng=7)
        sharded, stats = solve_sharded_game(tiny_instance, cfg, rng=7)
        assert stats["fallback"]
        np.testing.assert_array_equal(sharded.profile.server, plain.profile.server)
        np.testing.assert_array_equal(sharded.profile.channel, plain.profile.channel)
        assert sharded.move_log == plain.move_log
        assert sharded.rounds == plain.rounds

    def test_fallback_event_traced(self, tiny_instance):
        tracer = RecordingTracer()
        solve_sharded_game(tiny_instance, rng=7, tracer=tracer)
        assert any(e.etype == "shard.fallback" for e in tracer.events)


class TestShardedSolve:
    def test_certifies_whole_instance(self, two_cluster_instance):
        result, stats = solve_sharded_game(
            two_cluster_instance, shard_cfg=ShardConfig(n_workers=0), rng=3
        )
        assert not stats["fallback"]
        assert stats["n_shards"] == 2
        assert result.is_nash
        assert result.converged
        result.profile.validate(two_cluster_instance.scenario)
        # Whole-instance certificate holds on the composed profile.
        game = IddeUGame(two_cluster_instance, GameConfig())
        assert game.is_nash(result.profile, tol=result.effective_epsilon)

    @pytest.mark.parametrize("schedule", ["round-robin", "best-gain-winner"])
    def test_clean_decomposition_matches_global_run(
        self, two_cluster_instance, schedule
    ):
        # Deterministic schedules on a clean (no-boundary) decomposition
        # stitch bit-identically to the unsharded run.
        cfg = GameConfig(schedule=schedule, kernel="batched")
        plain = IddeUGame(two_cluster_instance, cfg).run(rng=5)
        sharded, stats = solve_sharded_game(
            two_cluster_instance, cfg, ShardConfig(n_workers=0), rng=5
        )
        assert stats["boundary_users"] == 0
        assert stats["reconcile_moves"] == 0
        np.testing.assert_array_equal(sharded.profile.server, plain.profile.server)
        np.testing.assert_array_equal(sharded.profile.channel, plain.profile.channel)

    def test_uncovered_users_stay_unallocated(self):
        server_xy = [[0.0, 0.0], [200.0, 0.0], [3000.0, 0.0], [3200.0, 0.0]]
        user_xy = [[50.0, 10.0], [150.0, 0.0], [3050.0, 10.0], [3150.0, 0.0],
                   [9999.0, 9999.0]]
        instance = make_instance(make_scenario(server_xy, user_xy, radius=400.0))
        result, stats = solve_sharded_game(
            instance, shard_cfg=ShardConfig(n_workers=0), rng=1
        )
        assert stats["uncovered_users"] == 1
        assert result.profile.server[4] == UNALLOCATED

    def test_all_boundary_plan_is_solved_by_reconciliation(self, tiny_instance):
        # max_users=2 on all-cover-all strands every user at the boundary:
        # the shard phase is empty and reconciliation plays the whole game,
        # honouring the per-user move cap machinery.
        cfg = GameConfig(max_moves_per_user=2)
        result, stats = solve_sharded_game(
            tiny_instance, cfg, ShardConfig(max_users=2, n_workers=0), rng=2
        )
        assert stats["n_shards"] == 0
        assert stats["boundary_users"] == 6
        assert result.moves == stats["reconcile_moves"]
        assert result.is_nash
        result.profile.validate(tiny_instance.scenario)

    def test_stats_contract(self, two_cluster_instance):
        _, stats = solve_sharded_game(
            two_cluster_instance, shard_cfg=ShardConfig(n_workers=0), rng=0
        )
        for key in (
            "fallback", "n_domains", "n_shards", "shard_users", "boundary_users",
            "uncovered_users", "shard_rounds", "shard_moves",
            "shard_effective_epsilon", "reconcile_rounds", "reconcile_moves",
        ):
            assert key in stats
        assert len(stats["shard_users"]) == stats["n_shards"]

    def test_spans_and_counters(self, two_cluster_instance):
        tracer = RecordingTracer()
        solve_sharded_game(
            two_cluster_instance, shard_cfg=ShardConfig(n_workers=0), rng=0,
            tracer=tracer,
        )
        names = [s.name for s in tracer.spans]
        for name in ("shard.build", "shard.solve", "shard.reconcile"):
            assert name in names
        assert sum(1 for e in tracer.events if e.etype == "shard.result") == 2
        assert "shard.reconcile_rounds" in tracer.counters

    def test_int_seed_reproducible(self, two_cluster_instance):
        a, _ = solve_sharded_game(
            two_cluster_instance,
            GameConfig(schedule="random-winner"),
            ShardConfig(n_workers=0),
            rng=11,
        )
        b, _ = solve_sharded_game(
            two_cluster_instance,
            GameConfig(schedule="random-winner"),
            ShardConfig(n_workers=0),
            rng=11,
        )
        np.testing.assert_array_equal(a.profile.server, b.profile.server)
        assert a.move_log == b.move_log


class TestExtract:
    def test_empty_domain_rejected(self, two_cluster_instance):
        empty = Domain(
            servers=np.empty(0, dtype=np.int64), users=np.empty(0, dtype=np.int64)
        )
        with pytest.raises(ShardingError, match="empty"):
            extract_subinstance(two_cluster_instance, empty)

    def test_unsorted_indices_rejected(self, two_cluster_instance):
        bad = Domain(
            servers=np.array([1, 0], dtype=np.int64),
            users=np.array([0, 1], dtype=np.int64),
        )
        with pytest.raises(ShardingError, match="sorted"):
            extract_subinstance(two_cluster_instance, bad)

    def test_out_of_range_rejected(self, two_cluster_instance):
        bad = Domain(
            servers=np.array([0, 99], dtype=np.int64),
            users=np.array([0], dtype=np.int64),
        )
        with pytest.raises(ShardingError, match="in"):
            extract_subinstance(two_cluster_instance, bad)

    def test_slice_is_faithful(self, two_cluster_instance):
        plan = build_plan(two_cluster_instance)
        sub = extract_subinstance(two_cluster_instance, plan.shards[0])
        sc, full = sub.instance.scenario, two_cluster_instance.scenario
        np.testing.assert_array_equal(sc.server_xy, full.server_xy[sub.server_map])
        np.testing.assert_array_equal(sc.user_xy, full.user_xy[sub.user_map])
        assert sub.instance.topology.n == sub.server_map.size


class TestFacade:
    def test_api_solve_with_sharding(self, two_cluster_instance):
        sol = solve(
            two_cluster_instance, "idde-g",
            sharding=ShardConfig(n_workers=0), rng=3,
        )
        assert sol.solver == "IDDE-G"
        assert sol.config["shards"] == "auto"
        assert sol.extras["sharding"]["n_shards"] == 2
        assert sol.game is not None and sol.game.is_nash

    def test_sharding_stats_survive_the_json_document(self, two_cluster_instance):
        import json

        sol = solve(
            two_cluster_instance, "idde-g",
            sharding=ShardConfig(n_workers=0), rng=3,
        )
        doc = json.loads(json.dumps(sol.to_dict()))
        assert doc["extras"]["sharding"]["n_shards"] == 2
        assert doc["config"]["shards"] == "auto"

    def test_sharding_rejected_for_baselines(self, two_cluster_instance):
        with pytest.raises(ConfigurationError, match="idde-g"):
            solve(two_cluster_instance, "cdp", sharding=ShardConfig(), rng=3)

    def test_sharded_solver_keeps_the_name(self):
        s = ShardedIddeG(sharding=ShardConfig(n_workers=0))
        assert s.name == "IDDE-G"
