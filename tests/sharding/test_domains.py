"""Shard planning: components, size-capped splits, packing, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import IDDEInstance
from repro.errors import ConfigurationError, ShardingError
from repro.sharding import Domain, ShardConfig, ShardPlan, build_plan

from ..conftest import make_instance, make_scenario


@pytest.fixture(scope="module")
def two_cluster_instance() -> IDDEInstance:
    """Two coverage islands 3 km apart — exactly two natural domains."""
    server_xy = [[0.0, 0.0], [200.0, 0.0], [3000.0, 0.0], [3200.0, 0.0]]
    user_xy = [[float(50 + 30 * i), 10.0] for i in range(6)] + [
        [float(3050 + 30 * i), -10.0] for i in range(6)
    ]
    return make_instance(make_scenario(server_xy, user_xy, radius=400.0), seed=0)


class TestShardConfig:
    def test_defaults_are_valid(self):
        cfg = ShardConfig()
        assert cfg.n_shards is None and cfg.user_cap(1000) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"max_users": 0},
            {"min_users": 0},
            {"n_workers": -1},
            {"reconcile_schedule": "fastest"},
            {"reconcile_max_rounds": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ShardConfig(**kwargs)

    def test_user_cap_takes_the_tighter_bound(self):
        assert ShardConfig(n_shards=4).user_cap(100) == 25
        assert ShardConfig(max_users=10).user_cap(100) == 10
        assert ShardConfig(n_shards=4, max_users=10).user_cap(100) == 10
        assert ShardConfig(n_shards=4, max_users=50).user_cap(100) == 25


class TestBuildPlan:
    def test_natural_domains(self, two_cluster_instance):
        plan = build_plan(two_cluster_instance)
        assert plan.n_domains == 2
        assert len(plan.shards) == 2
        assert plan.boundary_users.size == 0
        assert plan.uncovered_users.size == 0
        assert not plan.is_trivial
        all_users = np.sort(np.concatenate([d.users for d in plan.shards]))
        np.testing.assert_array_equal(all_users, np.arange(12))

    def test_deterministic(self, two_cluster_instance):
        a = build_plan(two_cluster_instance, ShardConfig(n_shards=3))
        b = build_plan(two_cluster_instance, ShardConfig(n_shards=3))
        assert len(a.shards) == len(b.shards)
        for da, db in zip(a.shards, b.shards):
            np.testing.assert_array_equal(da.servers, db.servers)
            np.testing.assert_array_equal(da.users, db.users)
        np.testing.assert_array_equal(a.boundary_users, b.boundary_users)

    def test_single_component_is_trivial(self, tiny_instance):
        plan = build_plan(tiny_instance)
        assert plan.n_domains == 1
        assert plan.is_trivial

    def test_uncovered_users_set_aside(self):
        server_xy = [[0.0, 0.0], [200.0, 0.0]]
        user_xy = [[50.0, 10.0], [150.0, -10.0], [9999.0, 9999.0]]
        instance = make_instance(make_scenario(server_xy, user_xy, radius=400.0))
        plan = build_plan(instance)
        np.testing.assert_array_equal(plan.uncovered_users, [2])
        assert all(2 not in d.users for d in plan.shards)

    def test_packing_respects_target_count(self, two_cluster_instance):
        plan = build_plan(two_cluster_instance, ShardConfig(n_shards=1))
        # ceil(12/1)=12 users cap never splits; both domains pack into one.
        assert len(plan.shards) == 1
        assert plan.shards[0].n_users == 12

    def test_split_produces_boundary_users(self, tiny_instance):
        # Every user covers all three servers, so any cut strands them all:
        # the cap empties the shards and defers everyone to reconciliation.
        plan = build_plan(tiny_instance, ShardConfig(max_users=2))
        assert sum(d.n_users for d in plan.shards) + plan.boundary_users.size == 6
        assert plan.boundary_users.size > 0
        assert not plan.is_trivial

    def test_min_users_merges_small_domains(self, two_cluster_instance):
        plan = build_plan(two_cluster_instance, ShardConfig(min_users=12))
        assert len(plan.shards) == 1

    def test_plan_validate_catches_bad_partition(self, two_cluster_instance):
        good = build_plan(two_cluster_instance)
        bad = ShardPlan(
            shards=good.shards[:1],  # drop one shard's users entirely
            boundary_users=good.boundary_users,
            uncovered_users=good.uncovered_users,
            n_domains=good.n_domains,
            n_users=good.n_users,
            n_servers=good.n_servers,
        )
        with pytest.raises(ShardingError, match="partition"):
            bad.validate()

    def test_summary_mentions_counts(self, two_cluster_instance):
        text = build_plan(two_cluster_instance).summary()
        assert "2 shard(s)" in text and "boundary=0" in text


class TestDomain:
    def test_sizes(self):
        d = Domain(
            servers=np.array([0, 2], dtype=np.int64),
            users=np.array([1, 3, 5], dtype=np.int64),
        )
        assert d.n_servers == 2 and d.n_users == 3
