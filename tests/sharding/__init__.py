"""Interference-domain decomposition solver tests."""
