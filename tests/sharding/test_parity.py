"""Sharded-vs-global parity across the seed × schedule grid.

The harness mirrors the kernel-pair verifier: every sharded S-scale run
must certify ε-Nash on the whole instance, and on clean decompositions the
deterministic schedules must reproduce the global profile bit-for-bit.
"""

from __future__ import annotations

from repro.bench import render_shard_parity_text, verify_sharded_pair
from repro.bench.shard_parity import PARITY_SCHEDULES, PARITY_SEEDS


class TestShardParity:
    def test_full_grid_is_ok(self):
        report = verify_sharded_pair(scale="S")
        assert len(report.cases) == len(PARITY_SEEDS) * len(PARITY_SCHEDULES)
        assert report.ok, render_shard_parity_text(report)
        for case in report.cases:
            assert case.global_nash and case.sharded_nash
            if case.profile_must_match:
                assert case.same_profile

    def test_render_text_lists_every_case(self):
        report = verify_sharded_pair(scale="S", seeds=(0,), schedules=("round-robin",))
        text = render_shard_parity_text(report)
        assert "round-robin" in text
        assert ("SHARD PARITY OK" in text) or ("SHARD PARITY BROKEN" in text)
