"""End-to-end pipeline tests: generation → all solvers → evaluation."""

import numpy as np
import pytest

from repro import IDDEInstance, default_solvers
from repro.core.constraints import check_strategy
from repro.experiments.runner import TrialSpec, run_trial
from repro.experiments.settings import SweepSettings
from repro.experiments.sweep import run_sweep
from repro.parallel import ParallelConfig


class TestFullSolve:
    @pytest.fixture(scope="class")
    def instance(self):
        return IDDEInstance.generate(n=12, m=50, k=4, density=1.5, seed=42)

    def test_all_solvers_produce_valid_strategies(self, instance):
        for solver in default_solvers(ip_time_budget=0.3):
            strategy = solver.solve(instance, rng=42)
            check_strategy(instance, strategy.allocation, strategy.delivery)
            assert strategy.r_avg > 0

    def test_idde_g_equilibrium_certified(self, instance):
        from repro.core.game import IddeUGame
        from repro.core.idde_g import IddeG

        strategy = IddeG().solve(instance, rng=0)
        assert strategy.extras["is_nash"]
        assert IddeUGame(instance).is_nash(strategy.allocation)


class TestTrialPipeline:
    def test_trial_through_pool(self):
        """A trial spec evaluated through the process pool matches the
        in-process result (pickling and seed spawning are stable)."""
        from repro.parallel.pool import parallel_map

        spec = TrialSpec(
            n=8, m=20, k=3, seed=5, ip_time_budget_s=0.2,
            solver_names=("IDDE-G", "CDP"),
        )
        [remote] = parallel_map(
            run_trial, [spec], ParallelConfig(n_workers=2, min_parallel_items=1)
        )
        local = run_trial(spec)
        for name in ("IDDE-G", "CDP"):
            assert remote.metrics[name]["r_avg"] == pytest.approx(
                local.metrics[name]["r_avg"]
            )
            assert remote.metrics[name]["l_avg_ms"] == pytest.approx(
                local.metrics[name]["l_avg_ms"]
            )


class TestSweepPipeline:
    def test_sweep_end_to_end(self):
        settings = SweepSettings("it", "m", (15, 30))
        result = run_sweep(
            settings,
            reps=2,
            seed=0,
            ip_time_budget_s=0.2,
            solver_names=("IDDE-G", "SAA", "CDP", "DUP-G"),
            parallel=ParallelConfig(n_workers=1),
        )
        # More users => more interference => lower rates for all approaches.
        for name in result.solver_names:
            series = result.series(name, "r_avg")
            assert series[0] > 0 and series[1] > 0
