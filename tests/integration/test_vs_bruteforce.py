"""Certify heuristics against exact optima on enumerable instances."""

import numpy as np
import pytest

from repro.core.brute_force import optimal_allocation, optimal_delivery
from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.bounds import greedy_approximation_factor, theorem5_poa_interval
from repro.core.instance import IDDEInstance
from repro.core.objectives import (
    average_data_rate,
    average_delivery_latency_ms,
)
from repro.core.profiles import DeliveryProfile
from repro.topology.graph import build_topology

from ..conftest import make_scenario


def micro_instances():
    """A family of enumerable micro-instances with varied geometry."""
    out = []
    for seed in range(4):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 4))
        m = int(rng.integers(2, 4))
        server_xy = rng.uniform(0, 300, size=(n, 2))
        user_xy = rng.uniform(0, 300, size=(m, 2))
        sc = make_scenario(
            server_xy,
            user_xy,
            radius=600.0,
            channels=2,
            storage=float(rng.uniform(40, 120)),
            sizes=(30.0, 60.0),
            power=rng.uniform(1, 5, m),
        )
        topo = build_topology(n, 2.0, seed)
        out.append(IDDEInstance(sc, topo))
    return out


class TestGameVsOptimal:
    @pytest.mark.parametrize("instance", micro_instances())
    def test_nash_within_poa_interval_of_optimal(self, instance):
        """Theorem 5: R_nash / R_opt ∈ [R_min/R_max, 1]."""
        nash = IddeUGame(instance).run(rng=0)
        r_nash = average_data_rate(instance, nash.profile)
        _, r_opt = optimal_allocation(instance)
        assert r_nash <= r_opt + 1e-9
        lo, _ = theorem5_poa_interval(instance, nash.profile)
        assert r_nash / r_opt >= lo - 1e-9


class TestGreedyVsOptimal:
    @pytest.mark.parametrize("instance", micro_instances())
    def test_greedy_within_guarantee_of_optimal(self, instance):
        """Theorems 6-7: the greedy's latency reduction achieves at least
        the guaranteed fraction of the optimal reduction."""
        alloc = IddeUGame(instance).run(rng=0).profile
        empty = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        phi = average_delivery_latency_ms(instance, alloc, empty)
        _, l_opt = optimal_delivery(instance, alloc)
        greedy = greedy_delivery(instance, alloc)
        l_greedy = average_delivery_latency_ms(instance, alloc, greedy.profile)
        factor = greedy_approximation_factor(instance)
        assert (phi - l_greedy) >= factor * (phi - l_opt) - 1e-9
        assert l_opt <= l_greedy + 1e-9

    @pytest.mark.parametrize("instance", micro_instances())
    def test_greedy_often_near_optimal(self, instance):
        """On these micro instances the greedy should land within 2× of
        the optimal reduction (far better than the worst-case bound)."""
        alloc = IddeUGame(instance).run(rng=0).profile
        empty = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        phi = average_delivery_latency_ms(instance, alloc, empty)
        _, l_opt = optimal_delivery(instance, alloc)
        greedy = greedy_delivery(instance, alloc)
        l_greedy = average_delivery_latency_ms(instance, alloc, greedy.profile)
        if phi - l_opt > 1e-9:
            assert (phi - l_greedy) / (phi - l_opt) >= 0.5
