"""Qualitative shape tests: the paper's §4.5 claims at reduced scale.

These run a miniature version of the evaluation (fewer reps, smaller M)
and assert the *orderings* the paper reports — who wins which metric —
rather than absolute values.  The full-scale regeneration lives in
``benchmarks/``.
"""

import pytest

from repro.experiments.figures import shape_checks
from repro.experiments.settings import SweepSettings
from repro.experiments.sweep import run_sweep
from repro.parallel import ParallelConfig


@pytest.fixture(scope="module")
def mini_sweep():
    """A scaled-down Set #2 (varying M) with all five approaches.

    M is kept in the interference-limited regime (well above one user per
    channel): below that, every allocator saturates the rate caps and the
    rate ordering is pure noise.
    """
    settings = SweepSettings("mini-set2", "m", (150, 250))
    return run_sweep(
        settings,
        reps=4,
        seed=7,
        ip_time_budget_s=0.4,
        parallel=ParallelConfig(n_workers=1),
    )


class TestHeadlineClaims:
    def test_idde_g_best_average_rate(self, mini_sweep):
        assert shape_checks(mini_sweep)["idde_g_best_rate"]

    def test_idde_g_best_average_latency(self, mini_sweep):
        assert shape_checks(mini_sweep)["idde_g_best_latency"]

    def test_ip_costs_most_time(self, mini_sweep):
        assert shape_checks(mini_sweep)["ip_slowest"]

    def test_rates_fall_with_more_users(self, mini_sweep):
        """Fig. 4(a): more users => more interference => lower R_avg."""
        for name in mini_sweep.solver_names:
            series = mini_sweep.series(name, "r_avg")
            assert series[-1] < series[0]

    def test_saa_worst_rate(self, mini_sweep):
        rates = {s: mini_sweep.average(s, "r_avg") for s in mini_sweep.solver_names}
        assert min(rates, key=rates.get) == "SAA"

    def test_dup_g_worst_latency(self, mini_sweep):
        lats = {s: mini_sweep.average(s, "l_avg_ms") for s in mini_sweep.solver_names}
        assert max(lats, key=lats.get) == "DUP-G"

    def test_advantages_positive_for_idde_g(self, mini_sweep):
        for metric in ("r_avg", "l_avg_ms"):
            adv = mini_sweep.advantage_pct(metric)
            assert all(v > 0 for v in adv.values()), (metric, adv)
