"""Smoke tests: every shipped example must run clean end to end.

Each example is executed in-process (import + ``main()``) with stdout
captured, asserting it exits without error and prints its headline
sections.  Slow examples are monkeypatched down to bench scale where they
expose knobs.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "Phase 1" in out and "Phase 2" in out
        assert "Nash equilibrium certified: True" in out

    def test_theory_verification(self, capsys):
        module = load_example("theory_verification.py")
        module.main()
        out = capsys.readouterr().out
        assert "VIOLATED" not in out
        assert out.count("OK") >= 9  # 3 instances x 3 theorems

    def test_interference_study(self, capsys):
        module = load_example("interference_study.py")
        module.main()
        out = capsys.readouterr().out
        assert "IDDE-U game" in out
        assert "channels" in out

    def test_video_streaming_cdn(self, capsys, monkeypatch):
        module = load_example("video_streaming_cdn.py")
        # Shrink the IDDE-IP budget via the solver factory for test speed.
        from repro import baselines

        original = baselines.default_solvers

        def fast(**kwargs):
            kwargs["ip_time_budget"] = 0.3
            return original(**kwargs)

        monkeypatch.setattr(module, "default_solvers", fast)
        module.main()
        out = capsys.readouterr().out
        assert "hit profile" in out
        assert "IDDE-G" in out

    def test_dynamic_mobility(self, capsys, monkeypatch):
        module = load_example("dynamic_mobility.py")
        monkeypatch.setattr(module, "EPOCHS", 3)
        module.main()
        out = capsys.readouterr().out
        assert "steady-state summary" in out
        for policy in ("warm", "cold", "static"):
            assert policy in out

    def test_city_scale_sweep(self, capsys, monkeypatch):
        module = load_example("city_scale_sweep.py")
        monkeypatch.setattr(
            sys, "argv", ["city_scale_sweep.py", "--reps", "1", "--ip-budget", "0.2"]
        )
        # Shrink the grid for test speed.
        from repro.experiments.settings import SweepSettings

        original = module.SweepSettings

        def tiny(name, varying, values):
            return original(name, varying, (50, 100))

        monkeypatch.setattr(module, "SweepSettings", tiny)
        module.main()
        out = capsys.readouterr().out
        assert "shape checks" in out

    def test_every_example_has_docstring_and_main(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            text = path.read_text()
            assert text.lstrip().startswith(('"""', "#!")), path
            assert "def main()" in text, path
            assert '__name__ == "__main__"' in text, path
