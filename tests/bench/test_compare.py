"""Comparison-gate classification, including the ISSUE's edge cases."""

from __future__ import annotations

from repro.bench import BenchRunConfig, build_document, classify, compare_documents
from repro.bench.compare import render_compare_text
from repro.bench.timer import summarize


def stats(median, spread=0.0):
    """Samples centred on ``median`` with a symmetric ``spread``."""
    return summarize([median - spread, median, median + spread])


def doc_of(**medians):
    config = BenchRunConfig(scale="S", seed=0, repeats=3, warmup=1)
    return build_document({k: stats(v) for k, v in medians.items()}, config)


class TestClassify:
    def test_unchanged_is_neutral(self):
        status, ratio = classify(stats(0.01), stats(0.01))
        assert status == "neutral"
        assert ratio == 1.0

    def test_triple_slowdown_is_regression(self):
        status, ratio = classify(stats(0.01), stats(0.03))
        assert status == "regression"
        assert ratio == 3.0

    def test_triple_speedup_is_improvement(self):
        status, _ = classify(stats(0.03), stats(0.01))
        assert status == "improvement"

    def test_threshold_is_respected(self):
        # 1.5x is inside a 2x gate, outside a 1.2x gate.
        assert classify(stats(0.01), stats(0.015), threshold=2.0)[0] == "neutral"
        assert classify(stats(0.01), stats(0.015), threshold=1.2)[0] == "regression"

    def test_noisy_median_alone_does_not_gate(self):
        # Median blew past the threshold but the minimum did not: the
        # kernel's true cost is unchanged — scheduling noise, not a
        # regression.
        old = summarize([0.010, 0.010, 0.010])
        new = summarize([0.009, 0.050, 0.060])
        assert new.median_s > 2.0 * old.median_s
        assert classify(old, new)[0] == "neutral"

    def test_zero_median_both_sides_is_neutral(self):
        assert classify(stats(0.0), stats(0.0))[0] == "neutral"

    def test_zero_old_median_tiny_new_is_neutral(self):
        # Both sit below the noise floor: the clock cannot tell them apart.
        assert classify(stats(0.0), stats(5e-5))[0] == "neutral"

    def test_zero_old_median_large_new_is_regression(self):
        status, ratio = classify(stats(0.0), stats(1.0))
        assert status == "regression"
        assert ratio > 2.0


class TestCompareDocuments:
    def test_missing_bench_in_old_is_added_not_regression(self):
        old = doc_of(**{"sinr.rates": 0.01})
        new = doc_of(**{"sinr.rates": 0.01, "delivery.greedy": 0.02})
        result = compare_documents(old, new)
        by_name = {d.name: d for d in result.deltas}
        assert by_name["delivery.greedy"].status == "added"
        assert result.exit_code == 0

    def test_missing_bench_in_new_is_removed_not_regression(self):
        old = doc_of(**{"sinr.rates": 0.01, "delivery.greedy": 0.02})
        new = doc_of(**{"sinr.rates": 0.01})
        result = compare_documents(old, new)
        by_name = {d.name: d for d in result.deltas}
        assert by_name["delivery.greedy"].status == "removed"
        assert result.exit_code == 0

    def test_regression_sets_exit_code(self):
        old = doc_of(**{"sinr.rates": 0.01, "game.converge": 0.05})
        new = doc_of(**{"sinr.rates": 0.031, "game.converge": 0.05})
        result = compare_documents(old, new)
        assert [d.name for d in result.regressions] == ["sinr.rates"]
        assert result.exit_code == 1

    def test_render_mentions_verdict(self):
        ok = compare_documents(doc_of(a=0.01), doc_of(a=0.01))
        assert "OK: no benchmark regressed" in render_compare_text(ok)
        bad = compare_documents(doc_of(a=0.01), doc_of(a=0.1))
        text = render_compare_text(bad)
        assert "FAIL: 1 regression(s)" in text and "a" in text
