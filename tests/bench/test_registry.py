"""Registry completeness and fixture determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import BenchRunConfig, all_benchmarks, get_benchmark, run_one, select_benchmarks
from repro.bench.fixtures import SCALES, clear_cache, equilibrium_profile, instance_for, scale_spec
from repro.errors import BenchError

#: The hot paths the ISSUE requires coverage for.
EXPECTED = {
    "sinr.candidates",
    "sinr.churn",
    "sinr.rates",
    "game.round.round-robin",
    "game.round.round-robin.batched",
    "game.round.best-gain-winner",
    "game.round.best-gain-winner.batched",
    "game.round.random-winner",
    "game.round.random-winner.batched",
    "game.converge",
    "game.converge.batched",
    "delivery.greedy",
    "delivery.greedy.batched",
    "topology.all-pairs-dijkstra",
    "datasets.eua-sample",
    "analysis.selflint.cold",
    "analysis.selflint.warm",
}


class TestRegistry:
    def test_at_least_eight_benchmarks(self):
        assert len(all_benchmarks()) >= 8

    def test_expected_hot_paths_registered(self):
        names = {b.name for b in all_benchmarks()}
        assert EXPECTED <= names

    def test_names_sorted_and_unique(self):
        names = [b.name for b in all_benchmarks()]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_get_benchmark_unknown_raises(self):
        with pytest.raises(BenchError, match="unknown benchmark"):
            get_benchmark("no.such.bench")

    def test_filter_selects_substring(self):
        selected = select_benchmarks("game.round")
        assert {b.name for b in selected} == {
            "game.round.round-robin",
            "game.round.round-robin.batched",
            "game.round.round-robin.traced",
            "game.round.round-robin.batched.traced",
            "game.round.best-gain-winner",
            "game.round.best-gain-winner.batched",
            "game.round.random-winner",
            "game.round.random-winner.batched",
        }

    def test_kernel_pairs_complete(self):
        """Every game benchmark is registered as a reference/batched pair."""
        names = {b.name for b in all_benchmarks()}
        pairs = {n for n in names if n.endswith(".batched")}
        assert pairs  # the batched kernel is benchmarked at all
        for batched in pairs:
            assert batched.removesuffix(".batched") in names

    def test_filter_with_no_match_raises(self):
        with pytest.raises(BenchError, match="matches no benchmark"):
            select_benchmarks("zzz-nothing")

    def test_every_benchmark_runs_at_scale_s(self):
        config = BenchRunConfig(scale="S", seed=0, repeats=1, warmup=0)
        for bench in all_benchmarks():
            stats = run_one(bench, config)
            assert stats.repeats == 1
            assert stats.min_s >= 0.0


class TestFixtures:
    def test_scales_defined(self):
        assert set(SCALES) == {"S", "M", "M_k64", "L", "XL"}
        small, medium = scale_spec("S"), scale_spec("M")
        assert small.m < medium.m and small.n < medium.n
        # M is the paper's Section 4.2 operating point.
        assert (medium.n, medium.m, medium.k) == (30, 200, 5)

    def test_k_heavy_scale_stresses_delivery(self):
        """M_k64 keeps the M topology but grows the catalogue and tightens
        storage, so the delivery phase dominates the solve."""
        heavy = scale_spec("M_k64")
        medium = scale_spec("M")
        assert (heavy.n, heavy.m) == (medium.n, medium.m)
        assert heavy.k == 64
        assert heavy.storage_range is not None
        assert heavy.storage_range[1] < 300.0  # tighter than the default draw

    def test_unknown_scale_raises(self):
        with pytest.raises(BenchError, match="unknown benchmark scale"):
            scale_spec("XXL")

    def test_instance_memoised_and_deterministic(self):
        clear_cache()
        a = instance_for("S", 0)
        assert instance_for("S", 0) is a  # memoised within a process
        clear_cache()
        b = instance_for("S", 0)
        assert b is not a
        np.testing.assert_array_equal(a.scenario.user_xy, b.scenario.user_xy)
        np.testing.assert_array_equal(a.topology.links, b.topology.links)

    def test_equilibrium_profile_matches_instance(self):
        profile = equilibrium_profile("S", 0)
        instance = instance_for("S", 0)
        profile.validate(instance.scenario)
