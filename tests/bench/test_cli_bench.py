"""End-to-end `idde bench` CLI tests (fast: --filter + 1 repeat)."""

from __future__ import annotations

import json

from repro.bench import all_benchmarks
from repro.cli import build_parser, main


class TestParser:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert (args.scale, args.repeats, args.warmup, args.seed) == ("S", 5, 1, 0)
        assert args.format == "text"
        assert args.compare is None

    def test_compare_takes_two_paths(self):
        args = build_parser().parse_args(["bench", "--compare", "old.json", "new.json"])
        assert args.compare == ["old.json", "new.json"]


class TestListAndRun:
    def test_list_shows_every_registered_benchmark(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for bench in all_benchmarks():
            assert bench.name in out

    def test_run_filtered_json(self, capsys):
        rc = main(
            ["bench", "--filter", "sinr.rates", "--repeats", "1", "--warmup", "0",
             "--format", "json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "idde-bench/1"
        assert list(doc["benchmarks"]) == ["sinr.rates"]
        assert doc["config"]["repeats"] == 1

    def test_output_writes_valid_document(self, capsys, tmp_path):
        path = tmp_path / "BENCH_head.json"
        rc = main(
            ["bench", "--filter", "delivery", "--repeats", "1", "--warmup", "0",
             "--output", str(path)]
        )
        assert rc == 0
        from repro.bench import load_document

        doc = load_document(path)
        assert "delivery.greedy" in doc["benchmarks"]

    def test_bad_filter_is_a_usage_error(self, capsys):
        assert main(["bench", "--filter", "nonexistent-kernel"]) == 2
        assert "error" in capsys.readouterr().err


class TestCompareCommand:
    def _write_doc(self, path, median_s):
        from repro.bench import BenchRunConfig, build_document, save_document
        from repro.bench.timer import summarize

        config = BenchRunConfig(scale="S", repeats=3)
        results = {"sinr.rates": summarize([median_s] * 3)}
        save_document(build_document(results, config), path)

    def test_unchanged_exits_zero(self, capsys, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write_doc(old, 0.01)
        self._write_doc(new, 0.011)
        assert main(["bench", "--compare", str(old), str(new)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_artificial_3x_slowdown_exits_nonzero(self, capsys, tmp_path):
        # The acceptance criterion: a benchmark artificially slowed 3x
        # must trip the default 2x gate.
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write_doc(old, 0.01)
        self._write_doc(new, 0.03)
        assert main(["bench", "--compare", str(old), str(new)]) != 0
        assert "FAIL" in capsys.readouterr().out

    def test_threshold_flag_loosens_gate(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write_doc(old, 0.01)
        self._write_doc(new, 0.03)
        rc = main(["bench", "--compare", str(old), str(new), "--threshold", "5.0"])
        capsys.readouterr()
        assert rc == 0

    def test_compare_json_format(self, capsys, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write_doc(old, 0.01)
        self._write_doc(new, 0.01)
        assert main(["bench", "--compare", str(old), str(new), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0
        assert payload["deltas"][0]["name"] == "sinr.rates"

    def test_missing_document_is_a_usage_error(self, capsys, tmp_path):
        old = tmp_path / "old.json"
        self._write_doc(old, 0.01)
        rc = main(["bench", "--compare", str(old), str(tmp_path / "absent.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestVerifyParity:
    def test_parser_flag(self):
        args = build_parser().parse_args(["bench", "--verify-parity"])
        assert args.verify_parity

    def test_verify_parity_passes_and_reports(self, capsys):
        rc = main(["bench", "--verify-parity"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PARITY OK" in out
        # The default grid is the ISSUE's 5 seeds x 3 schedules.
        assert out.count(" ok ") >= 15


class TestCommittedBaseline:
    def test_baseline_is_schema_valid_and_covers_the_registry(self):
        from pathlib import Path

        from repro.bench import load_document

        baseline = Path(__file__).resolve().parents[2] / "benchmarks" / "out" / "baseline_S.json"
        doc = load_document(baseline)
        assert doc["config"]["scale"] == "S"
        assert {b.name for b in all_benchmarks()} == set(doc["benchmarks"])
