"""Document schema validation and the JSON round-trip via repro.io."""

from __future__ import annotations

import pytest

from repro.bench import BenchRunConfig, build_document, document_stats, validate_document
from repro.bench.document import SCHEMA, load_document, render_text, save_document
from repro.bench.timer import summarize
from repro.errors import BenchError, DatasetError
from repro.io import load_json, save_json


def make_doc(**stats_kwargs):
    config = BenchRunConfig(scale="S", seed=0, repeats=3, warmup=1)
    results = {
        "sinr.rates": summarize([0.002, 0.003, 0.0025], warmup=1),
        "game.converge": summarize([0.01, 0.011, 0.0105], warmup=1),
    }
    return build_document(results, config)


class TestDocument:
    def test_build_document_is_schema_valid(self):
        doc = make_doc()
        assert doc["schema"] == SCHEMA
        assert validate_document(doc) is doc
        assert set(doc["benchmarks"]) == {"sinr.rates", "game.converge"}

    def test_round_trip_via_repro_io(self, tmp_path):
        doc = make_doc()
        path = save_document(doc, tmp_path / "BENCH_test.json")
        # The artifact is plain JSON readable by the generic io helper...
        assert load_json(path)["schema"] == SCHEMA
        # ...and the validated loader reconstructs identical stats.
        reloaded = load_document(path)
        assert document_stats(reloaded) == document_stats(doc)

    def test_load_document_rejects_wrong_schema(self, tmp_path):
        doc = make_doc()
        doc["schema"] = "idde-bench/999"
        path = save_json(doc, tmp_path / "bad.json")
        with pytest.raises(BenchError, match="unsupported benchmark schema"):
            load_document(path)

    def test_validate_rejects_missing_keys(self):
        doc = make_doc()
        del doc["benchmarks"]
        with pytest.raises(BenchError, match="lacks required keys"):
            validate_document(doc)

    def test_validate_rejects_malformed_entry(self):
        doc = make_doc()
        doc["benchmarks"]["sinr.rates"] = {"median_s": 1.0}
        with pytest.raises(BenchError, match="malformed"):
            validate_document(doc)

    def test_render_text_mentions_every_bench(self):
        text = render_text(make_doc())
        assert "sinr.rates" in text and "game.converge" in text
        assert "median ms" in text


class TestJsonHelpers:
    def test_load_json_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no such file"):
            load_json(tmp_path / "absent.json")

    def test_load_json_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="expected an object"):
            load_json(path)

    def test_load_json_rejects_garbage(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DatasetError, match="not valid JSON"):
            load_json(path)
