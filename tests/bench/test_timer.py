"""Timer-core tests on a fake clock: no wall-clock sleeps anywhere."""

from __future__ import annotations

import pytest

from repro.bench.timer import BenchStats, summarize, time_callable
from repro.errors import BenchError


class FakeClock:
    """A scripted monotonic clock: returns predefined tick values."""

    def __init__(self, ticks):
        self.ticks = list(ticks)
        self.calls = 0

    def __call__(self) -> float:
        value = self.ticks[self.calls]
        self.calls += 1
        return value


def ticks_for(durations, warmup=0):
    """Clock tick pairs yielding exactly ``durations`` for the timed runs."""
    ticks = []
    t = 0.0
    for d in durations:
        ticks.extend([t, t + d])
        t += d + 1.0  # gap between runs must not leak into samples
    return ticks


class TestTimeCallable:
    def test_measures_scripted_durations(self):
        clock = FakeClock(ticks_for([0.5, 0.25, 1.0]))
        stats = time_callable(lambda: None, repeats=3, warmup=0, clock=clock)
        assert stats.times_s == (0.5, 0.25, 1.0)
        assert stats.min_s == 0.25
        assert stats.max_s == 1.0
        assert stats.median_s == 0.5

    def test_warmup_runs_execute_but_are_not_timed(self):
        calls = []
        clock = FakeClock(ticks_for([0.5, 0.5]))
        stats = time_callable(
            lambda: calls.append(1), repeats=2, warmup=3, clock=clock
        )
        assert len(calls) == 5  # 3 warmup + 2 timed
        assert stats.repeats == 2
        assert stats.warmup == 3
        # Clock is only sampled around timed runs: 2 per repeat.
        assert clock.calls == 4

    def test_backwards_clock_raises(self):
        clock = FakeClock([10.0, 5.0])
        with pytest.raises(BenchError, match="backwards"):
            time_callable(lambda: None, repeats=1, warmup=0, clock=clock)

    def test_repeat_and_warmup_validation(self):
        with pytest.raises(BenchError, match="repeats"):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(BenchError, match="warmup"):
            time_callable(lambda: None, repeats=1, warmup=-1)


class TestSummarize:
    def test_median_iqr_min_on_known_samples(self):
        stats = summarize([4.0, 1.0, 2.0, 3.0], warmup=1)
        assert stats.median_s == 2.5
        assert stats.min_s == 1.0
        assert stats.max_s == 4.0
        assert stats.mean_s == 2.5
        # Inclusive quartiles of 1..4: q1=1.75, q3=3.25.
        assert stats.iqr_s == pytest.approx(1.5)

    def test_single_sample_has_zero_iqr(self):
        stats = summarize([0.125])
        assert stats.median_s == 0.125
        assert stats.iqr_s == 0.0
        assert stats.repeats == 1

    def test_empty_and_negative_samples_rejected(self):
        with pytest.raises(BenchError, match="zero timed runs"):
            summarize([])
        with pytest.raises(BenchError, match="negative"):
            summarize([0.1, -0.1])

    def test_stats_round_trip_dict(self):
        stats = summarize([0.5, 0.25, 1.0], warmup=2)
        assert BenchStats.from_dict(stats.to_dict()) == stats

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(BenchError, match="malformed"):
            BenchStats.from_dict({"repeats": 1})
