"""Kernel-pair parity must hold with a live recording tracer attached.

The tracer never consumes RNG and never feeds back into move selection,
so attaching it to both replays must leave every move log, profile and
certificate bit-identical — the acceptance gate for the instrumentation.
"""

from __future__ import annotations

from repro.bench.parity import verify_kernel_pair
from repro.obs import RecordingTracer


def test_parity_holds_with_tracing_enabled():
    tracer = RecordingTracer()
    report = verify_kernel_pair(scale="S", seeds=(0,), tracer=tracer)
    assert report.ok, [case.describe() for case in report.failures]
    # Both kernels of every (seed, schedule) case were actually observed.
    assert len([s for s in tracer.spans if s.name == "game.run"]) == 6
    assert tracer.counters["game.moves"] > 0
