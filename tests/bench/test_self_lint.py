"""IDDE-Lint self-check scoped to the bench subsystem.

The whole-tree self-lint in ``tests/analysis`` covers this too, but the
scoped check keeps the invariant local: a future bench-only PR that
introduces an RNG/unit/layering violation fails *here*, with a finding
list naming only bench files.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.rules.layering import FORBIDDEN

BENCH_SRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "bench"


def test_bench_subsystem_lints_clean():
    findings = lint_paths([BENCH_SRC])
    report = "\n".join(f.render() for f in findings)
    assert findings == [], f"lint findings in src/repro/bench:\n{report}"


def test_bench_layer_is_in_the_import_dag():
    # The measurement substrate must stay below the reporting harness.
    assert FORBIDDEN["bench"] == frozenset({"experiments", "viz", "cli"})


def test_selflint_warm_cache_is_5x_faster_than_cold():
    # The acceptance criterion for the incremental cache: a warm self-lint
    # of src/repro must be at least 5x faster than a cold one.  The real
    # margin is two orders of magnitude, so 5x is flake-proof.
    import time

    from repro.bench import get_benchmark

    cold = get_benchmark("analysis.selflint.cold").make("S", 0)
    warm = get_benchmark("analysis.selflint.warm").make("S", 0)

    t0 = time.perf_counter()
    cold_findings = cold()
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_findings = warm()
    t_warm = time.perf_counter() - t0

    assert cold_findings == warm_findings  # the cache never changes results
    assert t_warm * 5 <= t_cold, (
        f"warm self-lint {t_warm:.3f}s not 5x faster than cold {t_cold:.3f}s"
    )
