"""IDDE-Lint self-check scoped to the bench subsystem.

The whole-tree self-lint in ``tests/analysis`` covers this too, but the
scoped check keeps the invariant local: a future bench-only PR that
introduces an RNG/unit/layering violation fails *here*, with a finding
list naming only bench files.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.rules.layering import FORBIDDEN

BENCH_SRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "bench"


def test_bench_subsystem_lints_clean():
    findings = lint_paths([BENCH_SRC])
    report = "\n".join(f.render() for f in findings)
    assert findings == [], f"lint findings in src/repro/bench:\n{report}"


def test_bench_layer_is_in_the_import_dag():
    # The measurement substrate must stay below the reporting harness.
    assert FORBIDDEN["bench"] == frozenset({"experiments", "viz", "cli"})
