"""Regression tests: benchmark timed regions never touch the process pool.

The ISSUE's fix item: ``parallel.pool.default_workers`` and
``ParallelConfig`` must not be consulted inside a timed region — benches
measure kernels, never pool startup.  :func:`repro.parallel.force_serial`
is the enforcement mechanism and the runner must wrap every timed region
in it.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchRunConfig, run_one
from repro.bench.registry import Benchmark
from repro.parallel import ParallelConfig, force_serial, parallel_map, serial_forced
from repro.parallel import pool as pool_mod


@pytest.fixture
def no_pool(monkeypatch):
    """Make any ProcessPoolExecutor construction an immediate failure."""

    class Exploding:
        def __init__(self, *args, **kwargs):
            raise AssertionError("a timed region tried to start a process pool")

    monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", Exploding)


class TestForceSerial:
    def test_parallel_map_stays_serial_under_force(self, no_pool):
        config = ParallelConfig(n_workers=8, min_parallel_items=1)
        items = list(range(10))
        with force_serial():
            assert parallel_map(_double, items, config) == [2 * x for x in items]

    def test_without_force_the_pool_is_consulted(self, no_pool):
        config = ParallelConfig(n_workers=8, min_parallel_items=1)
        with pytest.raises(AssertionError, match="process pool"):
            parallel_map(_double, list(range(10)), config)

    def test_nesting_is_reentrant(self):
        assert not serial_forced()
        with force_serial():
            with force_serial():
                assert serial_forced()
            assert serial_forced()
        assert not serial_forced()


def _double(x: int) -> int:
    return 2 * x


class TestRunnerPinsSerial:
    def test_timed_region_runs_inside_force_serial(self):
        observed: list[bool] = []

        def make(scale: str, seed: int):
            # Setup runs outside the pin; only the timed callable is pinned.
            observed.append(serial_forced())
            return lambda: observed.append(serial_forced())

        bench = Benchmark(name="probe", description="serial probe", make=make)
        run_one(bench, BenchRunConfig(scale="S", repeats=2, warmup=1))
        setup_flag, *timed_flags = observed
        assert setup_flag is False
        assert timed_flags == [True, True, True]  # 1 warmup + 2 timed

    def test_benchmarked_parallel_map_cannot_start_a_pool(self, no_pool):
        """A kernel that (after a future refactor) fans out via
        parallel_map still benches serially instead of forking."""

        def make(scale: str, seed: int):
            config = ParallelConfig(n_workers=8, min_parallel_items=1)
            return lambda: parallel_map(_double, list(range(8)), config)

        bench = Benchmark(name="probe-pool", description="pool probe", make=make)
        stats = run_one(bench, BenchRunConfig(scale="S", repeats=1, warmup=0))
        assert stats.repeats == 1
