"""The delivery kernel-pair parity harness (repro.bench.delivery_parity).

Exhaustive parity coverage lives in ``tests/core/test_delivery_kernels.py``;
these tests pin the harness itself — grid shape, verdict plumbing, and
the rendered report the CI gate prints.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import (
    DELIVERY_PARITY_CONFIGS,
    DeliveryPairCase,
    DeliveryParityReport,
    render_delivery_parity_text,
    verify_delivery_pair,
)


def _one_seed_report() -> DeliveryParityReport:
    # One shared-fixture seed keeps this cheap: the S instance and its
    # equilibrium are memoised across the whole test process.
    return verify_delivery_pair(scale="S", seeds=(0,))


class TestVerifyDeliveryPair:
    def test_grid_shape_and_verdict(self):
        report = _one_seed_report()
        # one seed x four configs x {plain, traced}
        assert len(report.cases) == len(DELIVERY_PARITY_CONFIGS) * 2
        assert report.ok
        assert report.failures == ()

    def test_both_rules_and_thresholds_covered(self):
        report = _one_seed_report()
        rules = {case.ratio_rule for case in report.cases}
        assert rules == {True, False}
        assert any(case.stop_threshold > 0 for case in report.cases)
        assert any(case.traced for case in report.cases)
        assert any(not case.traced for case in report.cases)

    def test_some_case_actually_places(self):
        """A grid where nothing is placed would verify vacuously."""
        report = _one_seed_report()
        assert any(case.placements > 0 for case in report.cases)

    def test_render_reports_parity_ok(self):
        report = _one_seed_report()
        text = render_delivery_parity_text(report)
        assert "PARITY OK" in text
        assert f"{len(report.cases)} cases" in text

    def test_render_flags_failures(self):
        report = _one_seed_report()
        broken = replace(report.cases[0], same_gains=False)
        assert not broken.ok
        assert "gains" in broken.describe()
        bad_report = DeliveryParityReport(cases=(broken,) + report.cases[1:])
        assert not bad_report.ok
        assert bad_report.failures == (broken,)
        assert "PARITY BROKEN" in render_delivery_parity_text(bad_report)

    def test_case_describe_mentions_rule(self):
        case: DeliveryPairCase = _one_seed_report().cases[0]
        assert ("ratio" in case.describe()) or ("abs" in case.describe())
