"""Mobility model tests."""

import numpy as np
import pytest

from repro.dynamics.mobility import ConfinedRandomWalk, RandomWaypoint
from repro.errors import ScenarioError
from repro.geometry import Region

REGION = Region(0, 0, 1000, 800)


def start_positions(n=20, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform([0, 0], [1000, 800], size=(n, 2))


class TestRandomWaypoint:
    def test_stays_in_region(self):
        model = RandomWaypoint(start_positions(), REGION, rng=0)
        for _ in range(50):
            pts = model.step(10.0)
            assert REGION.contains(pts).all()

    def test_moves_toward_target(self):
        model = RandomWaypoint(start_positions(1), REGION, rng=0, speed_range=(1.0, 1.0))
        before = model.positions.copy()
        target = model.targets.copy()
        model.step(5.0)
        d_before = np.linalg.norm(target - before)
        d_after = np.linalg.norm(target - model.positions)
        assert d_after < d_before

    def test_speed_respected(self):
        model = RandomWaypoint(
            start_positions(10), REGION, rng=1, speed_range=(2.0, 2.0)
        )
        before = model.positions.copy()
        model.step(3.0)
        moved = np.linalg.norm(model.positions - before, axis=1)
        assert (moved <= 6.0 + 1e-9).all()

    def test_arrival_redraws_target(self):
        model = RandomWaypoint(start_positions(1), REGION, rng=2, speed_range=(3.0, 3.0))
        old_target = model.targets.copy()
        # Step long enough to certainly arrive (diagonal is ~1280 m).
        model.step(1e6)
        assert not np.allclose(model.targets, old_target)

    def test_deterministic(self):
        a = RandomWaypoint(start_positions(), REGION, rng=3)
        b = RandomWaypoint(start_positions(), REGION, rng=3)
        for _ in range(5):
            assert np.allclose(a.step(7.0), b.step(7.0))

    def test_bad_speed_range(self):
        with pytest.raises(ScenarioError):
            RandomWaypoint(start_positions(), REGION, rng=0, speed_range=(0.0, 1.0))

    def test_negative_dt(self):
        model = RandomWaypoint(start_positions(), REGION, rng=0)
        with pytest.raises(ScenarioError):
            model.step(-1.0)


class TestConfinedRandomWalk:
    def test_stays_in_region(self):
        model = ConfinedRandomWalk(start_positions(), REGION, rng=0, sigma=30.0)
        for _ in range(100):
            pts = model.step(10.0)
            assert REGION.contains(pts).all()

    def test_diffuses(self):
        model = ConfinedRandomWalk(start_positions(), REGION, rng=1, sigma=2.0)
        before = model.positions.copy()
        for _ in range(10):
            model.step(10.0)
        moved = np.linalg.norm(model.positions - before, axis=1)
        assert moved.mean() > 1.0

    def test_zero_dt_is_static(self):
        model = ConfinedRandomWalk(start_positions(), REGION, rng=2)
        before = model.positions.copy()
        model.step(0.0)
        assert np.allclose(model.positions, before)

    def test_bad_sigma(self):
        with pytest.raises(ScenarioError):
            ConfinedRandomWalk(start_positions(), REGION, rng=0, sigma=0.0)

    def test_bad_positions_shape(self):
        with pytest.raises(ScenarioError):
            ConfinedRandomWalk(np.zeros((3, 3)), REGION, rng=0)
