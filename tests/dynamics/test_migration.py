"""Migration planning tests."""

import numpy as np
import pytest

from repro.core.profiles import DeliveryProfile
from repro.dynamics.migration import plan_migration
from repro.errors import DeliveryError


class TestPlanMigration:
    def test_no_change_no_cost(self, line_instance):
        profile = DeliveryProfile.empty(4, 3)
        profile.placed[0, 0] = True
        plan = plan_migration(line_instance, profile, profile.copy())
        assert plan.n_added == 0 and plan.n_removed == 0
        assert plan.bytes_moved == 0.0
        assert plan.sequential_time_s == 0.0
        assert plan.parallel_time_s == 0.0

    def test_cold_start_seeds_from_cloud(self, line_instance):
        empty = DeliveryProfile.empty(4, 3)
        new = DeliveryProfile.empty(4, 3)
        new.placed[1, 0] = True
        plan = plan_migration(line_instance, empty, new)
        assert plan.n_added == 1
        assert plan.sources == (-1,)
        assert plan.cloud_seeded == 1
        s0 = line_instance.scenario.sizes[0]
        assert plan.transfer_times_s[0] == pytest.approx(s0 / 600.0)
        assert plan.bytes_moved == pytest.approx(s0)

    def test_seeds_from_nearest_old_holder(self, line_instance):
        old = DeliveryProfile.empty(4, 3)
        old.placed[0, 1] = True
        new = old.copy()
        new.placed[1, 1] = True
        plan = plan_migration(line_instance, old, new)
        assert plan.sources == (0,)
        s1 = line_instance.scenario.sizes[1]
        assert plan.transfer_times_s[0] == pytest.approx(s1 / 3000.0)
        assert plan.cloud_seeded == 0

    def test_prefers_cloud_over_far_holder(self, line_instance):
        # Holder 3 hops away at 3000 MB/s costs 3/3000 = 1e-3 s/MB, cloud
        # costs 1/600 ≈ 1.67e-3 s/MB: holder wins.  But with the latency
        # constraint the path cost is already capped, so the plan picks
        # whichever is genuinely cheaper.
        old = DeliveryProfile.empty(4, 3)
        old.placed[0, 2] = True
        new = old.copy()
        new.placed[3, 2] = True
        plan = plan_migration(line_instance, old, new)
        s2 = line_instance.scenario.sizes[2]
        expected = s2 * min(3 / 3000.0, 1 / 600.0)
        assert plan.transfer_times_s[0] == pytest.approx(expected)

    def test_removals_are_free(self, line_instance):
        old = DeliveryProfile.empty(4, 3)
        old.placed[0, 0] = True
        old.placed[1, 1] = True
        new = DeliveryProfile.empty(4, 3)
        plan = plan_migration(line_instance, old, new)
        assert plan.n_removed == 2
        assert plan.bytes_moved == 0.0

    def test_sequential_vs_parallel(self, line_instance):
        empty = DeliveryProfile.empty(4, 3)
        new = DeliveryProfile.empty(4, 3)
        new.placed[0, 0] = True
        new.placed[1, 0] = True
        plan = plan_migration(line_instance, empty, new)
        assert plan.sequential_time_s == pytest.approx(sum(plan.transfer_times_s))
        assert plan.parallel_time_s == pytest.approx(max(plan.transfer_times_s))
        assert plan.parallel_time_s <= plan.sequential_time_s

    def test_new_profile_must_be_feasible(self, line_instance):
        empty = DeliveryProfile.empty(4, 3)
        bad = DeliveryProfile.empty(4, 3)
        bad.placed[0, :] = True  # 180 MB > 100 MB storage
        from repro.errors import StorageViolation

        with pytest.raises(StorageViolation):
            plan_migration(line_instance, empty, bad)

    def test_shape_mismatch(self, line_instance):
        with pytest.raises(DeliveryError):
            plan_migration(
                line_instance,
                DeliveryProfile.empty(2, 2),
                DeliveryProfile.empty(4, 3),
            )
