"""Dynamic simulation (epoch loop) tests."""

import numpy as np
import pytest

from repro.core.instance import IDDEInstance
from repro.datasets.melbourne import CBD_REGION
from repro.dynamics import ConfinedRandomWalk, DynamicSimulation, RandomWaypoint
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def instance():
    return IDDEInstance.generate(n=12, m=50, k=4, density=1.5, seed=5)


def waypoint(instance, speed=(5.0, 15.0), seed=1):
    return RandomWaypoint(
        instance.scenario.user_xy, CBD_REGION, rng=seed, speed_range=speed
    )


class TestBasics:
    def test_epoch_zero_is_initial_solve(self, instance):
        sim = DynamicSimulation(instance, waypoint(instance))
        records = sim.run(epochs=1, dt=10.0, rng=0)
        assert len(records) == 1
        rec = records[0]
        assert rec.epoch == 0
        assert rec.r_avg > 0
        assert rec.migration.cloud_seeded == rec.migration.n_added  # cold fill

    def test_record_count(self, instance):
        sim = DynamicSimulation(instance, waypoint(instance))
        records = sim.run(epochs=5, dt=20.0, rng=0)
        assert [r.epoch for r in records] == [0, 1, 2, 3, 4]

    def test_policy_validation(self, instance):
        with pytest.raises(ExperimentError):
            DynamicSimulation(instance, waypoint(instance), policy="oracle")

    def test_user_count_mismatch(self, instance):
        small = RandomWaypoint(np.zeros((3, 2)), CBD_REGION, rng=0)
        with pytest.raises(ExperimentError):
            DynamicSimulation(instance, small)

    def test_zero_epochs_rejected(self, instance):
        sim = DynamicSimulation(instance, waypoint(instance))
        with pytest.raises(ExperimentError):
            sim.run(epochs=0, dt=1.0)


class TestPolicies:
    def test_static_never_resolves(self, instance):
        sim = DynamicSimulation(instance, waypoint(instance), policy="static")
        records = sim.run(epochs=4, dt=30.0, rng=0)
        assert all(r.game_moves == 0 for r in records[1:])
        assert all(r.migration_mb == 0.0 for r in records[1:])

    def test_static_decays_under_heavy_motion(self, instance):
        """A never-updated strategy loses rate as users walk away."""
        sim = DynamicSimulation(
            instance, waypoint(instance, speed=(20.0, 40.0)), policy="static"
        )
        records = sim.run(epochs=6, dt=60.0, rng=0)
        assert records[-1].r_avg < records[0].r_avg * 0.8

    def test_warm_tracks_quality(self, instance):
        warm = DynamicSimulation(
            instance, waypoint(instance, speed=(20.0, 40.0)), policy="warm"
        ).run(epochs=6, dt=60.0, rng=0)
        static = DynamicSimulation(
            instance, waypoint(instance, speed=(20.0, 40.0)), policy="static"
        ).run(epochs=6, dt=60.0, rng=0)
        assert warm[-1].r_avg > static[-1].r_avg

    def test_warm_cheaper_than_cold_under_slow_motion(self, instance):
        """With gentle mobility, warm-started re-solves need far fewer
        best-response moves than solving from scratch."""
        slow = (0.3, 0.8)
        warm = DynamicSimulation(
            instance, waypoint(instance, speed=slow), policy="warm"
        ).run(epochs=5, dt=10.0, rng=0)
        cold = DynamicSimulation(
            instance, waypoint(instance, speed=slow), policy="cold"
        ).run(epochs=5, dt=10.0, rng=0)
        warm_moves = np.mean([r.game_moves for r in warm[1:]])
        cold_moves = np.mean([r.game_moves for r in cold[1:]])
        assert warm_moves < cold_moves * 0.5, (warm_moves, cold_moves)

    def test_cold_and_warm_maintain_rate(self, instance):
        for policy in ("warm", "cold"):
            records = DynamicSimulation(
                instance, waypoint(instance, speed=(10.0, 20.0)), policy=policy
            ).run(epochs=5, dt=30.0, rng=0)
            rates = [r.r_avg for r in records]
            assert min(rates) > 0.6 * rates[0], (policy, rates)


class TestWithRandomWalk:
    def test_runs_with_walk_model(self, instance):
        walk = ConfinedRandomWalk(
            instance.scenario.user_xy, CBD_REGION, rng=2, sigma=5.0
        )
        sim = DynamicSimulation(instance, walk, policy="warm")
        records = sim.run(epochs=4, dt=20.0, rng=0)
        assert len(records) == 4
        assert all(r.r_avg > 0 for r in records)


class TestSummary:
    def test_summary_keys(self, instance):
        sim = DynamicSimulation(instance, waypoint(instance))
        records = sim.run(epochs=4, dt=20.0, rng=0)
        summary = DynamicSimulation.summarize(records)
        assert set(summary) == {
            "mean_r_avg",
            "mean_l_avg_ms",
            "mean_realloc",
            "mean_moves",
            "mean_migration_mb",
            "mean_solve_time_s",
        }

    def test_empty_summary(self):
        assert DynamicSimulation.summarize([]) == {}

    def test_single_record_steady_metrics_are_nan(self, instance):
        """Epoch 0 is cold build-up, not churn: a 1-epoch run has no
        steady-state sample, so the churn statistics are NaN rather than
        the cold solve in disguise."""
        sim = DynamicSimulation(instance, waypoint(instance))
        records = sim.run(epochs=1, dt=10.0, rng=0)
        summary = DynamicSimulation.summarize(records)
        for key in (
            "mean_realloc",
            "mean_moves",
            "mean_migration_mb",
            "mean_solve_time_s",
        ):
            assert np.isnan(summary[key]), key
        assert summary["mean_r_avg"] == pytest.approx(records[0].r_avg)

    def test_multi_record_steady_metrics_exclude_epoch_zero(self, instance):
        sim = DynamicSimulation(instance, waypoint(instance))
        records = sim.run(epochs=3, dt=10.0, rng=0)
        summary = DynamicSimulation.summarize(records)
        assert summary["mean_realloc"] == pytest.approx(
            np.mean([r.reallocated_users for r in records[1:]])
        )
        # Epoch 0's reallocated_users is the cold fill (n_allocated), which
        # would otherwise swamp the epoch-over-epoch change statistic.
        assert records[0].reallocated_users > summary["mean_realloc"]


class TestEventDriven:
    """run_events: the streaming front-end of the same engine."""

    def _stream(self, instance, n_events=120, per_epoch=40, seed=0, **kw):
        from repro.workload import StreamConfig, batch_by_count, poisson_zipf_stream

        cfg = StreamConfig(move_sigma=20.0, **kw)
        return batch_by_count(
            poisson_zipf_stream(
                instance.scenario, rng=seed, config=cfg, n_events=n_events
            ),
            per_epoch,
        )

    def test_records_and_solutions(self, instance):
        sim = DynamicSimulation(instance, policy="warm")
        records = sim.run_events(self._stream(instance), rng=0)
        assert [r.epoch for r in records] == [0, 1, 2, 3]
        assert records[0].n_events == 0
        assert sum(r.n_events for r in records) == 120
        for r in records:
            assert r.solution is not None
            assert r.solution.game.is_nash
            assert r.active_users == r.solution.config.get(
                "active_users", instance.n_users
            )

    def test_warm_epochs_declare_warm_start(self, instance):
        records = DynamicSimulation(instance, policy="warm").run_events(
            self._stream(instance), rng=0
        )
        assert records[0].solution.config["warm_start"] is False
        assert all(r.solution.config["warm_start"] for r in records[1:])
        cold = DynamicSimulation(instance, policy="cold").run_events(
            self._stream(instance), rng=0
        )
        assert all(not r.solution.config["warm_start"] for r in cold)

    def test_static_policy_has_no_solutions_after_epoch_zero(self, instance):
        records = DynamicSimulation(instance, policy="static").run_events(
            self._stream(instance), rng=0
        )
        assert records[0].solution is not None
        assert all(r.solution is None for r in records[1:])
        assert all(r.game_moves == 0 for r in records[1:])

    def test_leave_events_shrink_active_count(self, instance):
        from repro.workload import EpochBatch, UserLeave

        batch = EpochBatch(
            0, 0.0, 1.0, tuple(UserLeave(t=1.0, user=j) for j in range(5))
        )
        records = DynamicSimulation(instance, policy="warm").run_events(
            [batch], rng=0
        )
        assert records[0].active_users == instance.n_users
        assert records[1].active_users == instance.n_users - 5
        # Departed users end the epoch unallocated.
        alloc = records[1].solution.allocation
        assert not alloc.allocated[:5].any()

    def test_mobility_and_event_frontends_share_engine(self, instance):
        """run() is an adapter: its records carry façade solutions too."""
        sim = DynamicSimulation(instance, waypoint(instance), policy="cold")
        records = sim.run(epochs=2, dt=10.0, rng=0)
        assert all(r.solution is not None for r in records)
        assert records[1].n_events >= instance.n_users  # a Move per user
