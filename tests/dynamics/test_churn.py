"""User churn tests."""

import numpy as np
import pytest

from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.datasets.melbourne import CBD_REGION
from repro.dynamics import DynamicSimulation, RandomWaypoint
from repro.dynamics.churn import PoissonChurn, apply_churn
from repro.errors import ScenarioError


class TestPoissonChurn:
    def test_initial_all_active(self):
        churn = PoissonChurn(50, rng=0)
        assert churn.n_active == 50

    def test_stationary_fraction(self):
        churn = PoissonChurn(500, rng=1, p_depart=0.1, p_arrive=0.3)
        for _ in range(100):
            churn.step()
        expected = churn.stationary_fraction()
        assert expected == pytest.approx(0.75)
        assert abs(churn.n_active / 500 - expected) < 0.12

    def test_no_churn_is_static(self):
        churn = PoissonChurn(20, rng=2, p_depart=0.0, p_arrive=0.0)
        before = churn.active.copy()
        churn.step()
        assert np.array_equal(before, churn.active)

    def test_step_returns_copy(self):
        churn = PoissonChurn(10, rng=3, p_depart=0.5, p_arrive=0.5)
        mask = churn.step()
        mask[:] = False
        assert churn.n_active >= 0  # internal state untouched by caller

    def test_deterministic(self):
        a = PoissonChurn(30, rng=4, p_depart=0.2, p_arrive=0.2)
        b = PoissonChurn(30, rng=4, p_depart=0.2, p_arrive=0.2)
        for _ in range(5):
            assert np.array_equal(a.step(), b.step())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p_depart": -0.1},
            {"p_arrive": 1.5},
            {"initial_active": 2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ScenarioError):
            PoissonChurn(5, rng=0, **kwargs)


class TestApplyChurn:
    def test_inactive_requests_zeroed(self, tiny_scenario):
        active = np.array([True, False, True, False, True, True])
        out = apply_churn(tiny_scenario, active)
        assert out.requests[1].sum() == 0
        assert out.requests[3].sum() == 0
        assert np.array_equal(out.requests[0], tiny_scenario.requests[0])

    def test_shapes_preserved(self, tiny_scenario):
        active = np.zeros(6, dtype=bool)
        out = apply_churn(tiny_scenario, active)
        assert out.n_users == tiny_scenario.n_users
        assert out.total_requests == 0

    def test_mask_shape_checked(self, tiny_scenario):
        with pytest.raises(ScenarioError):
            apply_churn(tiny_scenario, np.array([True]))


class TestGameWithMask:
    def test_inactive_users_stay_unallocated(self, tiny_instance):
        active = np.array([True, True, False, True, False, True])
        result = IddeUGame(tiny_instance).run(rng=0, active=active)
        assert result.converged
        assert not result.profile.allocated[2]
        assert not result.profile.allocated[4]
        assert result.profile.allocated[active].all()

    def test_warm_start_must_respect_mask(self, tiny_instance):
        from repro.errors import ConvergenceError

        full = IddeUGame(tiny_instance).run(rng=0).profile
        active = np.zeros(6, dtype=bool)
        with pytest.raises(ConvergenceError):
            IddeUGame(tiny_instance).run(rng=0, initial=full, active=active)

    def test_mask_shape_checked(self, tiny_instance):
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError):
            IddeUGame(tiny_instance).run(rng=0, active=np.array([True]))


class TestTimelineWithChurn:
    @pytest.fixture(scope="class")
    def instance(self):
        return IDDEInstance.generate(n=10, m=40, k=3, density=1.5, seed=5)

    def test_active_users_recorded(self, instance):
        mob = RandomWaypoint(
            instance.scenario.user_xy, CBD_REGION, rng=1, speed_range=(2.0, 6.0)
        )
        churn = PoissonChurn(40, rng=2, p_depart=0.3, p_arrive=0.3, initial_active=0.6)
        sim = DynamicSimulation(instance, mob, policy="warm", churn=churn)
        records = sim.run(epochs=4, dt=20.0, rng=0)
        assert all(0 <= r.active_users <= 40 for r in records)
        assert any(r.active_users < 40 for r in records)

    def test_churn_size_checked(self, instance):
        from repro.errors import ExperimentError

        mob = RandomWaypoint(instance.scenario.user_xy, CBD_REGION, rng=1)
        with pytest.raises(ExperimentError):
            DynamicSimulation(instance, mob, churn=PoissonChurn(3, rng=0))

    def test_without_churn_everyone_active(self, instance):
        mob = RandomWaypoint(
            instance.scenario.user_xy, CBD_REGION, rng=1, speed_range=(2.0, 6.0)
        )
        sim = DynamicSimulation(instance, mob, policy="warm")
        records = sim.run(epochs=3, dt=20.0, rng=0)
        assert all(r.active_users == 40 for r in records)
