"""Edge-graph construction tests."""

import numpy as np
import pytest

from repro.config import TopologyConfig
from repro.errors import TopologyError
from repro.topology.graph import EdgeTopology, build_topology, _unrank_pairs


class TestEdgeTopology:
    def test_basic(self):
        topo = EdgeTopology(
            n=3,
            links=np.array([[0, 1], [1, 2]]),
            speeds=np.array([3000.0, 4000.0]),
        )
        assert topo.n_links == 2
        assert topo.is_connected()

    def test_adjacency_cost(self):
        topo = EdgeTopology(n=3, links=np.array([[0, 1]]), speeds=np.array([2000.0]))
        cost = topo.adjacency_cost
        assert cost[0, 1] == pytest.approx(1 / 2000.0)
        assert cost[1, 0] == cost[0, 1]
        assert np.isinf(cost[0, 2])
        assert cost[0, 0] == 0.0

    def test_degree_and_neighbors(self):
        topo = EdgeTopology(
            n=4, links=np.array([[0, 1], [0, 2]]), speeds=np.array([1.0, 1.0])
        )
        assert topo.degree.tolist() == [2, 1, 1, 0]
        assert sorted(topo.neighbors(0).tolist()) == [1, 2]
        assert topo.neighbors(3).tolist() == []

    def test_neighbors_out_of_range(self):
        topo = EdgeTopology(n=2, links=np.empty((0, 2)), speeds=np.empty(0))
        with pytest.raises(TopologyError):
            topo.neighbors(5)

    def test_disconnected(self):
        topo = EdgeTopology(n=3, links=np.array([[0, 1]]), speeds=np.array([1.0]))
        assert not topo.is_connected()

    def test_single_node_connected(self):
        topo = EdgeTopology(n=1, links=np.empty((0, 2)), speeds=np.empty(0))
        assert topo.is_connected()

    @pytest.mark.parametrize(
        "links,speeds,err",
        [
            (np.array([[0, 0]]), np.array([1.0]), "self-loop"),
            (np.array([[0, 5]]), np.array([1.0]), "out of range"),
            (np.array([[0, 1], [1, 0]]), np.array([1.0, 1.0]), "parallel"),
            (np.array([[0, 1]]), np.array([0.0]), "positive"),
            (np.array([[0, 1]]), np.array([1.0, 2.0]), "speeds"),
        ],
    )
    def test_validation(self, links, speeds, err):
        with pytest.raises(TopologyError):
            EdgeTopology(n=3, links=links, speeds=speeds)

    def test_bad_cloud_speed(self):
        with pytest.raises(TopologyError):
            EdgeTopology(
                n=2, links=np.empty((0, 2)), speeds=np.empty(0), cloud_speed=0.0
            )


class TestBuildTopology:
    def test_link_count_matches_density(self):
        topo = build_topology(30, 1.0, 0)
        assert topo.n_links == 30

    def test_density_caps_at_complete_graph(self):
        topo = build_topology(5, 100.0, 0)
        assert topo.n_links == 10  # C(5,2)

    def test_zero_density(self):
        topo = build_topology(10, 0.0, 0)
        assert topo.n_links == 0

    def test_speeds_in_range(self):
        topo = build_topology(40, 2.0, 1)
        assert (topo.speeds >= 2000.0).all() and (topo.speeds <= 6000.0).all()

    def test_no_duplicate_links(self):
        topo = build_topology(20, 3.0, 2)
        canon = np.sort(topo.links, axis=1)
        assert len(np.unique(canon, axis=0)) == topo.n_links

    def test_deterministic(self):
        a = build_topology(25, 1.5, 7)
        b = build_topology(25, 1.5, 7)
        assert np.array_equal(a.links, b.links)
        assert np.allclose(a.speeds, b.speeds)

    def test_custom_config(self):
        cfg = TopologyConfig(edge_speed_range=(10.0, 10.0), cloud_speed=50.0)
        topo = build_topology(6, 1.0, 3, cfg)
        assert np.allclose(topo.speeds, 10.0)
        assert topo.cloud_speed == 50.0

    def test_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            build_topology(0, 1.0, 0)
        with pytest.raises(TopologyError):
            build_topology(5, -1.0, 0)


class TestUnrankPairs:
    def test_enumerates_all_pairs(self):
        n = 9
        n_pairs = n * (n - 1) // 2
        pairs = _unrank_pairs(np.arange(n_pairs), n)
        assert len(np.unique(pairs, axis=0)) == n_pairs
        assert (pairs[:, 0] < pairs[:, 1]).all()
        assert pairs.min() >= 0 and pairs.max() < n

    def test_first_and_last(self):
        n = 5
        pairs = _unrank_pairs(np.array([0, n * (n - 1) // 2 - 1]), n)
        assert pairs[0].tolist() == [0, 1]
        assert pairs[1].tolist() == [3, 4]
