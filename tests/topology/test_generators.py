"""Structured topology family tests."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.generators import (
    geometric_topology,
    grid_topology,
    ring_topology,
    scale_free_topology,
    star_topology,
)


class TestRing:
    def test_cycle_structure(self):
        topo = ring_topology(8, rng=0)
        assert topo.n_links == 8
        assert (topo.degree == 2).all()
        assert topo.is_connected()

    def test_two_nodes_path(self):
        topo = ring_topology(2, rng=0)
        assert topo.n_links == 1

    def test_single_node(self):
        topo = ring_topology(1, rng=0)
        assert topo.n_links == 0

    def test_invalid(self):
        with pytest.raises(TopologyError):
            ring_topology(0)


class TestGrid:
    def test_square_grid(self):
        topo = grid_topology(9, rng=0)  # 3x3
        assert topo.n_links == 12
        assert topo.is_connected()

    def test_partial_last_row(self):
        topo = grid_topology(7, rng=0)  # 3 cols, rows of 3/3/1
        assert topo.is_connected()
        assert topo.n_links >= 6

    def test_degrees_bounded_by_four(self):
        topo = grid_topology(25, rng=0)
        assert topo.degree.max() <= 4


class TestStar:
    def test_hub_degree(self):
        topo = star_topology(10, rng=0)
        assert topo.degree[0] == 9
        assert (topo.degree[1:] == 1).all()
        assert topo.is_connected()

    def test_custom_hub(self):
        topo = star_topology(5, rng=0, hub=2)
        assert topo.degree[2] == 4

    def test_bad_hub(self):
        with pytest.raises(TopologyError):
            star_topology(3, hub=7)


class TestScaleFree:
    def test_connected_and_hubby(self):
        topo = scale_free_topology(40, rng=0, m_attach=2)
        assert topo.is_connected()
        # Preferential attachment: degree distribution is skewed.
        assert topo.degree.max() >= 3 * np.median(topo.degree)

    def test_link_budget(self):
        topo = scale_free_topology(30, rng=1, m_attach=2)
        # seed clique 3 links + 2 per additional node, minus dedup slack.
        assert 2 * 27 * 0.7 <= topo.n_links <= 3 + 2 * 27

    def test_bad_attach(self):
        with pytest.raises(TopologyError):
            scale_free_topology(5, m_attach=0)

    def test_deterministic(self):
        a = scale_free_topology(20, rng=5)
        b = scale_free_topology(20, rng=5)
        assert np.array_equal(a.links, b.links)


class TestGeometric:
    def test_radius_links(self):
        xy = np.array([[0.0, 0.0], [50.0, 0.0], [500.0, 0.0]])
        topo = geometric_topology(xy, 100.0, rng=0)
        assert topo.n_links == 1
        assert topo.links.tolist() == [[0, 1]]

    def test_large_radius_complete(self):
        rng = np.random.default_rng(0)
        xy = rng.uniform(0, 100, size=(6, 2))
        topo = geometric_topology(xy, 1e6, rng=0)
        assert topo.n_links == 15

    def test_bad_radius(self):
        with pytest.raises(TopologyError):
            geometric_topology(np.zeros((2, 2)), 0.0)


class TestIntegrationWithSolver:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda n: ring_topology(n, rng=0),
            lambda n: grid_topology(n, rng=0),
            lambda n: star_topology(n, rng=0),
            lambda n: scale_free_topology(n, rng=0),
        ],
        ids=["ring", "grid", "star", "scale-free"],
    )
    def test_idde_g_runs_on_every_family(self, factory, small_instance):
        from repro.core.idde_g import IddeG
        from repro.core.instance import IDDEInstance

        topo = factory(small_instance.n_servers)
        instance = IDDEInstance(small_instance.scenario, topo)
        strategy = IddeG().solve(instance, rng=0)
        assert strategy.r_avg > 0
