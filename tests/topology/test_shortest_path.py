"""Shortest-path kernel tests: reference Dijkstra vs compiled csgraph."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.graph import build_topology
from repro.topology.shortest_path import all_pairs_path_cost, dijkstra


def path_graph(weights):
    """Dense cost matrix of a path graph with the given edge weights."""
    n = len(weights) + 1
    cost = np.full((n, n), np.inf)
    np.fill_diagonal(cost, 0.0)
    for i, w in enumerate(weights):
        cost[i, i + 1] = cost[i + 1, i] = w
    return cost


class TestDijkstra:
    def test_path_graph(self):
        cost = path_graph([1.0, 2.0, 4.0])
        d = dijkstra(cost, 0)
        assert np.allclose(d, [0.0, 1.0, 3.0, 7.0])

    def test_unreachable_is_inf(self):
        cost = np.full((3, 3), np.inf)
        np.fill_diagonal(cost, 0.0)
        cost[0, 1] = cost[1, 0] = 1.0
        d = dijkstra(cost, 0)
        assert d[1] == 1.0 and np.isinf(d[2])

    def test_picks_cheaper_indirect_route(self):
        cost = np.full((3, 3), np.inf)
        np.fill_diagonal(cost, 0.0)
        cost[0, 2] = cost[2, 0] = 10.0
        cost[0, 1] = cost[1, 0] = 1.0
        cost[1, 2] = cost[2, 1] = 1.0
        assert dijkstra(cost, 0)[2] == pytest.approx(2.0)

    def test_bad_source(self):
        with pytest.raises(TopologyError):
            dijkstra(np.zeros((2, 2)), 5)

    def test_bad_shape(self):
        with pytest.raises(TopologyError):
            dijkstra(np.zeros((2, 3)), 0)


class TestAllPairs:
    def test_matches_reference_on_random_graphs(self):
        for seed in range(5):
            topo = build_topology(15, 2.0, seed)
            cost = topo.adjacency_cost
            fast = all_pairs_path_cost(cost, method="scipy")
            ref = all_pairs_path_cost(cost, method="dijkstra-py")
            assert np.allclose(fast, ref, equal_nan=True)

    def test_symmetric(self):
        topo = build_topology(12, 1.5, 3)
        apc = all_pairs_path_cost(topo.adjacency_cost)
        assert np.allclose(apc, apc.T, equal_nan=True)

    def test_triangle_inequality(self):
        topo = build_topology(10, 3.0, 4)
        d = all_pairs_path_cost(topo.adjacency_cost)
        finite = np.isfinite(d)
        for i in range(10):
            for j in range(10):
                if not finite[i, j]:
                    continue
                via = d[i, :] + d[:, j]
                assert d[i, j] <= np.nanmin(via) + 1e-12

    def test_unknown_method(self):
        with pytest.raises(TopologyError):
            all_pairs_path_cost(np.zeros((2, 2)), method="bellman")

    def test_bad_shape(self):
        with pytest.raises(TopologyError):
            all_pairs_path_cost(np.zeros((2, 3)))
