"""Delivery latency model tests (Eq. 8 and the latency constraint)."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.latency import DeliveryLatencyModel

from ..conftest import line_topology


class TestPathCost:
    def test_capped_at_cloud(self):
        topo = line_topology(5, speed=3000.0, cloud=600.0)
        model = DeliveryLatencyModel(topo)
        assert (model.path_cost <= model.cloud_cost + 1e-15).all()

    def test_local_is_zero(self):
        model = DeliveryLatencyModel(line_topology(3))
        assert np.allclose(np.diag(model.path_cost), 0.0)

    def test_multi_hop_accumulates(self):
        topo = line_topology(4, speed=3000.0)
        model = DeliveryLatencyModel(topo)
        # 0 -> 2 is two hops at 1/3000 s/MB each.
        assert model.path_cost[0, 2] == pytest.approx(2 / 3000.0)

    def test_disconnected_falls_back_to_cloud(self):
        from repro.topology.graph import EdgeTopology

        topo = EdgeTopology(
            n=3, links=np.array([[0, 1]]), speeds=np.array([3000.0]), cloud_speed=600.0
        )
        model = DeliveryLatencyModel(topo)
        assert model.path_cost[0, 2] == pytest.approx(1 / 600.0)

    def test_unenforced_keeps_inf(self):
        from repro.topology.graph import EdgeTopology

        topo = EdgeTopology(
            n=2, links=np.empty((0, 2)), speeds=np.empty(0), cloud_speed=600.0
        )
        model = DeliveryLatencyModel(topo, enforce_latency_constraint=False)
        assert np.isinf(model.path_cost[0, 1])


class TestLatencies:
    @pytest.fixture
    def model(self):
        return DeliveryLatencyModel(line_topology(3, speed=3000.0, cloud=600.0))

    def test_transfer_latency(self, model):
        assert model.transfer_latency(60.0, 0, 1) == pytest.approx(60.0 / 3000.0)

    def test_cloud_latency(self, model):
        assert model.cloud_latency(60.0) == pytest.approx(0.1)

    def test_ms_variants(self, model):
        assert model.cloud_latency_ms(60.0) == pytest.approx(100.0)
        assert model.transfer_latency_ms(30.0, 0, 0) == 0.0

    def test_latency_matrix(self, model):
        mat = model.latency_matrix(90.0)
        assert mat.shape == (3, 3)
        assert mat[0, 1] == pytest.approx(90.0 / 3000.0)

    def test_negative_size_rejected(self, model):
        with pytest.raises(TopologyError):
            model.transfer_latency(-1.0, 0, 1)
        with pytest.raises(TopologyError):
            model.cloud_latency(-1.0)

    def test_bad_index(self, model):
        with pytest.raises(TopologyError):
            model.transfer_latency(1.0, 0, 7)
