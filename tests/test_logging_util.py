"""Logging plumbing tests."""

import logging

from repro.logging_util import configure_logging, get_logger


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core.game").name == "repro.core.game"
        assert get_logger("repro.radio").name == "repro.radio"

    def test_child_propagates_to_package_logger(self):
        child = get_logger("x.y")
        assert child.parent is not None
        assert child.name.startswith("repro.")


class TestConfigureLogging:
    def test_levels(self):
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(2).level == logging.DEBUG
        assert configure_logging(9).level == logging.DEBUG

    def test_idempotent_handlers(self):
        before = configure_logging(1)
        n = len(before.handlers)
        after = configure_logging(2)
        assert len(after.handlers) == n

    def test_debug_messages_emitted(self, caplog):
        configure_logging(2)
        with caplog.at_level(logging.DEBUG, logger="repro"):
            get_logger("test").debug("hello from test")
        assert any("hello from test" in r.message for r in caplog.records)
