"""Calibration sensitivity harness tests."""

import math

import pytest

from repro.core.instance import IDDEInstance
from repro.experiments.calibration import (
    CalibrationPoint,
    parameter_sensitivity,
    radius_sensitivity,
)


class TestCalibrationPoint:
    def test_advantages(self):
        p = CalibrationPoint(
            label="x",
            mean_covering=2.0,
            r_avg_ours=110.0,
            r_avg_baseline=100.0,
            l_avg_ours=8.0,
            l_avg_baseline=10.0,
        )
        assert p.rate_advantage_pct == pytest.approx(10.0)
        assert p.latency_advantage_pct == pytest.approx(20.0)

    def test_zero_baseline_nan(self):
        p = CalibrationPoint("x", 1.0, 1.0, 0.0, 1.0, 0.0)
        assert math.isnan(p.rate_advantage_pct)
        assert math.isnan(p.latency_advantage_pct)


class TestParameterSensitivity:
    def test_custom_builders(self):
        def build_small(seed):
            return IDDEInstance.generate(n=8, m=30, k=3, seed=seed)

        def build_bigger(seed):
            return IDDEInstance.generate(n=12, m=30, k=3, seed=seed)

        points = parameter_sensitivity(
            [("small", build_small), ("bigger", build_bigger)],
            reps=2,
            baseline="saa",
        )
        assert [p.label for p in points] == ["small", "bigger"]
        for p in points:
            assert p.mean_covering >= 1.0
            assert p.r_avg_ours > 0 and p.r_avg_baseline > 0

    def test_ours_beats_saa(self):
        points = parameter_sensitivity(
            [("d", lambda seed: IDDEInstance.generate(n=10, m=60, k=3, seed=seed))],
            reps=3,
            baseline="saa",
        )
        assert points[0].rate_advantage_pct > 0


class TestRadiusSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return radius_sensitivity(
            [(100.0, 150.0), (250.0, 350.0)],
            n=15,
            m=80,
            k=3,
            reps=2,
        )

    def test_labels_and_order(self, points):
        assert [p.label for p in points] == ["100-150 m", "250-350 m"]

    def test_overlap_grows_with_radius(self, points):
        assert points[1].mean_covering > points[0].mean_covering

    def test_small_radii_degenerate_game(self, points):
        """The documented deviation's rationale: at raw EUA radii the mean
        covering-set size collapses toward 1 and the rate advantage over a
        channel-blind baseline shrinks relative to macro-cell radii."""
        assert points[0].mean_covering < 1.6
        assert points[1].mean_covering > 1.6
