"""Sweep export tests (CSV / JSON round trips)."""

import csv

import pytest

from repro.experiments.export import load_json, sweep_to_rows, write_csv, write_json
from repro.experiments.settings import SweepSettings
from repro.experiments.sweep import run_sweep
from repro.parallel import ParallelConfig


@pytest.fixture(scope="module")
def result():
    settings = SweepSettings("exp", "n", (6, 9))
    return run_sweep(
        settings,
        reps=2,
        seed=0,
        ip_time_budget_s=0.2,
        solver_names=("IDDE-G", "CDP"),
        parallel=ParallelConfig(n_workers=1),
    )


class TestRows:
    def test_row_count(self, result):
        rows = sweep_to_rows(result)
        # 2 values × 2 solvers × 3 metrics.
        assert len(rows) == 12

    def test_row_contents(self, result):
        rows = sweep_to_rows(result)
        first = rows[0]
        assert first["set"] == "exp"
        assert first["varying"] == "n"
        assert first["solver"] in ("IDDE-G", "CDP")
        assert first["reps"] == 2
        assert first["mean"] >= 0


class TestCsv:
    def test_round_trip(self, result, tmp_path):
        path = write_csv(result, tmp_path / "sweep.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 12
        assert {r["metric"] for r in rows} == {"r_avg", "l_avg_ms", "time_s"}

    def test_creates_parent_dirs(self, result, tmp_path):
        path = write_csv(result, tmp_path / "deep" / "nested" / "sweep.csv")
        assert path.exists()


class TestJson:
    def test_round_trip(self, result, tmp_path):
        path = write_json(result, tmp_path / "sweep.json")
        doc = load_json(path)
        assert doc["set"] == "exp"
        assert doc["values"] == [6, 9]
        assert doc["solvers"] == ["IDDE-G", "CDP"]
        assert len(doc["rows"]) == 12

    def test_values_match_result(self, result, tmp_path):
        path = write_json(result, tmp_path / "sweep.json")
        doc = load_json(path)
        for row in doc["rows"]:
            if row["solver"] == "IDDE-G" and row["metric"] == "r_avg":
                point = [p for p in result.points if p.value == row["value"]][0]
                assert row["mean"] == pytest.approx(point.mean["IDDE-G"]["r_avg"])
