"""Sweep driver and aggregation tests."""

import math

import pytest

from repro.experiments.settings import SweepSettings
from repro.experiments.sweep import run_sweep
from repro.parallel import ParallelConfig

TINY = SweepSettings("tiny", "n", (6, 9))
FAST_SOLVERS = ("IDDE-G", "CDP")


def tiny_sweep(**kwargs):
    defaults = dict(
        reps=2,
        seed=0,
        ip_time_budget_s=0.2,
        solver_names=FAST_SOLVERS,
        parallel=ParallelConfig(n_workers=1),
    )
    defaults.update(kwargs)
    return run_sweep(TINY, **defaults)


class _SmallGrid:
    pass


class TestRunSweep:
    def test_points_in_grid_order(self):
        result = tiny_sweep()
        assert result.values == [6, 9]
        assert all(p.reps == 2 for p in result.points)

    def test_mean_and_std_populated(self):
        result = tiny_sweep()
        for point in result.points:
            for name in FAST_SOLVERS:
                assert point.mean[name]["r_avg"] > 0
                assert point.std[name]["r_avg"] >= 0

    def test_series_extraction(self):
        result = tiny_sweep()
        series = result.series("IDDE-G", "r_avg")
        assert len(series) == 2
        assert all(x > 0 for x in series)

    def test_average(self):
        result = tiny_sweep()
        series = result.series("CDP", "l_avg_ms")
        assert result.average("CDP", "l_avg_ms") == pytest.approx(
            sum(series) / len(series)
        )

    def test_deterministic_across_runs(self):
        a = tiny_sweep()
        b = tiny_sweep()
        assert a.series("IDDE-G", "r_avg") == b.series("IDDE-G", "r_avg")

    def test_seed_changes_trials(self):
        a = tiny_sweep(seed=0)
        b = tiny_sweep(seed=1)
        assert a.series("IDDE-G", "r_avg") != b.series("IDDE-G", "r_avg")

    def test_parallel_matches_serial(self):
        serial = tiny_sweep()
        par = tiny_sweep(
            parallel=ParallelConfig(n_workers=2, min_parallel_items=1)
        )
        assert serial.series("IDDE-G", "r_avg") == pytest.approx(
            par.series("IDDE-G", "r_avg")
        )


class TestAdvantage:
    def test_rate_advantage_sign(self):
        result = tiny_sweep(reps=3)
        adv = result.advantage_pct("r_avg")
        # IDDE-G should beat CDP on rate on average.
        assert adv["CDP"] > 0

    def test_latency_advantage_orientation(self):
        result = tiny_sweep(reps=3)
        adv = result.advantage_pct("l_avg_ms")
        # Positive = IDDE-G's latency is lower than CDP's.
        ours = result.average("IDDE-G", "l_avg_ms")
        theirs = result.average("CDP", "l_avg_ms")
        expected = 100.0 * (theirs - ours) / theirs
        assert adv["CDP"] == pytest.approx(expected)

    def test_self_excluded(self):
        result = tiny_sweep()
        assert "IDDE-G" not in result.advantage_pct("r_avg")
