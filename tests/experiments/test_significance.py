"""Paired statistics tests."""

import numpy as np
import pytest

from repro.experiments.significance import (
    bootstrap_ci,
    compare,
    paired_differences,
    win_rate,
)


class TestPairedDifferences:
    def test_basic(self):
        d = paired_differences([3.0, 5.0], [1.0, 2.0])
        assert d.tolist() == [2.0, 3.0]

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            paired_differences([1.0], [1.0, 2.0])


class TestBootstrapCi:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for trial in range(30):
            sample = rng.normal(2.0, 1.0, size=40)
            lo, hi = bootstrap_ci(sample, rng=trial)
            if lo <= 2.0 <= hi:
                hits += 1
        assert hits >= 25  # ~95% coverage

    def test_deterministic_given_seed(self):
        sample = np.arange(20, dtype=float)
        assert bootstrap_ci(sample, rng=3) == bootstrap_ci(sample, rng=3)

    def test_tightens_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, 10), rng=0)
        big = bootstrap_ci(rng.normal(0, 1, 1000), rng=0)
        assert (big[1] - big[0]) < (small[1] - small[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)


class TestWinRate:
    def test_all_wins(self):
        assert win_rate([2, 3, 4], [1, 1, 1]) == 1.0

    def test_lower_better(self):
        assert win_rate([1, 1], [5, 5], higher_better=False) == 1.0

    def test_ties_half(self):
        assert win_rate([1, 2], [1, 1]) == pytest.approx(0.75)


class TestCompare:
    def test_clear_difference_significant(self):
        a = np.full(30, 10.0) + np.random.default_rng(0).normal(0, 0.1, 30)
        b = np.full(30, 5.0) + np.random.default_rng(1).normal(0, 0.1, 30)
        c = compare(a, b)
        assert c.significant
        assert c.mean_diff == pytest.approx(5.0, abs=0.2)
        assert c.win_rate == 1.0
        assert c.n == 30

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 50)
        noise = rng.normal(0, 1, 50)
        c = compare(x, x + noise * 0.0)
        assert not c.significant
        assert c.mean_diff == 0.0

    def test_render_significance_markdown(self):
        from repro.experiments.report import render_significance_markdown
        from repro.experiments.settings import SweepSettings
        from repro.experiments.sweep import run_sweep
        from repro.parallel import ParallelConfig

        result = run_sweep(
            SweepSettings("sig", "m", (20, 40)),
            reps=3,
            seed=0,
            ip_time_budget_s=0.2,
            solver_names=("IDDE-G", "SAA"),
            parallel=ParallelConfig(n_workers=1),
            keep_raw=True,
        )
        md = render_significance_markdown(result, "r_avg")
        assert "SAA" in md and "win rate" in md

    def test_render_requires_raw(self):
        from repro.experiments.report import render_significance_markdown
        from repro.experiments.settings import SweepSettings
        from repro.experiments.sweep import run_sweep
        from repro.parallel import ParallelConfig

        result = run_sweep(
            SweepSettings("sig2", "m", (20,)),
            reps=2,
            seed=0,
            ip_time_budget_s=0.2,
            solver_names=("IDDE-G", "SAA"),
            parallel=ParallelConfig(n_workers=1),
        )
        with pytest.raises(ValueError):
            render_significance_markdown(result, "r_avg")

    def test_on_real_sweep_data(self):
        """IDDE-G vs SAA rates across paired trials: significant."""
        from repro.experiments.runner import TrialSpec, run_trial

        a, b = [], []
        for seed in range(5):
            r = run_trial(
                TrialSpec(
                    n=10, m=40, k=3, seed=seed, solver_names=("IDDE-G", "SAA")
                )
            )
            a.append(r.metrics["IDDE-G"]["r_avg"])
            b.append(r.metrics["SAA"]["r_avg"])
        c = compare(a, b)
        assert c.mean_diff > 0
        assert c.win_rate > 0.8
