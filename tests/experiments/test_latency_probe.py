"""Fig. 1 latency probe tests."""

import numpy as np
import pytest

from repro.experiments.latency_probe import DEFAULT_TARGETS, run_latency_probe


class TestProbe:
    def test_dimensions(self):
        probe = run_latency_probe(0, days=7)
        assert probe.hours == 168
        assert probe.samples_ms.shape == (4, 168)

    def test_deterministic(self):
        a = run_latency_probe(3)
        b = run_latency_probe(3)
        assert np.allclose(a.samples_ms, b.samples_ms)

    def test_edge_vs_cloud_gap(self):
        """The figure's claim: edge RTT is an order of magnitude below
        intercontinental cloud RTT."""
        probe = run_latency_probe(0)
        adv = probe.edge_advantage()
        assert adv["Singapore"] > 5
        assert adv["London"] > 10
        assert adv["Frankfurt"] > 10

    def test_means_near_calibration(self):
        probe = run_latency_probe(1, days=28)
        means = probe.mean_ms()
        for target, (base, _) in DEFAULT_TARGETS.items():
            assert means[target] == pytest.approx(base, rel=0.25)

    def test_percentiles_ordered(self):
        probe = run_latency_probe(2)
        p50 = probe.percentile_ms(50)
        p95 = probe.percentile_ms(95)
        for t in probe.targets:
            assert p95[t] >= p50[t]

    def test_all_samples_positive(self):
        probe = run_latency_probe(4)
        assert (probe.samples_ms > 0).all()

    def test_custom_targets(self):
        probe = run_latency_probe(0, targets={"A": (10.0, 0.1), "B": (20.0, 0.1)})
        assert probe.targets == ("A", "B")
        assert probe.edge_advantage() == {}
