"""Markdown report emitter tests."""

import pytest

from repro.experiments.report import (
    render_advantage_markdown,
    render_point_row,
    render_sweep_markdown,
    render_timing_markdown,
)
from repro.experiments.settings import SweepSettings
from repro.experiments.sweep import run_sweep
from repro.parallel import ParallelConfig


@pytest.fixture(scope="module")
def result():
    settings = SweepSettings("mini", "n", (6, 9))
    return run_sweep(
        settings,
        reps=2,
        seed=0,
        ip_time_budget_s=0.2,
        solver_names=("IDDE-G", "CDP"),
        parallel=ParallelConfig(n_workers=1),
    )


class TestRenderers:
    def test_point_row(self, result):
        row = render_point_row(result, "r_avg", 0)
        assert row.startswith("| 6 |")
        assert row.count("|") == 4

    def test_sweep_table(self, result):
        md = render_sweep_markdown(result, "r_avg")
        assert "R_avg (MB/s)" in md
        assert "| n | IDDE-G | CDP |" in md
        assert md.count("\n") >= 5

    def test_unknown_metric_label_fallback(self, result):
        md = render_sweep_markdown(result, "time_s")
        assert "time (s)" in md

    def test_advantage_table(self, result):
        md = render_advantage_markdown(result)
        assert "| CDP |" in md
        assert "IDDE-G" in md

    def test_timing_table(self, result):
        md = render_timing_markdown([result])
        assert "mini" in md
        assert "Computation time" in md
