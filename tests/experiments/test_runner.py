"""Trial runner tests."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    SOLVER_NAMES,
    TrialSpec,
    build_instance,
    build_solver,
    run_trial,
)


FAST = TrialSpec(
    n=8, m=25, k=3, density=1.5, seed=0, ip_time_budget_s=0.2
)


class TestTrialSpec:
    def test_defaults_match_table2(self):
        spec = TrialSpec()
        assert (spec.n, spec.m, spec.k, spec.density) == (30, 200, 5, 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"m": -1},
            {"k": 0},
            {"density": -0.5},
            {"solver_names": ("Oracle",)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            TrialSpec(**kwargs)

    def test_picklable(self):
        import pickle

        assert pickle.loads(pickle.dumps(FAST)) == FAST


class TestBuilders:
    def test_build_instance_deterministic(self):
        a = build_instance(FAST)
        b = build_instance(FAST)
        import numpy as np

        assert np.allclose(a.scenario.server_xy, b.scenario.server_xy)

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    def test_build_each_solver(self, name):
        solver = build_solver(name, FAST)
        assert solver.name == name

    def test_ip_budget_forwarded(self):
        solver = build_solver("IDDE-IP", FAST)
        assert solver.time_budget_s == 0.2

    def test_unknown_solver(self):
        with pytest.raises(ExperimentError):
            build_solver("Oracle", FAST)


class TestRunTrial:
    def test_all_metrics_present(self):
        result = run_trial(FAST)
        assert set(result.metrics) == set(SOLVER_NAMES)
        for name in SOLVER_NAMES:
            m = result.metrics[name]
            assert m["r_avg"] > 0
            assert m["l_avg_ms"] >= 0
            assert m["time_s"] > 0

    def test_metric_accessor(self):
        result = run_trial(FAST)
        assert result.metric("IDDE-G", "r_avg") == result.metrics["IDDE-G"]["r_avg"]

    def test_subset_of_solvers(self):
        spec = TrialSpec(
            n=8, m=25, k=3, seed=0, solver_names=("IDDE-G", "CDP")
        )
        result = run_trial(spec)
        assert set(result.metrics) == {"IDDE-G", "CDP"}

    def test_deterministic_heuristics(self):
        spec = TrialSpec(n=8, m=25, k=3, seed=3, solver_names=("IDDE-G", "CDP", "DUP-G"))
        a = run_trial(spec)
        b = run_trial(spec)
        for name in ("IDDE-G", "CDP", "DUP-G"):
            assert a.metrics[name]["r_avg"] == b.metrics[name]["r_avg"]
            assert a.metrics[name]["l_avg_ms"] == b.metrics[name]["l_avg_ms"]
