"""Table 2 parameter grid tests."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.settings import ALL_SETS, DEFAULTS, SET1, SET2, SET3, SET4, SweepSettings


class TestTable2:
    def test_defaults(self):
        assert dict(DEFAULTS) == {"n": 30, "m": 200, "k": 5, "density": 1.0}

    def test_set1(self):
        assert SET1.varying == "n"
        assert SET1.values == (20, 25, 30, 35, 40, 45, 50)

    def test_set2(self):
        assert SET2.varying == "m"
        assert SET2.values == (50, 100, 150, 200, 250, 300, 350)

    def test_set3(self):
        assert SET3.varying == "k"
        assert SET3.values == (2, 3, 4, 5, 6, 7, 8)

    def test_set4(self):
        assert SET4.varying == "density"
        assert SET4.values == (1.0, 1.4, 1.8, 2.2, 2.6, 3.0)

    def test_all_sets_in_order(self):
        assert [s.name for s in ALL_SETS] == ["Set #1", "Set #2", "Set #3", "Set #4"]


class TestParamsFor:
    def test_varies_one_fixes_rest(self):
        p = SET1.params_for(40)
        assert p == {"n": 40, "m": 200, "k": 5, "density": 1.0}

    def test_off_grid_rejected(self):
        with pytest.raises(ExperimentError):
            SET1.params_for(33)

    def test_bad_varying(self):
        with pytest.raises(ExperimentError):
            SweepSettings("bad", "channels", (1, 2))

    def test_empty_grid(self):
        with pytest.raises(ExperimentError):
            SweepSettings("bad", "n", ())
