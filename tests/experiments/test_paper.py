"""Reproduce-all orchestrator tests (scaled down via monkeypatching)."""

import pytest

from repro.experiments import paper as paper_mod
from repro.experiments.paper import reproduce_all
from repro.experiments.settings import SweepSettings


@pytest.fixture
def tiny_sets(monkeypatch):
    sets = (
        SweepSettings("Set #1", "n", (6,)),
        SweepSettings("Set #2", "m", (15,)),
        SweepSettings("Set #3", "k", (2,)),
        SweepSettings("Set #4", "density", (1.0,)),
    )
    monkeypatch.setattr(paper_mod, "ALL_SETS", sets)
    return sets


class TestReproduceAll:
    def test_runs_all_sets(self, tiny_sets):
        report = reproduce_all(reps=1, seed=0, ip_time_budget_s=0.2, workers=1)
        assert len(report.sweeps) == 4
        assert "# Reproduction report" in report.markdown
        assert "Fig. 1" in report.markdown
        for s in tiny_sets:
            assert s.name in report.markdown

    def test_artifacts_written(self, tiny_sets, tmp_path):
        report = reproduce_all(
            reps=1,
            seed=0,
            ip_time_budget_s=0.2,
            workers=1,
            output_dir=tmp_path / "out",
        )
        names = {p.name for p in report.artifacts}
        assert "report.md" in names
        assert "Set_1.csv" in names
        assert "Set_1.json" in names
        assert all(p.exists() for p in report.artifacts)

    def test_shapes_accessor(self, tiny_sets):
        report = reproduce_all(reps=1, seed=0, ip_time_budget_s=0.2, workers=1)
        # At a single point and rep the orderings may be noisy; the
        # accessor must return a bool either way.
        assert report.all_shapes_hold() in (True, False)
