"""Paper reference data and shape-check tests."""

import pytest

from repro.experiments.figures import PAPER, series, shape_checks
from repro.experiments.settings import SweepSettings
from repro.experiments.sweep import run_sweep
from repro.parallel import ParallelConfig


class TestPaperData:
    def test_overall_advantages_present(self):
        adv = PAPER["overall_advantage_pct"]
        assert adv["r_avg"]["SAA"] == 53.27
        assert adv["l_avg_ms"]["DUP-G"] == 85.04

    def test_set2_endpoints(self):
        assert PAPER["set2_rate_endpoints"]["IDDE-G"] == (196.71, 68.48)

    def test_set3_latency(self):
        assert PAPER["set3_latency_average"]["IDDE-G"] == 5.22

    def test_timing(self):
        t = PAPER["computation_time_s"]
        assert t["IDDE-IP"] > t["SAA"] > t["IDDE-G"] > t["CDP"]

    def test_immutability(self):
        with pytest.raises(TypeError):
            PAPER["computation_time_s"]["IDDE-G"] = 0.0


class TestSeriesAndShapes:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        settings = SweepSettings("mini", "n", (8, 12))
        return run_sweep(
            settings,
            reps=3,
            seed=0,
            ip_time_budget_s=0.25,
            parallel=ParallelConfig(n_workers=1),
        )

    def test_series_shape(self, small_sweep):
        s = series(small_sweep, "r_avg")
        assert set(s) == set(small_sweep.solver_names)
        assert all(len(v) == 2 for v in s.values())

    def test_shape_checks_keys(self, small_sweep):
        checks = shape_checks(small_sweep)
        assert set(checks) == {
            "idde_g_best_rate",
            "idde_g_best_latency",
            "ip_slowest",
        }

    def test_ip_slowest_holds(self, small_sweep):
        assert shape_checks(small_sweep)["ip_slowest"]

    def test_idde_g_best_rate_holds(self, small_sweep):
        assert shape_checks(small_sweep)["idde_g_best_rate"]
