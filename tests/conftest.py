"""Shared fixtures: hand-built tiny scenarios and generated instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RadioConfig, TopologyConfig
from repro.core.instance import IDDEInstance
from repro.topology.graph import EdgeTopology, build_topology
from repro.types import Scenario


def make_scenario(
    server_xy,
    user_xy,
    *,
    radius=300.0,
    storage=200.0,
    channels=2,
    power=2.0,
    rmax=200.0,
    sizes=(30.0, 60.0),
    requests=None,
) -> Scenario:
    """Build a Scenario from positions with broadcastable scalar attributes."""
    server_xy = np.asarray(server_xy, dtype=float).reshape(-1, 2)
    user_xy = np.asarray(user_xy, dtype=float).reshape(-1, 2)
    n, m = len(server_xy), len(user_xy)
    sizes = np.asarray(sizes, dtype=float)
    k = len(sizes)
    if requests is None:
        requests = np.zeros((m, k), dtype=bool)
        for j in range(m):
            requests[j, j % k] = True
    return Scenario(
        server_xy=server_xy,
        radius=np.broadcast_to(np.asarray(radius, dtype=float), (n,)),
        storage=np.broadcast_to(np.asarray(storage, dtype=float), (n,)),
        channels=np.broadcast_to(np.asarray(channels, dtype=np.int64), (n,)),
        user_xy=user_xy,
        power=np.broadcast_to(np.asarray(power, dtype=float), (m,)),
        rmax=np.broadcast_to(np.asarray(rmax, dtype=float), (m,)),
        sizes=sizes,
        requests=np.asarray(requests, dtype=bool),
    )


def make_instance(scenario: Scenario, *, density: float = 2.0, seed: int = 0) -> IDDEInstance:
    """Wrap a scenario into an instance with a random topology."""
    topo = build_topology(scenario.n_servers, density, seed, TopologyConfig())
    return IDDEInstance(scenario, topo, RadioConfig())


def line_topology(n: int, speed: float = 3000.0, cloud: float = 600.0) -> EdgeTopology:
    """A path graph 0-1-2-...-(n-1) with uniform link speed."""
    links = np.column_stack([np.arange(n - 1), np.arange(1, n)])
    speeds = np.full(n - 1, speed)
    return EdgeTopology(n=n, links=links, speeds=speeds, cloud_speed=cloud)


@pytest.fixture
def tiny_scenario() -> Scenario:
    """3 servers / 6 users / 2 data items; every server covers every user."""
    server_xy = [[0.0, 0.0], [200.0, 0.0], [100.0, 150.0]]
    user_xy = [
        [50.0, 20.0],
        [150.0, 30.0],
        [100.0, 80.0],
        [60.0, 100.0],
        [140.0, 90.0],
        [100.0, 10.0],
    ]
    return make_scenario(server_xy, user_xy, radius=400.0)


@pytest.fixture
def tiny_instance(tiny_scenario) -> IDDEInstance:
    return make_instance(tiny_scenario, density=2.0, seed=0)


@pytest.fixture
def line_instance() -> IDDEInstance:
    """4 servers on a line topology, 8 users, 3 items; disjoint coverage."""
    server_xy = [[0.0, 0.0], [1000.0, 0.0], [2000.0, 0.0], [3000.0, 0.0]]
    user_xy = [
        [10.0, 20.0],
        [30.0, -40.0],
        [1010.0, 10.0],
        [990.0, -30.0],
        [2020.0, 5.0],
        [1985.0, 25.0],
        [3010.0, -10.0],
        [2990.0, 30.0],
    ]
    scenario = make_scenario(
        server_xy, user_xy, radius=150.0, sizes=(30.0, 60.0, 90.0), storage=100.0
    )
    topo = line_topology(4)
    return IDDEInstance(scenario, topo, RadioConfig())


@pytest.fixture(scope="session")
def small_instance() -> IDDEInstance:
    """A generated instance small enough for fast solver runs."""
    return IDDEInstance.generate(n=8, m=30, k=4, density=1.5, seed=1)


@pytest.fixture(scope="session")
def medium_instance() -> IDDEInstance:
    """A generated instance at a fifth of paper scale."""
    return IDDEInstance.generate(n=15, m=60, k=5, density=1.2, seed=2)
