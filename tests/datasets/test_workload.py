"""Workload generation tests."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.datasets.workload import (
    draw_data_sizes,
    draw_powers,
    draw_rate_caps,
    draw_storage,
    request_matrix,
    zipf_weights,
)
from repro.errors import ScenarioError


class TestZipf:
    def test_normalised(self):
        w = zipf_weights(10, 0.8)
        assert w.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(8, 0.8)
        assert (np.diff(w) < 0).all()

    def test_uniform_at_zero_exponent(self):
        w = zipf_weights(5, 0.0)
        assert np.allclose(w, 0.2)

    def test_rejects_empty(self):
        with pytest.raises(ScenarioError):
            zipf_weights(0, 1.0)


class TestRequestMatrix:
    def test_shape_and_per_user_count(self):
        zeta = request_matrix(20, 6, np.random.default_rng(0))
        assert zeta.shape == (20, 6)
        assert (zeta.sum(axis=1) == 1).all()

    def test_multiple_requests_distinct(self):
        cfg = WorkloadConfig(requests_per_user=3)
        zeta = request_matrix(15, 6, np.random.default_rng(1), cfg)
        assert (zeta.sum(axis=1) == 3).all()

    def test_requests_capped_at_catalogue(self):
        cfg = WorkloadConfig(requests_per_user=10)
        zeta = request_matrix(5, 3, np.random.default_rng(2), cfg)
        assert (zeta.sum(axis=1) == 3).all()

    def test_popularity_skew(self):
        cfg = WorkloadConfig(zipf_exponent=1.5)
        zeta = request_matrix(2000, 5, np.random.default_rng(3), cfg)
        counts = zeta.sum(axis=0)
        assert counts[0] > counts[-1] * 2

    def test_zero_users(self):
        zeta = request_matrix(0, 3, np.random.default_rng(4))
        assert zeta.shape == (0, 3)

    def test_rejects_zero_items(self):
        with pytest.raises(ScenarioError):
            request_matrix(3, 0, np.random.default_rng(5))

    def test_deterministic(self):
        a = request_matrix(10, 4, np.random.default_rng(6))
        b = request_matrix(10, 4, np.random.default_rng(6))
        assert np.array_equal(a, b)


class TestDraws:
    def test_data_sizes_from_menu(self):
        sizes = draw_data_sizes(200, np.random.default_rng(0))
        assert set(np.unique(sizes)) <= {30.0, 60.0, 90.0}

    def test_data_sizes_rejects_zero(self):
        with pytest.raises(ScenarioError):
            draw_data_sizes(0, np.random.default_rng(0))

    def test_storage_in_range(self):
        a = draw_storage(500, np.random.default_rng(1))
        assert (a >= 30.0).all() and (a <= 300.0).all()

    def test_storage_rejects_zero_servers(self):
        with pytest.raises(ScenarioError):
            draw_storage(0, np.random.default_rng(1))

    def test_powers_in_range(self):
        p = draw_powers(500, np.random.default_rng(2))
        assert (p >= 1.0).all() and (p <= 5.0).all()

    def test_rate_caps_in_range(self):
        r = draw_rate_caps(500, np.random.default_rng(3))
        cfg = WorkloadConfig()
        assert (r >= cfg.rmax_range[0]).all() and (r <= cfg.rmax_range[1]).all()

    def test_zero_users_ok_for_powers(self):
        assert draw_powers(0, np.random.default_rng(4)).shape == (0,)
