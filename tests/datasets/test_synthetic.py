"""Server/user placement generator tests."""

import numpy as np
import pytest

from repro.datasets.synthetic import place_servers, place_users
from repro.errors import ScenarioError
from repro.geometry import Region, coverage_matrix

REGION = Region(0, 0, 2000, 1500)


class TestPlaceServers:
    def test_grid_placement(self):
        xy, radii = place_servers(REGION, 40, np.random.default_rng(0))
        assert xy.shape == (40, 2)
        assert REGION.contains(xy).all()
        assert (radii >= 100.0).all() and (radii <= 150.0).all()

    def test_uniform_placement(self):
        xy, _ = place_servers(REGION, 40, np.random.default_rng(1), placement="uniform")
        assert REGION.contains(xy).all()

    def test_unknown_placement(self):
        with pytest.raises(ScenarioError):
            place_servers(REGION, 5, np.random.default_rng(0), placement="ring")

    def test_custom_radius_range(self):
        _, radii = place_servers(
            REGION, 10, np.random.default_rng(2), radius_range=(200.0, 200.0)
        )
        assert np.allclose(radii, 200.0)

    def test_bad_radius_range(self):
        with pytest.raises(ScenarioError):
            place_servers(REGION, 5, np.random.default_rng(0), radius_range=(0.0, 10.0))

    def test_zero_servers(self):
        with pytest.raises(ScenarioError):
            place_servers(REGION, 0, np.random.default_rng(0))


class TestPlaceUsers:
    def test_covered(self):
        xy, radii = place_servers(REGION, 20, np.random.default_rng(3))
        users = place_users(xy, radii, 200, np.random.default_rng(4))
        cov = coverage_matrix(xy, radii, users)
        assert cov.any(axis=0).all()

    def test_zero_users(self):
        xy, radii = place_servers(REGION, 3, np.random.default_rng(5))
        users = place_users(xy, radii, 0, np.random.default_rng(6))
        assert users.shape == (0, 2)

    def test_negative_raises(self):
        xy, radii = place_servers(REGION, 3, np.random.default_rng(7))
        with pytest.raises(ScenarioError):
            place_users(xy, radii, -1, np.random.default_rng(8))
