"""EUA pool and scenario-sampling tests."""

import numpy as np
import pytest

from repro.datasets.eua import EuaPool, load_eua_csv, sample_scenario, synthetic_eua
from repro.datasets.melbourne import CBD_REGION, EUA_SERVER_COUNT, EUA_USER_COUNT
from repro.errors import DatasetError, ScenarioError
from repro.geometry import coverage_matrix


class TestSyntheticEua:
    def test_pool_dimensions(self):
        pool = synthetic_eua(0)
        assert pool.n_servers == EUA_SERVER_COUNT
        assert pool.n_users == EUA_USER_COUNT

    def test_deterministic(self):
        a, b = synthetic_eua(5), synthetic_eua(5)
        assert np.allclose(a.server_xy, b.server_xy)
        assert np.allclose(a.user_xy, b.user_xy)

    def test_seed_changes_pool(self):
        assert not np.allclose(synthetic_eua(1).server_xy, synthetic_eua(2).server_xy)

    def test_servers_in_region(self):
        pool = synthetic_eua(3)
        assert CBD_REGION.contains(pool.server_xy).all()

    def test_every_pool_user_covered(self):
        pool = synthetic_eua(4)
        cov = coverage_matrix(pool.server_xy, pool.radius, pool.user_xy)
        assert cov.any(axis=0).all()

    def test_custom_size(self):
        pool = synthetic_eua(0, n_servers=10, n_users=50)
        assert pool.n_servers == 10 and pool.n_users == 50


class TestEuaPoolValidation:
    def test_bad_radius(self):
        with pytest.raises(DatasetError):
            EuaPool(
                server_xy=np.zeros((2, 2)),
                radius=np.array([1.0, 0.0]),
                user_xy=np.zeros((1, 2)),
            )

    def test_bad_shapes(self):
        with pytest.raises(DatasetError):
            EuaPool(
                server_xy=np.zeros((2, 3)),
                radius=np.ones(2),
                user_xy=np.zeros((1, 2)),
            )


class TestCsvLoader:
    def test_round_trip(self, tmp_path):
        servers = tmp_path / "servers.csv"
        servers.write_text(
            "SITE_ID,LATITUDE,LONGITUDE\n1,-37.8136,144.9631\n2,-37.8150,144.9700\n"
        )
        users = tmp_path / "users.csv"
        users.write_text("Latitude,Longitude\n-37.8140,144.9650\n")
        pool = load_eua_csv(servers, users)
        assert pool.n_servers == 2 and pool.n_users == 1
        # ~600 m between the two sites.
        d = np.linalg.norm(pool.server_xy[0] - pool.server_xy[1])
        assert 500 < d < 700

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_eua_csv(tmp_path / "nope.csv", tmp_path / "nope2.csv")

    def test_missing_columns(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("x,y\n1,2\n")
        with pytest.raises(DatasetError):
            load_eua_csv(bad, bad)

    def test_bad_row(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("LATITUDE,LONGITUDE\nfoo,bar\n")
        with pytest.raises(DatasetError):
            load_eua_csv(bad, bad)


class TestSampleScenario:
    @pytest.fixture(scope="class")
    def pool(self):
        return synthetic_eua(0)

    def test_dimensions(self, pool):
        sc = sample_scenario(pool, 20, 100, 5, np.random.default_rng(0))
        assert sc.n_servers == 20 and sc.n_users == 100 and sc.n_data == 5

    def test_every_user_covered(self, pool):
        sc = sample_scenario(pool, 25, 150, 4, np.random.default_rng(1))
        assert sc.covered_users.all()

    def test_deterministic_given_rng(self, pool):
        a = sample_scenario(pool, 10, 30, 3, np.random.default_rng(2))
        b = sample_scenario(pool, 10, 30, 3, np.random.default_rng(2))
        assert np.allclose(a.server_xy, b.server_xy)
        assert np.array_equal(a.requests, b.requests)

    def test_paper_ranges(self, pool):
        sc = sample_scenario(pool, 30, 200, 5, np.random.default_rng(3))
        assert set(np.unique(sc.sizes)) <= {30.0, 60.0, 90.0}
        assert (sc.storage >= 30.0).all() and (sc.storage <= 300.0).all()
        assert (sc.power >= 1.0).all() and (sc.power <= 5.0).all()
        assert (sc.channels == 3).all()

    def test_rejects_oversized_n(self, pool):
        with pytest.raises(ScenarioError):
            sample_scenario(pool, pool.n_servers + 1, 10, 2, np.random.default_rng(0))

    def test_rejects_bad_k(self, pool):
        with pytest.raises(ScenarioError):
            sample_scenario(pool, 5, 10, 0, np.random.default_rng(0))

    def test_topup_when_pool_small(self):
        pool = synthetic_eua(0, n_servers=5, n_users=10)
        sc = sample_scenario(pool, 3, 50, 2, np.random.default_rng(4))
        assert sc.n_users == 50
        assert sc.covered_users.all()
