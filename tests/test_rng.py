"""Deterministic RNG plumbing tests."""

import numpy as np
import pytest

from repro.rng import ensure_rng, key_to_int, seeds_for, spawn_rng, split_rngs


class TestSpawn:
    def test_same_keys_same_stream(self):
        a = spawn_rng(42, "topology", 3)
        b = spawn_rng(42, "topology", 3)
        assert np.array_equal(a.random(8), b.random(8))

    def test_different_keys_differ(self):
        a = spawn_rng(42, "topology", 3).random(8)
        b = spawn_rng(42, "topology", 4).random(8)
        assert not np.array_equal(a, b)

    def test_different_seed_differs(self):
        a = spawn_rng(1, "x").random(8)
        b = spawn_rng(2, "x").random(8)
        assert not np.array_equal(a, b)

    def test_string_vs_int_keys_are_distinct_namespaces(self):
        a = spawn_rng(7, "5").random(4)
        b = spawn_rng(7, 5).random(4)
        # Not required to differ by the API contract, but they do with the
        # CRC32 mapping, and the library relies on it for stream hygiene.
        assert not np.array_equal(a, b)


class TestKeyToInt:
    def test_int_identity_mod_32(self):
        assert key_to_int(5) == 5
        assert key_to_int(2**40 + 7) == (2**40 + 7) & 0xFFFFFFFF

    def test_deterministic_for_strings(self):
        assert key_to_int("sweep") == key_to_int("sweep")

    def test_tuple_keys(self):
        assert key_to_int((1, "a")) == key_to_int((1, "a"))
        assert key_to_int((1, "a")) != key_to_int((1, "b"))

    def test_non_negative(self):
        for key in (-17, "x", (1, 2), 3.5):
            assert key_to_int(key) >= 0

    def test_negative_ints_do_not_collide_with_masked_positives(self):
        # -1 & 0xFFFFFFFF == 2**32 - 1: the tag bit keeps them apart.
        assert key_to_int(-1) != key_to_int(2**32 - 1)
        assert key_to_int(-17) != key_to_int((-17) & 0xFFFFFFFF)

    def test_negative_ints_deterministic_and_spawnable(self):
        assert key_to_int(-5) == key_to_int(-5)
        a = spawn_rng(3, -1).random(4)
        b = spawn_rng(3, -1).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, spawn_rng(3, 2**32 - 1).random(4))

    def test_bool_keys_normalised_and_distinct_from_ints(self):
        assert key_to_int(True) == key_to_int(np.True_)
        assert key_to_int(False) == key_to_int(np.False_)
        assert key_to_int(True) != key_to_int(1)
        assert key_to_int(False) != key_to_int(0)
        assert key_to_int(True) != key_to_int(False)


class TestEnsure:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_seed(self):
        a = ensure_rng(9).random(4)
        b = ensure_rng(9).random(4)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSplit:
    def test_split_count(self):
        children = split_rngs(np.random.default_rng(3), 5)
        assert len(children) == 5

    def test_children_independent(self):
        a, b = split_rngs(np.random.default_rng(3), 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_split_deterministic(self):
        a1, _ = split_rngs(np.random.default_rng(3), 2)
        a2, _ = split_rngs(np.random.default_rng(3), 2)
        assert np.array_equal(a1.random(8), a2.random(8))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            split_rngs(np.random.default_rng(0), -1)

    def test_seeds_for_labels(self):
        d = seeds_for(1, ["a", "b"])
        assert set(d) == {"a", "b"}
        assert not np.array_equal(d["a"].random(4), d["b"].random(4))
