"""CLI tests (argument parsing and end-to-end subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert (args.n, args.m, args.k, args.density) == (30, 200, 5, 1.0)
        assert args.solver == "all"

    def test_sweep_set_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "9"])

    def test_fig1_args(self):
        args = build_parser().parse_args(["fig1", "--days", "3"])
        assert args.days == 3

    def test_shards_accepts_auto_and_counts(self):
        assert build_parser().parse_args(["solve"]).shards is None
        assert build_parser().parse_args(["solve", "--shards", "auto"]).shards == "auto"
        assert build_parser().parse_args(["solve", "--shards", "4"]).shards == 4
        assert build_parser().parse_args(["sweep", "1", "--shards", "2"]).shards == 2

    def test_shards_rejects_garbage(self):
        for bad in ("0", "-1", "many"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["solve", "--shards", bad])

    def test_bench_shard_parity_flag(self):
        args = build_parser().parse_args(["bench", "--verify-shard-parity"])
        assert args.verify_shard_parity


class TestCommands:
    def test_solve_single(self, capsys):
        rc = main(["solve", "--n", "6", "--m", "15", "--k", "2", "--solver", "idde-g"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IDDE-G" in out
        assert "R_avg" in out

    def test_solve_sharded(self, capsys):
        rc = main(
            ["solve", "--n", "6", "--m", "15", "--k", "2",
             "--solver", "idde-g", "--shards", "auto"]
        )
        assert rc == 0
        assert "IDDE-G" in capsys.readouterr().out

    def test_solve_all(self, capsys):
        rc = main(
            ["solve", "--n", "6", "--m", "12", "--k", "2", "--ip-budget", "0.2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("IDDE-IP", "IDDE-G", "SAA", "CDP", "DUP-G"):
            assert name in out

    def test_theory(self, capsys):
        rc = main(["theory", "--n", "6", "--m", "10", "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Theorem 4" in out and "PoA" in out

    def test_fig1(self, capsys):
        rc = main(["fig1", "--days", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Edge" in out and "Frankfurt" in out

    def test_dynamics(self, capsys):
        rc = main(
            [
                "dynamics",
                "--n", "8", "--m", "20", "--k", "2",
                "--epochs", "3", "--dt", "15", "--policy", "warm",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "warm" in out and "migr MB" in out

    def test_gap(self, capsys):
        rc = main(["gap", "--n", "8", "--m", "20", "--k", "2", "--trials", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean gap" in out

    def test_sweep_smallest(self, capsys, monkeypatch):
        # Patch Set #3's grid down so the sweep is fast.
        from repro.experiments import settings as settings_mod
        from repro.experiments.settings import SweepSettings
        from repro import cli as cli_mod

        tiny = (
            settings_mod.SET1,
            settings_mod.SET2,
            SweepSettings("Set #3", "k", (2,)),
            settings_mod.SET4,
        )
        monkeypatch.setattr(cli_mod, "ALL_SETS", tiny)
        rc = main(
            [
                "sweep",
                "3",
                "--reps",
                "1",
                "--ip-budget",
                "0.2",
                "--workers",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Set #3" in out
        assert "shape checks" in out
