"""Terminal visualisation tests."""

import numpy as np
import pytest

from repro.core.game import IddeUGame
from repro.viz import scenario_map, series_panel, sparkline


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_heights(self):
        bars = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert bars == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0, float("inf")])


class TestSeriesPanel:
    def test_contains_labels_and_ranges(self):
        panel = series_panel({"IDDE-G": [1.0, 2.0], "CDP": [3.0, 1.0]})
        assert "IDDE-G" in panel and "CDP" in panel
        assert "[1.0 … 2.0]" in panel

    def test_skips_empty_series(self):
        panel = series_panel({"a": [], "b": [1.0]})
        assert "a" not in panel.split("\n")[0] or "b" in panel


class TestScenarioMap:
    def test_contains_servers_and_users(self, tiny_scenario):
        art = scenario_map(tiny_scenario)
        assert art.count("#") >= 1
        assert "o" in art
        assert "." in art  # coverage shading

    def test_allocation_glyphs(self, tiny_instance):
        profile = IddeUGame(tiny_instance).run(rng=0).profile
        art = scenario_map(tiny_instance.scenario, profile)
        # All users allocated => no '?' and digit glyphs present.
        assert "?" not in art
        assert any(g in art for g in "012")

    def test_unallocated_marker(self, tiny_scenario):
        from repro.core.profiles import AllocationProfile

        profile = AllocationProfile.empty(tiny_scenario.n_users)
        art = scenario_map(tiny_scenario, profile)
        assert "?" in art

    def test_dimensions(self, tiny_scenario):
        art = scenario_map(tiny_scenario, width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_too_small_rejected(self, tiny_scenario):
        with pytest.raises(ValueError):
            scenario_map(tiny_scenario, width=4, height=2)
