"""Unit-conversion tests."""

import math

import pytest

from repro import units


class TestDbmWatts:
    def test_noise_floor(self):
        # The paper's −174 dBm noise floor ≈ 3.98e−21 W.
        assert units.dbm_to_watts(-174.0) == pytest.approx(3.981e-21, rel=1e-3)

    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_round_trip(self):
        for dbm in (-174.0, -30.0, 0.0, 10.0, 46.0):
            assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)
        with pytest.raises(ValueError):
            units.watts_to_dbm(-1.0)


class TestTimeAndSize:
    def test_seconds_ms_round_trip(self):
        assert units.ms_to_seconds(units.seconds_to_ms(0.123)) == pytest.approx(0.123)

    def test_seconds_to_ms(self):
        assert units.seconds_to_ms(1.5) == 1500.0

    def test_mb_bytes_round_trip(self):
        assert units.bytes_to_mb(units.mb_to_bytes(42.5)) == pytest.approx(42.5)

    def test_mb_is_decimal(self):
        assert units.mb_to_bytes(1) == 1_000_000

    def test_constants(self):
        assert units.MB == 10**6
        assert math.isclose(units.MS_PER_S, 1000.0)
