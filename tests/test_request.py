"""The :class:`~repro.request.SolveRequest` wire format and façade parity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import execute, solve
from repro.config import DeliveryConfig, GameConfig
from repro.core.instance import IDDEInstance
from repro.errors import ConfigurationError
from repro.request import REQUEST_SCHEMA, SolveRequest
from repro.sharding import ShardConfig

#: A fully-populated idde-request/1 document, exactly as it travels the
#: wire — golden bytes for cross-version compatibility.
GOLDEN_DOC = {
    "schema": "idde-request/1",
    "solver": "idde-g",
    "game": None,
    "delivery": None,
    "sharding": None,
    "warm_start": True,
    "active": [1, 1, 0, 1],
    "rng": 42,
    "ip_time_budget_s": 2.5,
    "validate": False,
    "solver_options": {"note": "golden"},
}


@pytest.fixture(scope="module")
def instance() -> IDDEInstance:
    return IDDEInstance.generate(n=6, m=24, k=3, density=1.0, seed=3)


class TestWireRoundTrip:
    def test_golden_document_loads(self):
        req = SolveRequest.from_dict(GOLDEN_DOC)
        assert req.solver == "idde-g"
        assert req.warm_start is True
        assert req.active.dtype == bool
        assert list(req.active) == [True, True, False, True]
        assert req.rng == 42
        assert req.ip_time_budget_s == 2.5
        assert req.validate is False
        assert req.solver_options == {"note": "golden"}

    def test_golden_document_round_trips_bit_identical(self):
        req = SolveRequest.from_dict(GOLDEN_DOC)
        assert req.to_dict() == GOLDEN_DOC
        # and through actual JSON text, not just dicts
        rewired = SolveRequest.from_dict(json.loads(json.dumps(req.to_dict())))
        assert rewired.to_dict() == GOLDEN_DOC

    def test_nested_configs_round_trip(self):
        req = SolveRequest(
            solver="idde-g",
            game_config=GameConfig(kernel="batched"),
            delivery_config=DeliveryConfig(kernel="batched"),
            sharding=ShardConfig(n_shards=2, n_workers=0),
        )
        back = SolveRequest.from_dict(req.to_dict())
        assert back.game_config == req.game_config
        assert back.delivery_config == req.delivery_config
        assert back.sharding == req.sharding

    def test_defaults_round_trip(self):
        back = SolveRequest.from_dict(SolveRequest().to_dict())
        assert back.solver == "idde-g"
        assert back.warm_start is None
        assert back.active is None and back.rng is None

    def test_schema_tag_required(self):
        doc = dict(GOLDEN_DOC)
        doc["schema"] = "idde-request/9"
        with pytest.raises(ConfigurationError, match="idde-request/1"):
            SolveRequest.from_dict(doc)
        with pytest.raises(ConfigurationError, match="schema"):
            SolveRequest.from_dict({"solver": "idde-g"})

    def test_unknown_keys_rejected(self):
        doc = dict(GOLDEN_DOC)
        doc["warmstart"] = True  # typo must not pass silently
        with pytest.raises(ConfigurationError, match="warmstart"):
            SolveRequest.from_dict(doc)

    def test_unknown_nested_config_key_rejected(self):
        doc = dict(GOLDEN_DOC)
        doc["game"] = {"kernal": "batched"}
        with pytest.raises(ConfigurationError, match="kernal"):
            SolveRequest.from_dict(doc)

    def test_nested_config_range_checks_still_run(self):
        doc = dict(GOLDEN_DOC)
        doc["game"] = {"kernel": "gpu"}  # GameConfig's own validation
        with pytest.raises(ConfigurationError):
            SolveRequest.from_dict(doc)

    @pytest.mark.parametrize(
        "key, value, match",
        [
            ("warm_start", 1, "boolean"),
            ("rng", True, "integer seed"),
            ("rng", 3.5, "integer seed"),
            ("validate", "yes", "boolean"),
            ("active", "101", "0/1 list"),
            ("active", [[1], [0, 1]], "flat 0/1 mask"),  # ragged
            ("active", [[1, 0], [0, 1]], "flat 0/1 mask"),  # nested/2-D
            ("solver_options", [1], "JSON object"),
            ("game", "batched", "JSON object"),
        ],
    )
    def test_bad_wire_values_rejected(self, key, value, match):
        doc = dict(GOLDEN_DOC)
        doc[key] = value
        with pytest.raises(ConfigurationError, match=match):
            SolveRequest.from_dict(doc)

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            SolveRequest.from_dict([1, 2, 3])

    def test_constructor_rejects_non_flat_active(self):
        # The same validation guards direct construction, not just the wire.
        with pytest.raises(ConfigurationError, match="flat 0/1 mask"):
            SolveRequest(active=[[1], [0, 1]])
        with pytest.raises(ConfigurationError, match="flat 0/1 mask"):
            SolveRequest(active=np.zeros((2, 2)))


class TestRuntimeFields:
    def test_live_warm_start_cannot_go_on_the_wire(self, instance):
        prior = solve(instance, "idde-g", rng=3)
        req = SolveRequest(solver="idde-g", warm_start=prior)
        with pytest.raises(ConfigurationError, match="wire"):
            req.to_dict()
        assert req.to_dict(lenient=True)["warm_start"] is True

    def test_live_generator_cannot_go_on_the_wire(self):
        req = SolveRequest(rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError, match="integer seed"):
            req.to_dict()
        assert req.to_dict(lenient=True)["rng"] is None

    def test_numpy_seed_serialises_as_int(self):
        doc = SolveRequest(rng=np.int64(17)).to_dict()
        assert doc["rng"] == 17 and type(doc["rng"]) is int

    def test_warm_start_false_normalises_to_none(self):
        assert SolveRequest(warm_start=False).warm_start is None

    def test_with_runtime_swaps_only_runtime_state(self):
        base = SolveRequest(
            solver="idde-g", game_config=GameConfig(kernel="batched"), rng=1
        )
        mask = np.ones(4, dtype=bool)
        stamped = base.with_runtime(warm_start=True, active=mask, rng=7)
        assert stamped.game_config == base.game_config
        assert stamped.warm_start is True
        assert stamped.rng == 7
        assert np.array_equal(stamped.active, mask)
        # the base request is frozen and untouched
        assert base.warm_start is None and base.rng == 1

    def test_sentinel_rejected_by_direct_execute(self, instance):
        with pytest.raises(ConfigurationError, match="resident"):
            execute(instance, SolveRequest(solver="idde-g", warm_start=True))

    def test_unserialisable_solver_options_rejected(self):
        req = SolveRequest(solver_options={"obj": object()})
        with pytest.raises(ConfigurationError, match="solver_options"):
            req.to_dict()


class TestFacadeParity:
    """solve(**kwargs) and solve(SolveRequest(...)) are one code path."""

    def test_kwargs_and_request_are_bit_identical(self, instance):
        by_kwargs = solve(
            instance,
            "idde-g",
            game_config=GameConfig(kernel="batched"),
            delivery_config=DeliveryConfig(kernel="batched"),
            rng=3,
        )
        by_request = solve(
            instance,
            SolveRequest(
                solver="idde-g",
                game_config=GameConfig(kernel="batched"),
                delivery_config=DeliveryConfig(kernel="batched"),
                rng=3,
            ),
        )
        assert by_kwargs.r_avg == by_request.r_avg
        assert by_kwargs.l_avg_ms == by_request.l_avg_ms
        assert by_kwargs.game.move_log == by_request.game.move_log
        assert np.array_equal(
            by_kwargs.allocation.server, by_request.allocation.server
        )

    def test_baseline_parity(self, instance):
        assert (
            solve(instance, "cdp", rng=3).r_avg
            == solve(instance, SolveRequest(solver="cdp", rng=3)).r_avg
        )

    def test_request_with_kwarg_overrides_rejected(self, instance):
        with pytest.raises(ConfigurationError, match="request"):
            solve(
                instance,
                SolveRequest(solver="idde-g"),
                game_config=GameConfig(),
            )
        with pytest.raises(ConfigurationError, match="request"):
            solve(instance, SolveRequest(solver="idde-g"), rng=3)

    def test_solution_document_embeds_request(self, instance):
        req = SolveRequest(solver="idde-g", rng=3)
        doc = solve(instance, req).to_dict()
        assert doc["request"]["schema"] == REQUEST_SCHEMA
        assert doc["request"]["solver"] == "idde-g"
        assert doc["request"]["rng"] == 3
