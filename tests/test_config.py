"""Configuration validation tests."""

import pytest

from repro.config import (
    DeliveryConfig,
    GameConfig,
    RadioConfig,
    ScenarioConfig,
    TopologyConfig,
    WorkloadConfig,
)
from repro.errors import ConfigurationError


class TestRadioConfig:
    def test_defaults_match_paper(self):
        cfg = RadioConfig()
        assert cfg.eta == 1.0
        assert cfg.loss_exponent == 3.0
        assert cfg.bandwidth == 200.0
        assert cfg.noise_dbm == -174.0
        assert cfg.channels_per_server == 3

    def test_noise_watts(self):
        assert RadioConfig().noise_watts == pytest.approx(3.981e-21, rel=1e-3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eta": 0.0},
            {"loss_exponent": -1.0},
            {"bandwidth": 0.0},
            {"channels_per_server": 0},
            {"min_distance": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            RadioConfig(**kwargs)


class TestChannelProvisioning:
    def test_fixed_draw(self):
        import numpy as np

        cfg = RadioConfig(channels_per_server=4)
        out = cfg.draw_channels(5, np.random.default_rng(0))
        assert (out == 4).all()

    def test_heterogeneous_draw(self):
        import numpy as np

        cfg = RadioConfig(channel_range=(2, 5))
        out = cfg.draw_channels(500, np.random.default_rng(0))
        assert out.min() >= 2 and out.max() <= 5
        assert len(np.unique(out)) > 1

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            RadioConfig(channel_range=(0, 3))
        with pytest.raises(ConfigurationError):
            RadioConfig(channel_range=(4, 2))

    def test_generator_integration(self):
        from repro.config import ScenarioConfig
        from repro.core.instance import IDDEInstance
        from repro.core.idde_g import IddeG

        cfg = ScenarioConfig(radio=RadioConfig(channel_range=(1, 4)))
        instance = IDDEInstance.generate(n=10, m=30, k=3, seed=2, config=cfg)
        channels = instance.scenario.channels
        assert channels.min() >= 1 and channels.max() <= 4
        # The full pipeline handles ragged channel tables.
        strategy = IddeG().solve(instance, rng=0)
        assert strategy.r_avg > 0
        strategy.allocation.validate(instance.scenario)


class TestTopologyConfig:
    def test_defaults_match_paper(self):
        cfg = TopologyConfig()
        assert cfg.edge_speed_range == (2000.0, 6000.0)
        assert cfg.cloud_speed == 600.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"edge_speed_range": (0.0, 10.0)},
            {"edge_speed_range": (10.0, 5.0)},
            {"cloud_speed": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TopologyConfig(**kwargs)


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        cfg = WorkloadConfig()
        assert cfg.data_sizes == (30.0, 60.0, 90.0)
        assert cfg.storage_range == (30.0, 300.0)
        assert cfg.power_range == (1.0, 5.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"data_sizes": ()},
            {"data_sizes": (0.0,)},
            {"storage_range": (-1.0, 5.0)},
            {"power_range": (5.0, 1.0)},
            {"requests_per_user": 0},
            {"zipf_exponent": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**kwargs)


class TestGameConfig:
    def test_schedules(self):
        for s in ("best-gain-winner", "random-winner", "round-robin"):
            assert GameConfig(schedule=s).schedule == s

    def test_bad_schedule(self):
        with pytest.raises(ConfigurationError):
            GameConfig(schedule="chaotic")

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            GameConfig(epsilon=-1e-9)

    def test_bad_max_rounds(self):
        with pytest.raises(ConfigurationError):
            GameConfig(max_rounds=0)


class TestDeliveryConfig:
    def test_defaults(self):
        cfg = DeliveryConfig()
        assert cfg.ratio_rule is True
        assert cfg.min_gain_s == 0.0
        assert cfg.min_gain_s_per_mb == 0.0

    def test_bad_min_gain_s(self):
        with pytest.raises(ConfigurationError):
            DeliveryConfig(min_gain_s=-0.5)

    def test_bad_min_gain_s_per_mb(self):
        with pytest.raises(ConfigurationError):
            DeliveryConfig(min_gain_s_per_mb=-0.5)

    def test_legacy_unitless_min_gain_removed(self):
        # The old `min_gain` conflated s with s/MB depending on ratio_rule.
        with pytest.raises(TypeError):
            DeliveryConfig(min_gain=0.1)


class TestScenarioConfig:
    def test_bundle_defaults(self):
        cfg = ScenarioConfig()
        assert isinstance(cfg.radio, RadioConfig)
        assert isinstance(cfg.topology, TopologyConfig)
        assert isinstance(cfg.workload, WorkloadConfig)

    def test_with_overrides(self):
        cfg = ScenarioConfig().with_overrides(radio=RadioConfig(bandwidth=100.0))
        assert cfg.radio.bandwidth == 100.0
        assert cfg.topology == TopologyConfig()
