"""Work partitioning tests."""

import pytest

from repro.parallel.partition import chunk_evenly, chunk_sized


class TestChunkSized:
    def test_exact_division(self):
        assert chunk_sized([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert chunk_sized([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_oversized_chunk(self):
        assert chunk_sized([1, 2], 10) == [[1, 2]]

    def test_empty(self):
        assert chunk_sized([], 3) == []

    def test_bad_size(self):
        with pytest.raises(ValueError):
            chunk_sized([1], 0)


class TestChunkEvenly:
    def test_even(self):
        assert chunk_evenly([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_front_loaded(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 3) == [[1, 2], [3, 4], [5]]

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_preserves_order(self):
        items = list(range(23))
        flat = [x for chunk in chunk_evenly(items, 7) for x in chunk]
        assert flat == items

    def test_bad_count(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)

    def test_default_drops_empty_chunks(self):
        # Historical contract: fewer items than chunks silently shrinks the
        # output — callers that index chunks positionally must pass exact.
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_exact_keeps_empty_chunks(self):
        assert chunk_evenly([1, 2], 5, exact=True) == [[1], [2], [], [], []]

    def test_exact_matches_default_when_items_suffice(self):
        items = list(range(23))
        assert chunk_evenly(items, 7, exact=True) == chunk_evenly(items, 7)

    def test_exact_on_empty_input(self):
        assert chunk_evenly([], 3, exact=True) == [[], [], []]
