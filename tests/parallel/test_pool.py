"""Process-pool map tests."""

import os

import pytest

from repro.parallel.pool import ParallelConfig, default_workers, parallel_map


def square(x):
    return x * x


def pid_tag(x):
    return (x, os.getpid())


class TestSerialPath:
    def test_results_ordered(self):
        out = parallel_map(square, range(10), ParallelConfig(n_workers=1))
        assert out == [x * x for x in range(10)]

    def test_zero_workers_serial(self):
        out = parallel_map(square, [3], ParallelConfig(n_workers=0))
        assert out == [9]

    def test_small_batch_stays_serial(self):
        cfg = ParallelConfig(n_workers=4, min_parallel_items=100)
        out = parallel_map(pid_tag, range(10), cfg)
        assert all(pid == os.getpid() for _, pid in out)

    def test_empty(self):
        assert parallel_map(square, [], ParallelConfig(n_workers=4)) == []


class TestParallelPath:
    def test_results_ordered_across_processes(self):
        cfg = ParallelConfig(n_workers=2, min_parallel_items=1)
        out = parallel_map(square, range(20), cfg)
        assert out == [x * x for x in range(20)]

    def test_actually_uses_workers(self):
        cfg = ParallelConfig(n_workers=2, min_parallel_items=1)
        out = parallel_map(pid_tag, range(8), cfg)
        pids = {pid for _, pid in out}
        assert os.getpid() not in pids

    def test_chunksize(self):
        cfg = ParallelConfig(n_workers=2, chunksize=4, min_parallel_items=1)
        out = parallel_map(square, range(16), cfg)
        assert out == [x * x for x in range(16)]


class TestDefaults:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_none_resolves(self):
        assert ParallelConfig().resolved_workers() >= 1
