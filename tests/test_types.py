"""Scenario container tests."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.types import DataItem, EdgeServer, Scenario, User

from .conftest import make_scenario


class TestScenarioConstruction:
    def test_shapes(self, tiny_scenario):
        assert tiny_scenario.n_servers == 3
        assert tiny_scenario.n_users == 6
        assert tiny_scenario.n_data == 2

    def test_arrays_frozen(self, tiny_scenario):
        with pytest.raises(ValueError):
            tiny_scenario.storage[0] = 99.0
        with pytest.raises(ValueError):
            tiny_scenario.requests[0, 0] = True

    def test_inputs_copied(self):
        storage = np.array([100.0])
        sc = make_scenario([[0.0, 0.0]], [[1.0, 1.0]], storage=100.0)
        storage[0] = -1  # must not affect the scenario
        assert sc.storage[0] == 100.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("radius", 0.0),
            ("storage", -5.0),
            ("channels", 0),
            ("power", 0.0),
            ("rmax", 0.0),
        ],
    )
    def test_rejects_bad_scalars(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ScenarioError):
            make_scenario([[0.0, 0.0]], [[1.0, 1.0]], **kwargs)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ScenarioError):
            make_scenario([[0.0, 0.0]], [[1.0, 1.0]], sizes=(0.0,))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ScenarioError):
            Scenario(
                server_xy=np.zeros((2, 2)),
                radius=np.ones(3),  # wrong
                storage=np.ones(2),
                channels=np.ones(2, dtype=np.int64),
                user_xy=np.zeros((1, 2)),
                power=np.ones(1),
                rmax=np.ones(1),
                sizes=np.ones(1),
                requests=np.zeros((1, 1), dtype=bool),
            )

    def test_rejects_zero_servers(self):
        with pytest.raises(ScenarioError):
            make_scenario(np.empty((0, 2)), [[0.0, 0.0]])


class TestDerived:
    def test_coverage_full_overlap(self, tiny_scenario):
        assert tiny_scenario.coverage.all()
        assert all(len(v) == 3 for v in tiny_scenario.covering_servers)

    def test_channel_mask(self, tiny_scenario):
        assert tiny_scenario.channel_mask.shape == (3, 2)
        assert tiny_scenario.channel_mask.all()

    def test_heterogeneous_channels_mask(self):
        sc = make_scenario(
            [[0.0, 0.0], [10.0, 0.0]], [[1.0, 1.0]], channels=[1, 3]
        )
        assert sc.max_channels == 3
        assert sc.channel_mask.tolist() == [[True, False, False], [True, True, True]]

    def test_covered_users(self):
        sc = make_scenario([[0.0, 0.0]], [[1.0, 1.0], [9999.0, 0.0]], radius=10.0)
        assert sc.covered_users.tolist() == [True, False]

    def test_totals(self, tiny_scenario):
        assert tiny_scenario.total_storage == pytest.approx(600.0)
        assert tiny_scenario.total_requests == 6


class TestEntityViews:
    def test_server_view(self, tiny_scenario):
        s = tiny_scenario.server(1)
        assert isinstance(s, EdgeServer)
        assert s.index == 1 and s.xy == (200.0, 0.0)
        assert s.n_channels == 2

    def test_user_view(self, tiny_scenario):
        u = tiny_scenario.user(0)
        assert isinstance(u, User)
        assert u.power == 2.0 and u.rmax == 200.0

    def test_data_view(self, tiny_scenario):
        d = tiny_scenario.data_item(1)
        assert isinstance(d, DataItem)
        assert d.size == 60.0

    def test_iterators(self, tiny_scenario):
        assert len(list(tiny_scenario.servers())) == 3
        assert len(list(tiny_scenario.users())) == 6
        assert len(list(tiny_scenario.data_items())) == 2

    def test_repr(self, tiny_scenario):
        assert "Scenario(N=3, M=6, K=2" in repr(tiny_scenario)


class TestFromEntities:
    def test_round_trip(self, tiny_scenario):
        rebuilt = Scenario.from_entities(
            list(tiny_scenario.servers()),
            list(tiny_scenario.users()),
            list(tiny_scenario.data_items()),
            tiny_scenario.requests,
        )
        assert np.allclose(rebuilt.server_xy, tiny_scenario.server_xy)
        assert np.allclose(rebuilt.power, tiny_scenario.power)
        assert np.array_equal(rebuilt.requests, tiny_scenario.requests)
