"""IDDE-Trace tracer core: spans, events, metrics and their invariants."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs import NULL_TRACER, RecordingTracer, Tracer, ensure_tracer
from repro.obs.tracer import NULL_SPAN


class FakeClock:
    """A deterministic, manually-advanced monotonic clock."""

    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> None:
        self.t += dt


class TestNullTracer:
    def test_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert ensure_tracer(None) is NULL_TRACER
        tracer = RecordingTracer()
        assert ensure_tracer(tracer) is tracer

    def test_all_hooks_are_noops(self):
        t = Tracer()
        with t.span("anything", x=1) as span:
            span.set(y=2)
        assert span is NULL_SPAN
        t.event("e", a=1)
        t.count("c")
        t.gauge("g", 3.0)
        t.observe("h", 4.0)

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("s"):
                raise ValueError("propagates")


class TestSpans:
    def test_nested_spans_and_durations(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock=clock)
        with tracer.span("outer", label="a") as outer:
            clock.tick(1.0)
            with tracer.span("inner") as inner:
                clock.tick(0.5)
            clock.tick(0.25)
        assert outer.record.parent_id is None
        assert inner.record.parent_id == outer.record.span_id
        assert inner.record.duration_s == pytest.approx(0.5)
        assert outer.record.duration_s == pytest.approx(1.75)
        assert outer.record.attrs == {"label": "a"}
        assert tracer.open_spans() == 0

    def test_set_merges_attrs(self):
        tracer = RecordingTracer(clock=FakeClock())
        with tracer.span("s", a=1) as span:
            span.set(b=2)
            span.set(a=3)
        assert span.record.attrs == {"a": 3, "b": 2}

    def test_exception_sets_error_attr_and_propagates(self):
        tracer = RecordingTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        assert tracer.spans[0].attrs["error"] == "RuntimeError"
        assert tracer.spans[0].end_s is not None

    def test_out_of_order_close_raises(self):
        tracer = RecordingTracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(TraceError, match="nesting order"):
            outer.__exit__(None, None, None)

    def test_events_attribute_to_open_span(self):
        tracer = RecordingTracer(clock=FakeClock())
        tracer.event("root-level")
        with tracer.span("s") as span:
            tracer.event("inside", n=1)
        assert tracer.events[0].span_id is None
        assert tracer.events[1].span_id == span.record.span_id
        assert tracer.events[1].fields == {"n": 1}


class TestClock:
    def test_backwards_clock_raises(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock=clock)
        clock.t -= 5.0
        with pytest.raises(TraceError, match="monotonic"):
            tracer.span("s")

    def test_times_are_offsets_from_epoch(self):
        clock = FakeClock(t=1234.0)
        tracer = RecordingTracer(clock=clock)
        clock.tick(2.0)
        with tracer.span("s") as span:
            pass
        assert span.record.start_s == pytest.approx(2.0)


class TestEventBound:
    def test_keeps_first_and_counts_drops(self):
        tracer = RecordingTracer(max_events=3, clock=FakeClock())
        for i in range(7):
            tracer.event("e", i=i)
        assert [e.fields["i"] for e in tracer.events] == [0, 1, 2]
        assert tracer.dropped_events == 4
        # Sequence numbers keep counting across the drop.
        tracer.max_events = 10
        tracer.event("late")
        assert tracer.events[-1].seq == 7

    def test_negative_capacity_rejected(self):
        with pytest.raises(TraceError):
            RecordingTracer(max_events=-1)


class TestMetrics:
    def test_counters_gauges_histograms(self):
        tracer = RecordingTracer(clock=FakeClock())
        tracer.count("moves")
        tracer.count("moves", 4)
        tracer.gauge("epsilon", 1e-9)
        tracer.gauge("epsilon", 1e-6)
        for v in (1.0, 3.0, 2.0):
            tracer.observe("gain", v)
        assert tracer.counters == {"moves": 5}
        assert tracer.gauges == {"epsilon": 1e-6}
        h = tracer.histograms["gain"]
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == pytest.approx(2.0)
        assert h.to_dict() == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}


class TestThreadSafety:
    """The IDDE-Serve contract: solver thread records, event loop reads."""

    def test_concurrent_metrics_and_snapshots_are_consistent(self):
        import threading

        tracer = RecordingTracer()
        n_threads, n_iter = 8, 400
        start = threading.Barrier(n_threads + 1)  # writers + snapshotter
        torn: list[dict] = []

        def writer(idx: int) -> None:
            start.wait()
            for i in range(n_iter):
                tracer.count("serve.solves")
                tracer.observe("serve.solve_s", float(i))
                tracer.gauge(f"g{idx}", float(i))
                tracer.event("tick", worker=idx, i=i)

        def reader() -> None:
            start.wait()
            while any(t.is_alive() for t in threads):
                snap = tracer.metrics_snapshot()
                hist = snap["histograms"].get("serve.solve_s")
                # a torn histogram would show count/total drift apart
                if hist is not None and hist["count"] and not (
                    0.0 <= hist["total"] / hist["count"] <= n_iter
                ):
                    torn.append(snap)
                spans, events, dropped = tracer.records_snapshot()
                seqs = [e.seq for e in events]
                if seqs != sorted(seqs):
                    torn.append({"events": "out of order"})

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(n_threads)
        ]
        snapshotter = threading.Thread(target=reader)
        for t in threads:
            t.start()
        snapshotter.start()
        for t in threads:
            t.join()
        snapshotter.join()

        assert not torn
        assert tracer.counters["serve.solves"] == n_threads * n_iter
        hist = tracer.histograms["serve.solve_s"]
        assert hist.count == n_threads * n_iter
        assert hist.total == pytest.approx(
            n_threads * n_iter * (n_iter - 1) / 2
        )
        # every event got a unique sequence number (recorded or dropped)
        spans, events, dropped = tracer.records_snapshot()
        assert len(events) + dropped == n_threads * n_iter
        assert len({e.seq for e in events}) == len(events)

    def test_snapshot_isolated_from_later_span_mutation(self):
        tracer = RecordingTracer(clock=FakeClock())
        with tracer.span("outer", phase="start") as span:
            spans, _, _ = tracer.records_snapshot()
            span.set(phase="mutated")
        assert spans[0].attrs == {"phase": "start"}
        assert tracer.spans[0].attrs == {"phase": "mutated"}
