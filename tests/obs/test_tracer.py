"""IDDE-Trace tracer core: spans, events, metrics and their invariants."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs import NULL_TRACER, RecordingTracer, Tracer, ensure_tracer
from repro.obs.tracer import NULL_SPAN


class FakeClock:
    """A deterministic, manually-advanced monotonic clock."""

    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> None:
        self.t += dt


class TestNullTracer:
    def test_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert ensure_tracer(None) is NULL_TRACER
        tracer = RecordingTracer()
        assert ensure_tracer(tracer) is tracer

    def test_all_hooks_are_noops(self):
        t = Tracer()
        with t.span("anything", x=1) as span:
            span.set(y=2)
        assert span is NULL_SPAN
        t.event("e", a=1)
        t.count("c")
        t.gauge("g", 3.0)
        t.observe("h", 4.0)

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("s"):
                raise ValueError("propagates")


class TestSpans:
    def test_nested_spans_and_durations(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock=clock)
        with tracer.span("outer", label="a") as outer:
            clock.tick(1.0)
            with tracer.span("inner") as inner:
                clock.tick(0.5)
            clock.tick(0.25)
        assert outer.record.parent_id is None
        assert inner.record.parent_id == outer.record.span_id
        assert inner.record.duration_s == pytest.approx(0.5)
        assert outer.record.duration_s == pytest.approx(1.75)
        assert outer.record.attrs == {"label": "a"}
        assert tracer.open_spans() == 0

    def test_set_merges_attrs(self):
        tracer = RecordingTracer(clock=FakeClock())
        with tracer.span("s", a=1) as span:
            span.set(b=2)
            span.set(a=3)
        assert span.record.attrs == {"a": 3, "b": 2}

    def test_exception_sets_error_attr_and_propagates(self):
        tracer = RecordingTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        assert tracer.spans[0].attrs["error"] == "RuntimeError"
        assert tracer.spans[0].end_s is not None

    def test_out_of_order_close_raises(self):
        tracer = RecordingTracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(TraceError, match="nesting order"):
            outer.__exit__(None, None, None)

    def test_events_attribute_to_open_span(self):
        tracer = RecordingTracer(clock=FakeClock())
        tracer.event("root-level")
        with tracer.span("s") as span:
            tracer.event("inside", n=1)
        assert tracer.events[0].span_id is None
        assert tracer.events[1].span_id == span.record.span_id
        assert tracer.events[1].fields == {"n": 1}


class TestClock:
    def test_backwards_clock_raises(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock=clock)
        clock.t -= 5.0
        with pytest.raises(TraceError, match="monotonic"):
            tracer.span("s")

    def test_times_are_offsets_from_epoch(self):
        clock = FakeClock(t=1234.0)
        tracer = RecordingTracer(clock=clock)
        clock.tick(2.0)
        with tracer.span("s") as span:
            pass
        assert span.record.start_s == pytest.approx(2.0)


class TestEventBound:
    def test_keeps_first_and_counts_drops(self):
        tracer = RecordingTracer(max_events=3, clock=FakeClock())
        for i in range(7):
            tracer.event("e", i=i)
        assert [e.fields["i"] for e in tracer.events] == [0, 1, 2]
        assert tracer.dropped_events == 4
        # Sequence numbers keep counting across the drop.
        tracer.max_events = 10
        tracer.event("late")
        assert tracer.events[-1].seq == 7

    def test_negative_capacity_rejected(self):
        with pytest.raises(TraceError):
            RecordingTracer(max_events=-1)


class TestMetrics:
    def test_counters_gauges_histograms(self):
        tracer = RecordingTracer(clock=FakeClock())
        tracer.count("moves")
        tracer.count("moves", 4)
        tracer.gauge("epsilon", 1e-9)
        tracer.gauge("epsilon", 1e-6)
        for v in (1.0, 3.0, 2.0):
            tracer.observe("gain", v)
        assert tracer.counters == {"moves": 5}
        assert tracer.gauges == {"epsilon": 1e-6}
        h = tracer.histograms["gain"]
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == pytest.approx(2.0)
        assert h.to_dict() == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}
