"""The ``idde-trace/1`` document: round-trip, validation and rendering."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.obs import (
    SCHEMA,
    RecordingTracer,
    load_trace,
    render_summary,
    save_trace,
    trace_records,
)

from .test_tracer import FakeClock


def _recorded_tracer() -> RecordingTracer:
    clock = FakeClock()
    tracer = RecordingTracer(clock=clock)
    with tracer.span("api.solve", solver="IDDE-G"):
        clock.tick(0.1)
        with tracer.span("game.run", rounds=3):
            tracer.event("game.move", user=4, gain=1.5)
            tracer.count("game.moves")
            clock.tick(0.2)
        with tracer.span("delivery.greedy"):
            tracer.event("delivery.place", server=1, item=0)
            clock.tick(0.05)
    tracer.gauge("epsilon", 1e-9)
    tracer.observe("gain_s", 0.5)
    return tracer


class TestRoundTrip:
    def test_jsonl_round_trip_reconstructs_span_tree(self, tmp_path):
        tracer = _recorded_tracer()
        path = save_trace(tracer, tmp_path / "t.jsonl", meta={"command": "test"})
        doc = load_trace(path)

        assert doc.meta == {"command": "test"}
        assert len(doc.spans) == 3
        assert len(doc.events) == 2
        roots = doc.span_tree()
        assert [r.span.name for r in roots] == ["api.solve"]
        assert [c.span.name for c in roots[0].children] == [
            "game.run",
            "delivery.greedy",
        ]
        walked = roots[0].walk()
        assert [(d, s.name) for d, s in walked] == [
            (0, "api.solve"),
            (1, "game.run"),
            (1, "delivery.greedy"),
        ]
        # Durations and attrs survive the trip exactly.
        by_name = {s.name: s for s in doc.spans}
        assert by_name["game.run"].duration_s == pytest.approx(0.2)
        assert by_name["api.solve"].attrs == {"solver": "IDDE-G"}
        assert doc.counters == {"game.moves": 1}
        assert doc.gauges == {"epsilon": 1e-9}
        assert doc.histograms["gain_s"]["count"] == 1
        assert doc.events_of_type("game.move")[0].fields == {"user": 4, "gain": 1.5}

    def test_records_shape(self):
        records = trace_records(_recorded_tracer())
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == SCHEMA
        assert records[-1]["kind"] == "metrics"
        kinds = [r["kind"] for r in records[1:-1]]
        assert kinds == ["span"] * 3 + ["event"] * 2
        # Every record is a JSON-serialisable object.
        for record in records:
            json.dumps(record)

    def test_summary_dict(self, tmp_path):
        path = save_trace(_recorded_tracer(), tmp_path / "t.jsonl")
        summary = load_trace(path).summary_dict()
        assert summary["n_spans"] == 3
        assert summary["event_types"] == {"game.move": 1, "delivery.place": 1}
        json.dumps(summary)


class TestValidation:
    def _lines(self, tmp_path) -> list[str]:
        path = save_trace(_recorded_tracer(), tmp_path / "t.jsonl")
        return path.read_text().splitlines()

    def _write(self, tmp_path, lines) -> str:
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_missing_header(self, tmp_path):
        lines = self._lines(tmp_path)
        with pytest.raises(TraceError, match="header"):
            load_trace(self._write(tmp_path, lines[1:]))

    def test_wrong_schema(self, tmp_path):
        lines = self._lines(tmp_path)
        header = json.loads(lines[0])
        header["schema"] = "idde-trace/999"
        with pytest.raises(TraceError, match="unsupported trace schema"):
            load_trace(self._write(tmp_path, [json.dumps(header), *lines[1:]]))

    def test_truncated_document(self, tmp_path):
        lines = self._lines(tmp_path)
        with pytest.raises(TraceError, match="metrics"):
            load_trace(self._write(tmp_path, lines[:-1]))

    def test_count_mismatch(self, tmp_path):
        lines = self._lines(tmp_path)
        header = json.loads(lines[0])
        header["n_spans"] = 99
        with pytest.raises(TraceError, match="mismatch"):
            load_trace(self._write(tmp_path, [json.dumps(header), *lines[1:]]))

    def test_unknown_kind(self, tmp_path):
        lines = self._lines(tmp_path)
        lines.insert(1, json.dumps({"kind": "mystery"}))
        with pytest.raises(TraceError, match="unknown record kind"):
            load_trace(self._write(tmp_path, lines))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace(path)


class TestRender:
    def test_render_summary_contents(self, tmp_path):
        path = save_trace(_recorded_tracer(), tmp_path / "t.jsonl", meta={"k": "v"})
        text = render_summary(load_trace(path))
        assert SCHEMA in text
        assert "api.solve" in text and "game.run" in text
        assert "game.moves" in text
        assert "gauge epsilon" in text
        assert "hist gain_s" in text
        assert "game.move×1" in text
