"""The :class:`~repro.serve.SolverSession` lifecycle: fold, re-solve, certify."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import solve
from repro.config import GameConfig
from repro.core.instance import IDDEInstance
from repro.errors import ConfigurationError, SolverError
from repro.obs import RecordingTracer
from repro.request import SolveRequest
from repro.rng import spawn_rng
from repro.serve import SolverSession
from repro.workload import Move, UserJoin, UserLeave


@pytest.fixture(scope="module")
def instance() -> IDDEInstance:
    return IDDEInstance.generate(n=6, m=24, k=3, density=1.0, seed=3)


def _warm_request(seed: int = 7) -> SolveRequest:
    return SolveRequest(solver="idde-g", warm_start=True, rng=seed)


class TestLifecycle:
    def test_cold_solve_then_stats(self, instance):
        session = SolverSession(instance, _warm_request())
        assert session.epoch == -1
        sol = session.solve()
        assert sol is session.solution
        assert session.certified is True
        stats = session.stats()
        assert stats["epoch"] == 0
        assert stats["solves"] == 1
        assert stats["warm_solves"] == 0  # nothing resident to warm from
        assert stats["has_solution"] is True

    def test_events_fold_and_warm_resolve(self, instance):
        session = SolverSession(instance, _warm_request())
        session.solve()
        m = instance.scenario.n_users
        sol = session.apply_events(
            [UserLeave(t=1.0, user=0), Move(t=2.0, user=1, x=10.0, y=20.0)]
        )
        assert session.epoch == 1
        assert session.events_applied == 2
        assert session.warm_solves == 1
        assert session.certified is True
        assert session.state.n_active == m - 1
        assert sol.warm_detached is not None  # warm path went through repair
        rejoin = session.apply_events([UserJoin(t=3.0, user=0)])
        assert session.state.n_active == m
        assert rejoin.game.is_nash

    def test_each_resolve_gets_fresh_epoch_stream(self, instance):
        session = SolverSession(instance, _warm_request(seed=7))
        session.solve()
        # The epoch-0 request carried the session's spawned stream, not
        # the raw integer: deterministic per-epoch provenance.
        assert session.seed == 7
        twin = SolverSession(instance, _warm_request(seed=7))
        twin.solve()
        events = [UserLeave(t=1.0, user=3), Move(t=1.5, user=5, x=50.0, y=60.0)]
        a = session.apply_events(list(events))
        b = twin.apply_events(list(events))
        assert a.r_avg == b.r_avg
        assert a.l_avg_ms == b.l_avg_ms
        assert np.array_equal(a.allocation.server, b.allocation.server)

    def test_session_solve_matches_direct_facade(self, instance):
        # A cold session solve is the same run a direct facade call does
        # with the identical projected request.
        session = SolverSession(instance, SolveRequest(solver="idde-g", rng=11))
        sol = session.solve()
        direct = solve(
            instance,
            SolveRequest(
                solver="idde-g",
                active=np.ones(instance.scenario.n_users, dtype=bool),
                rng=spawn_rng(11, "serve", 0),
            ),
        )
        assert sol.r_avg == direct.r_avg
        assert sol.l_avg_ms == direct.l_avg_ms

    def test_resident_warm_boot(self, instance):
        prior = solve(instance, SolveRequest(solver="idde-g", rng=7))
        session = SolverSession(instance, _warm_request(), resident=prior)
        sol = session.solve()
        assert session.warm_solves == 1
        assert sol.warm_detached is not None

    def test_adopting_new_request_replaces_base(self, instance):
        session = SolverSession(instance, _warm_request())
        session.solve()
        mask = np.ones(instance.scenario.n_users, dtype=bool)
        mask[:4] = False
        sol = session.solve(
            SolveRequest(solver="idde-g", active=mask, rng=9, warm_start=True)
        )
        assert session.state.n_active == mask.sum()
        assert session.seed == 9
        assert sol.game.is_nash
        # the adopted base request keeps the description, not the mask
        assert session.request.active is None


class TestCertification:
    def test_baseline_has_no_certificate(self, instance):
        session = SolverSession(instance, SolveRequest(solver="cdp"))
        session.solve()
        assert session.certified is None
        assert session.solution.game is None

    def test_failed_certificate_keeps_resident(self, instance, monkeypatch):
        session = SolverSession(instance, _warm_request())
        first = session.solve()
        from repro.core.game import IddeUGame

        monkeypatch.setattr(IddeUGame, "is_nash", lambda self, *a, **kw: False)
        with pytest.raises(SolverError, match="certificate failed"):
            session.apply_events([UserLeave(t=1.0, user=2)])
        assert session.solution is first  # resident survives
        assert session.tracer.counters.get("serve.certificate.failed") == 1

    def test_certifier_runs_under_span(self, instance):
        tracer = RecordingTracer()
        session = SolverSession(instance, _warm_request(), tracer=tracer)
        session.solve()
        assert any(s.name == "serve.certify" for s in tracer.spans)
        assert tracer.counters["serve.solves"] == 1

    def test_certifier_respects_game_config(self, instance):
        cfg = GameConfig(kernel="batched")
        session = SolverSession(
            instance, SolveRequest(solver="idde-g", game_config=cfg, rng=5)
        )
        session.solve()
        assert session.certified is True


class TestRequestValidation:
    def test_live_generator_rejected(self, instance):
        with pytest.raises(ConfigurationError, match="integer seed"):
            SolverSession(
                instance, SolveRequest(solver="idde-g", rng=np.random.default_rng(0))
            )

    def test_live_warm_start_rejected(self, instance):
        prior = solve(instance, SolveRequest(solver="idde-g", rng=7))
        with pytest.raises(ConfigurationError, match="wire"):
            SolverSession(instance, SolveRequest(solver="idde-g", warm_start=prior))

    def test_wrong_shape_active_mask_rejected(self, instance):
        session = SolverSession(instance, _warm_request())
        with pytest.raises(ConfigurationError, match="mask covers"):
            session.solve(
                SolveRequest(solver="idde-g", active=np.ones(3, dtype=bool))
            )

    def test_failed_adoption_rolls_back(self, instance):
        from repro.errors import SolverLookupError

        session = SolverSession(instance, _warm_request(seed=7))
        session.solve()
        mask_before = session.state.active.copy()
        bad = SolveRequest.from_dict(
            {"schema": "idde-request/1", "solver": "ide-g", "warm_start": True,
             "active": [0] * instance.scenario.n_users}
        )
        with pytest.raises(SolverLookupError):
            session.solve(bad)
        # the previous base request and churn mask both survive
        assert session.request.solver == "idde-g"
        assert session.seed == 7
        assert np.array_equal(session.state.active, mask_before)
        assert session.solve().game.is_nash  # session still serves


class TestSolutionDocument:
    def test_cold_session_raises(self, instance):
        session = SolverSession(instance, _warm_request())
        with pytest.raises(SolverError, match="no resident solution"):
            session.solution_document()

    def test_document_carries_session_context(self, instance):
        session = SolverSession(instance, _warm_request())
        session.solve()
        session.apply_events([UserLeave(t=1.0, user=0)])
        doc = session.solution_document()
        assert doc["schema"] == "idde-solution/2"
        assert doc["session"]["epoch"] == 1
        assert doc["session"]["events_applied"] == 1
        assert doc["session"]["certified"] is True
        assert doc["session"]["n_active"] == instance.scenario.n_users - 1
        assert doc["request"]["warm_start"] is True
