"""The IDDE-Serve daemon end to end: routing, admission, timeouts, drain."""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core.instance import IDDEInstance
from repro.errors import ConfigurationError
from repro.request import SolveRequest
from repro.serve import ServeConfig, ServeDaemon, SolverSession
from repro.workload import UserLeave

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def instance() -> IDDEInstance:
    return IDDEInstance.generate(n=5, m=16, k=2, density=1.0, seed=4)


def _session(instance) -> SolverSession:
    return SolverSession(
        instance, SolveRequest(solver="idde-g", warm_start=True, rng=2)
    )


async def _http(
    port: int, method: str, path: str, body: object = None, *, raw: bytes | None = None
) -> tuple[int, bytes]:
    """One request against the daemon; returns (status, body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = raw if raw is not None else (
        b"" if body is None else json.dumps(body).encode()
    )
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    head += "\r\n"
    writer.write(head.encode() + payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_raw, _, body_raw = response.partition(b"\r\n\r\n")
    status = int(head_raw.split(b" ", 2)[1])
    return status, body_raw


def _drive(daemon: ServeDaemon, scenario) -> tuple[object, int]:
    """Run the daemon, execute ``scenario(daemon)``, drain, return its result."""

    async def main():
        await daemon.start()
        run_task = asyncio.create_task(daemon.run(install_signal_handlers=False))
        try:
            result = await scenario(daemon)
        finally:
            daemon.request_shutdown()
            exit_code = await asyncio.wait_for(run_task, timeout=30)
        return result, exit_code

    return asyncio.run(main())


class TestEndpoints:
    def test_full_lifecycle(self, instance):
        daemon = ServeDaemon(_session(instance))

        async def scenario(d):
            out = {}
            status, body = await _http(d.port, "GET", "/v1/health")
            out["health0"] = (status, json.loads(body))
            out["cold_solution"] = await _http(d.port, "GET", "/v1/solution")
            out["solve"] = await _http(d.port, "POST", "/v1/solve")
            events = [UserLeave(t=1.0, user=0).to_dict()]
            out["events"] = await _http(d.port, "POST", "/v1/events", {"events": events})
            status, body = await _http(d.port, "GET", "/v1/solution")
            out["solution"] = (status, json.loads(body))
            status, body = await _http(d.port, "GET", "/v1/metrics")
            out["metrics"] = (status, json.loads(body))
            out["trace"] = await _http(d.port, "GET", "/v1/trace")
            return out

        out, exit_code = _drive(daemon, scenario)
        assert exit_code == 0

        status, health = out["health0"]
        assert status == 200
        assert health["status"] == "ok"
        assert health["session"]["epoch"] == -1

        status, body = out["cold_solution"]
        assert status == 409
        assert json.loads(body)["error"]["type"] == "SolverError"

        status, body = out["solve"]
        assert status == 200
        doc = json.loads(body)
        assert doc["schema"] == "idde-solution/2"
        assert doc["session"] == {
            "epoch": 0, "events_applied": 0, "certified": True,
            "n_active": instance.scenario.n_users,
        }

        status, body = out["events"]
        assert status == 200
        doc = json.loads(body)
        assert doc["session"]["epoch"] == 1
        assert doc["session"]["events_applied"] == 1
        assert doc["session"]["certified"] is True

        status, doc = out["solution"]
        assert status == 200 and doc["session"]["epoch"] == 1

        status, metrics = out["metrics"]
        assert status == 200
        assert metrics["counters"]["serve.solves"] == 2
        assert metrics["counters"]["serve.solves.warm"] == 1

        status, ndjson = out["trace"]
        assert status == 200
        records = [json.loads(line) for line in ndjson.splitlines() if line]
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == "idde-trace/1"
        assert records[0]["meta"]["source"] == "idde-serve"
        assert records[-1]["kind"] == "metrics"
        assert any(r.get("name") == "serve.certify" for r in records)

    def test_solve_accepts_request_document(self, instance):
        daemon = ServeDaemon(_session(instance))
        doc = SolveRequest(solver="idde-g", rng=5).to_dict()

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/solve", doc)

        (status, body), exit_code = _drive(daemon, scenario)
        assert exit_code == 0 and status == 200
        served = json.loads(body)
        # the document embeds the producing request (lenient wire form:
        # the per-epoch generator degrades to a null seed)
        assert served["request"]["schema"] == "idde-request/1"
        assert served["request"]["solver"] == "idde-g"
        assert served["session"]["epoch"] == 0


class TestErrorPaths:
    def test_unknown_solver_is_structured_400(self, instance):
        daemon = ServeDaemon(_session(instance))
        doc = SolveRequest(solver="idde-g").to_dict()
        doc["solver"] = "ide-g"

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/solve", doc)

        (status, body), _ = _drive(daemon, scenario)
        assert status == 400
        error = json.loads(body)["error"]
        assert error["type"] == "SolverLookupError"
        assert "idde-g" in error["message"]  # did-you-mean survives the wire

    def test_malformed_json_body_is_400(self, instance):
        daemon = ServeDaemon(_session(instance))

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/solve", raw=b"{nope")

        (status, body), _ = _drive(daemon, scenario)
        assert status == 400
        assert json.loads(body)["error"]["type"] == "ProtocolError"

    def test_unknown_request_key_is_400(self, instance):
        daemon = ServeDaemon(_session(instance))
        doc = SolveRequest(solver="idde-g").to_dict()
        doc["warmstart"] = True

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/solve", doc)

        (status, body), _ = _drive(daemon, scenario)
        assert status == 400
        assert "warmstart" in json.loads(body)["error"]["message"]

    def test_unknown_endpoint_and_wrong_method(self, instance):
        daemon = ServeDaemon(_session(instance))

        async def scenario(d):
            return (
                await _http(d.port, "GET", "/v1/nope"),
                await _http(d.port, "GET", "/v1/solve"),
                await _http(d.port, "POST", "/v1/health"),
            )

        (unknown, wrong_get, wrong_post), _ = _drive(daemon, scenario)
        assert unknown[0] == 400
        assert wrong_get[0] == 405
        assert "allowed: POST" in json.loads(wrong_get[1])["error"]["message"]
        assert wrong_post[0] == 405
        assert "allowed: GET" in json.loads(wrong_post[1])["error"]["message"]

    def test_ragged_active_is_structured_400(self, instance):
        daemon = ServeDaemon(_session(instance))
        doc = SolveRequest(solver="idde-g").to_dict()
        doc["active"] = [[1], [0, 1]]  # ragged: numpy cannot coerce this

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/solve", doc)

        (status, body), _ = _drive(daemon, scenario)
        assert status == 400
        error = json.loads(body)["error"]
        assert error["type"] == "ConfigurationError"
        assert "active" in error["message"]

    def test_unexpected_exception_is_structured_500(self, instance):
        session = _session(instance)

        def boom(request=None):
            raise RuntimeError("kaboom")

        session.solve = boom  # type: ignore[method-assign]
        daemon = ServeDaemon(session)

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/solve")

        (status, body), exit_code = _drive(daemon, scenario)
        assert exit_code == 0
        assert status == 500
        error = json.loads(body)["error"]
        assert error["type"] == "RuntimeError"
        assert error["message"] == "kaboom"

    def test_empty_events_body_is_400(self, instance):
        daemon = ServeDaemon(_session(instance))

        async def scenario(d):
            return (
                await _http(d.port, "POST", "/v1/events", {"events": []}),
                await _http(d.port, "POST", "/v1/events", {"evts": [1]}),
            )

        (empty, misnamed), _ = _drive(daemon, scenario)
        assert empty[0] == 400 and misnamed[0] == 400

    def test_bad_event_universe_is_400(self, instance):
        daemon = ServeDaemon(_session(instance))
        events = [{"kind": "leave", "t": 0.0, "user": 10_000}]

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/events", {"events": events})

        (status, body), _ = _drive(daemon, scenario)
        assert status == 400
        error = json.loads(body)["error"]
        assert error["type"] == "ScenarioError"
        assert "out of range" in error["message"]

    def test_malformed_event_names_its_position(self, instance):
        daemon = ServeDaemon(_session(instance))
        events = [{"kind": "leave", "t": 0.0}]  # missing the user field

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/events", {"events": events})

        (status, body), _ = _drive(daemon, scenario)
        assert status == 400
        assert "events[0]" in json.loads(body)["error"]["message"]


class TestReadsDuringSolve:
    def test_health_answers_during_real_session_solve(self, instance, monkeypatch):
        """Regression: reads must not block on the session lock mid-solve.

        Unlike the admission tests this keeps the real
        :class:`SolverSession` (its locking included) and slows only the
        ``execute`` kernel, so a held-across-the-kernel lock would stall
        the event loop and fail the latency assertion below.
        """
        import repro.serve.session as session_module

        session = _session(instance)
        entered = threading.Event()
        release = threading.Event()
        real_execute = session_module.execute

        def slow_execute(inst, request, *, tracer=None):
            entered.set()
            assert release.wait(timeout=10), "reads deadlocked behind the solve"
            return real_execute(inst, request, tracer=tracer)

        monkeypatch.setattr(session_module, "execute", slow_execute)
        daemon = ServeDaemon(session)

        async def scenario(d):
            solve_task = asyncio.create_task(_http(d.port, "POST", "/v1/solve"))
            await asyncio.to_thread(entered.wait, 10)
            t0 = time.monotonic()
            health = await _http(d.port, "GET", "/v1/health")
            cold = await _http(d.port, "GET", "/v1/solution")
            metrics = await _http(d.port, "GET", "/v1/metrics")
            elapsed = time.monotonic() - t0
            release.set()
            return health, cold, metrics, elapsed, await solve_task

        (health, cold, metrics, elapsed, solved), exit_code = _drive(daemon, scenario)
        assert exit_code == 0
        # All three reads answered while the solve was mid-kernel —
        # far under the 10s the kernel was held open.
        assert elapsed < 5.0
        assert health[0] == 200
        body = json.loads(health[1])
        assert body["admitted"] == 1
        assert body["session"]["has_solution"] is False
        assert cold[0] == 409  # resident solution not committed yet
        assert metrics[0] == 200
        assert solved[0] == 200
        assert json.loads(solved[1])["session"]["certified"] is True


class TestAdmissionControl:
    def test_queue_overflow_sheds_429(self, instance):
        session = _session(instance)
        release = threading.Event()

        def slow_solve(request=None):
            release.wait(timeout=10)

        session.solve = slow_solve  # type: ignore[method-assign]
        session.solution_document = lambda: {"ok": True}  # type: ignore[method-assign]
        daemon = ServeDaemon(session, ServeConfig(queue_limit=1))

        async def scenario(d):
            first = asyncio.create_task(_http(d.port, "POST", "/v1/solve"))
            await asyncio.sleep(0.2)  # let the first request occupy the slot
            shed = await _http(d.port, "POST", "/v1/solve")
            health = await _http(d.port, "GET", "/v1/health")
            release.set()
            return await first, shed, health

        (first, shed, health), exit_code = _drive(daemon, scenario)
        assert exit_code == 0
        assert first[0] == 200
        assert shed[0] == 429
        assert json.loads(shed[1])["error"]["type"] == "QueueFullError"
        # reads bypass admission entirely: health answered mid-solve
        assert health[0] == 200
        assert json.loads(health[1])["admitted"] == 1

    def test_timeout_is_504_and_job_completes(self, instance):
        session = _session(instance)
        done = threading.Event()

        def slow_solve(request=None):
            time.sleep(0.5)
            done.set()

        session.solve = slow_solve  # type: ignore[method-assign]
        session.solution_document = lambda: {"ok": True}  # type: ignore[method-assign]
        daemon = ServeDaemon(session, ServeConfig(request_timeout_s=0.1))

        async def scenario(d):
            return await _http(d.port, "POST", "/v1/solve")

        (status, body), exit_code = _drive(daemon, scenario)
        # drain waited for the abandoned job: state landed consistently
        assert exit_code == 0
        assert status == 504
        error = json.loads(body)["error"]
        assert error["type"] == "RequestTimeoutError"
        assert "poll GET /v1/solution" in error["message"]
        assert done.is_set()
        assert daemon.tracer.counters["serve.timeouts"] == 1

    def test_draining_daemon_sheds_new_work(self, instance):
        # Start the listener without the run() loop so setting the drain
        # flag exercises only the admission gate, not the socket close.
        daemon = ServeDaemon(_session(instance))

        async def main():
            await daemon.start()
            daemon.request_shutdown()
            result = await _http(daemon.port, "POST", "/v1/solve")
            daemon._server.close()
            await daemon._server.wait_closed()
            return result

        status, body = asyncio.run(main())
        assert status == 429
        assert "draining" in json.loads(body)["error"]["message"]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="request_timeout_s"):
            ServeConfig(request_timeout_s=0)
        with pytest.raises(ConfigurationError, match="queue_limit"):
            ServeConfig(queue_limit=0)


class TestCliSigterm:
    def test_serve_subprocess_drains_on_sigterm(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--n", "4", "--m", "12", "--k", "2", "--seed", "1",
            ],
            env=env,
            cwd=REPO_ROOT,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no listen banner in {banner!r}"
            port = int(match.group(1))
            with urllib.request.urlopen(
                urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/solve", method="POST"
                ),
                timeout=60,
            ) as response:
                doc = json.load(response)
            assert doc["session"]["certified"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stderr.close()
