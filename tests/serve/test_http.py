"""The stdlib HTTP layer: strict parsing, framing, error mapping."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    ScenarioError,
    SolverError,
    SolverLookupError,
)
from repro.serve import error_response, status_for_error
from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpRequest,
    HttpResponse,
    read_request,
)


def _parse(raw: bytes) -> HttpRequest | None:
    async def run():
        reader = asyncio.StreamReader(limit=MAX_HEADER_BYTES)
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_get_with_query(self):
        req = _parse(b"GET /v1/health?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/health"
        assert req.query == {"verbose": "1"}
        assert req.body == b""

    def test_post_with_content_length_body(self):
        body = json.dumps({"schema": "idde-request/1"}).encode()
        raw = (
            b"POST /v1/solve HTTP/1.1\r\nHost: x\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = _parse(raw)
        assert req.method == "POST"
        assert req.json() == {"schema": "idde-request/1"}

    def test_clean_eof_is_none(self):
        assert _parse(b"") is None

    def test_lowercased_headers(self):
        req = _parse(b"GET / HTTP/1.1\r\nX-Thing:  padded \r\n\r\n")
        assert req.headers["x-thing"] == "padded"

    @pytest.mark.parametrize(
        "raw",
        [
            b"NOT-HTTP\r\n\r\n",  # malformed request line
            b"GET /x SPDY/3\r\n\r\n",  # wrong protocol
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",  # no colon
            b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",  # bad length
            b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",  # negative
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",  # unsupported
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",  # truncated body
            b"GET / HTTP/1.1\r\nHost",  # closed mid-head
        ],
    )
    def test_malformed_requests_raise_protocol_error(self, raw):
        with pytest.raises(ProtocolError):
            _parse(raw)

    def test_oversized_body_rejected_before_read(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ProtocolError, match="Content-Length"):
            _parse(raw)

    def test_oversized_head_rejected(self):
        raw = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * MAX_HEADER_BYTES + b"\r\n\r\n"
        with pytest.raises(ProtocolError, match="exceeds"):
            _parse(raw)

    def test_body_not_json(self):
        req = HttpRequest(method="POST", path="/", body=b"{nope")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            req.json()

    def test_empty_body_decodes_to_none(self):
        assert HttpRequest(method="POST", path="/").json() is None


class TestResponseFraming:
    def test_render_is_length_framed_and_closes(self):
        raw = HttpResponse(status=200, payload={"b": 1, "a": 2}).render()
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Connection: close" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert json.loads(body) == {"a": 2, "b": 1}
        assert body.startswith(b'{"a"')  # sorted keys: deterministic wire bytes

    def test_status_reasons(self):
        assert b"429 Too Many Requests" in HttpResponse(429, {}).render()
        assert b"504 Gateway Timeout" in HttpResponse(504, {}).render()

    def test_extra_headers_rendered(self):
        raw = HttpResponse(405, {}, headers=(("Allow", "POST"),)).render()
        head, _, _ = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 405 Method Not Allowed" in head
        assert b"Allow: POST\r\n" in head


class TestErrorMapping:
    @pytest.mark.parametrize(
        "exc, status",
        [
            (QueueFullError("full"), 429),
            (RequestTimeoutError("slow"), 504),
            (ProtocolError("bad"), 400),
            (SolverLookupError("who"), 400),
            (ConfigurationError("bad cfg"), 400),
            (ScenarioError("bad scenario"), 400),
            (SolverError("diverged"), 500),
            (ReproError("anything"), 500),
        ],
    )
    def test_status_table(self, exc, status):
        assert status_for_error(exc) == status

    def test_structured_error_body(self):
        response = error_response(SolverLookupError("unknown solver 'ide-g'"))
        assert response.status == 400
        assert response.payload == {
            "error": {
                "type": "SolverLookupError",
                "status": 400,
                "message": "unknown solver 'ide-g'",
            }
        }

    def test_keyerror_message_is_unwrapped(self):
        # SolverLookupError derives from KeyError whose str() repr-quotes;
        # the wire message must read clean.
        message = error_response(SolverLookupError("no quotes")).payload["error"][
            "message"
        ]
        assert message == "no quotes"
