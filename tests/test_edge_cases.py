"""Edge-case coverage: degenerate but legal inputs across the stack."""

import numpy as np
import pytest

from repro.config import RadioConfig
from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_data_rate, average_delivery_latency_ms, evaluate
from repro.core.profiles import AllocationProfile, DeliveryProfile
from repro.topology.graph import EdgeTopology, build_topology
from repro.types import Scenario

from .conftest import make_scenario


def zero_user_instance():
    sc = Scenario(
        server_xy=np.array([[0.0, 0.0], [500.0, 0.0]]),
        radius=np.array([300.0, 300.0]),
        storage=np.array([100.0, 100.0]),
        channels=np.array([2, 2], dtype=np.int64),
        user_xy=np.empty((0, 2)),
        power=np.empty(0),
        rmax=np.empty(0),
        sizes=np.array([60.0]),
        requests=np.zeros((0, 1), dtype=bool),
    )
    return IDDEInstance(sc, build_topology(2, 1.0, 0))


class TestZeroUsers:
    def test_scenario_valid(self):
        instance = zero_user_instance()
        assert instance.n_users == 0
        assert instance.scenario.total_requests == 0

    def test_game_converges_trivially(self):
        instance = zero_user_instance()
        result = IddeUGame(instance).run(rng=0)
        assert result.converged and result.moves == 0

    def test_objectives_are_zero(self):
        instance = zero_user_instance()
        alloc = AllocationProfile.empty(0)
        delivery = DeliveryProfile.empty(2, 1)
        assert average_data_rate(instance, alloc) == 0.0
        assert average_delivery_latency_ms(instance, alloc, delivery) == 0.0

    def test_greedy_places_nothing(self):
        instance = zero_user_instance()
        result = greedy_delivery(instance, AllocationProfile.empty(0))
        assert result.profile.n_replicas == 0

    def test_all_solvers_handle_it(self):
        from repro.baselines import default_solvers

        instance = zero_user_instance()
        for solver in default_solvers(ip_time_budget=0.15):
            strategy = solver.solve(instance, rng=0)
            assert strategy.r_avg == 0.0


class TestSingleEverything:
    def test_one_server_one_user_one_item(self):
        sc = make_scenario([[0.0, 0.0]], [[10.0, 0.0]], channels=1, sizes=(30.0,))
        instance = IDDEInstance(sc, build_topology(1, 0.0, 0))
        from repro.core.idde_g import IddeG

        strategy = IddeG().solve(instance, rng=0)
        assert strategy.allocation.n_allocated == 1
        # Only one item and room for it: local hit, zero latency.
        assert strategy.l_avg_ms == 0.0
        assert strategy.r_avg == pytest.approx(float(sc.rmax[0]))


class TestIsolatedUser:
    def test_uncovered_user_cloud_path(self):
        sc = make_scenario(
            [[0.0, 0.0]], [[10.0, 0.0], [99_999.0, 0.0]], radius=100.0
        )
        instance = IDDEInstance(sc, build_topology(1, 0.0, 0))
        result = IddeUGame(instance).run(rng=0)
        assert result.profile.allocated.tolist() == [True, False]
        delivery = greedy_delivery(instance, result.profile).profile
        ev = evaluate(instance, result.profile, delivery)
        assert ev.rates[1] == 0.0
        # The uncovered user pays the cloud fetch for its request.
        assert ev.latencies_ms[1] > 0


class TestExtremeParameters:
    def test_huge_noise_floor_kills_rates(self):
        sc = make_scenario([[0.0, 0.0]], [[50.0, 0.0]], channels=1)
        cfg = RadioConfig(noise_dbm=100.0)  # absurd thermal floor
        instance = IDDEInstance(sc, build_topology(1, 0.0, 0), cfg)
        result = IddeUGame(instance).run(rng=0)
        rate = average_data_rate(instance, result.profile)
        assert rate < 1.0

    def test_zero_storage_everywhere(self):
        sc = make_scenario(
            [[0.0, 0.0]], [[10.0, 0.0]], storage=0.0, sizes=(30.0,)
        )
        instance = IDDEInstance(sc, build_topology(1, 0.0, 0))
        alloc = IddeUGame(instance).run(rng=0).profile
        result = greedy_delivery(instance, alloc)
        assert result.profile.n_replicas == 0
        # Everything comes from the cloud.
        lat = average_delivery_latency_ms(instance, alloc, result.profile)
        assert lat == pytest.approx(1000.0 * 30.0 / 600.0)

    def test_single_channel_heavy_interference(self):
        rng = np.random.default_rng(0)
        sc = make_scenario(
            [[0.0, 0.0]], rng.uniform(-50, 50, size=(12, 2)), channels=1
        )
        instance = IDDEInstance(
            sc, build_topology(1, 0.0, 0), RadioConfig(channels_per_server=1)
        )
        result = IddeUGame(instance).run(rng=0)
        assert result.converged
        rate = average_data_rate(instance, result.profile)
        # 12 users on one channel: rate well below the solo cap.
        assert 0 < rate < 60.0

    def test_complete_graph_min_latency(self):
        """With a complete fast graph, one replica serves everyone at a
        single-hop cost."""
        rng = np.random.default_rng(1)
        sc = make_scenario(
            rng.uniform(0, 2000, size=(6, 2)),
            rng.uniform(0, 2000, size=(12, 2)),
            radius=2000.0,
            storage=30.0,
            sizes=(30.0,),
        )
        from repro.config import TopologyConfig

        topo = build_topology(
            6, 100.0, 0, TopologyConfig(edge_speed_range=(6000.0, 6000.0))
        )
        instance = IDDEInstance(sc, topo)
        alloc = IddeUGame(instance).run(rng=0).profile
        delivery = greedy_delivery(instance, alloc).profile
        lat = average_delivery_latency_ms(instance, alloc, delivery)
        # At worst one hop at 6000 MB/s for a 30 MB item = 5 ms.
        assert lat <= 5.0 + 1e-6
