"""Property-based tests for scenario generation and profiles."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import UNALLOCATED, AllocationProfile
from repro.datasets.eua import sample_scenario, synthetic_eua

from .strategies import scenarios

FAST = settings(max_examples=30, deadline=None)


class TestScenarioProperties:
    @FAST
    @given(scenarios())
    def test_every_user_covered(self, scenario):
        assert scenario.covered_users.all()

    @FAST
    @given(scenarios())
    def test_coverage_consistent_with_covering_sets(self, scenario):
        for j, servers in enumerate(scenario.covering_servers):
            assert np.array_equal(servers, np.flatnonzero(scenario.coverage[:, j]))

    @FAST
    @given(scenarios())
    def test_requests_one_per_user(self, scenario):
        assert (scenario.requests.sum(axis=1) == 1).all()


class TestSampleScenarioProperties:
    @FAST
    @given(
        st.integers(2, 20),
        st.integers(1, 60),
        st.integers(1, 6),
        st.integers(0, 2**10),
    )
    def test_dimensions_and_coverage(self, n, m, k, seed):
        pool = synthetic_eua(0, n_servers=30, n_users=100)
        sc = sample_scenario(pool, min(n, 30), m, k, np.random.default_rng(seed))
        assert sc.n_users == m and sc.n_data == k
        assert sc.covered_users.all()


class TestProfileProperties:
    @FAST
    @given(scenarios(), st.integers(0, 2**16))
    def test_random_feasible_profiles_validate(self, scenario, seed):
        rng = np.random.default_rng(seed)
        profile = AllocationProfile.empty(scenario.n_users)
        for j in range(scenario.n_users):
            servers = scenario.covering_servers[j]
            if len(servers) == 0 or rng.random() < 0.2:
                continue
            i = int(servers[rng.integers(0, len(servers))])
            profile.server[j] = i
            profile.channel[j] = int(rng.integers(0, scenario.channels[i]))
        profile.validate(scenario)
        # Round-trip through copy preserves equality.
        assert profile.copy() == profile

    @FAST
    @given(scenarios())
    def test_unallocated_counting(self, scenario):
        profile = AllocationProfile.empty(scenario.n_users)
        assert profile.n_allocated == 0
        assert (profile.server == UNALLOCATED).all()
