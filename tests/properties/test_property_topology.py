"""Property-based tests for topology and latency invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.graph import build_topology
from repro.topology.latency import DeliveryLatencyModel
from repro.topology.shortest_path import all_pairs_path_cost

FAST = settings(max_examples=40, deadline=None)

topo_args = st.tuples(
    st.integers(2, 25),  # n
    st.floats(0.0, 4.0),  # density
    st.integers(0, 2**16),  # seed
)


class TestTopologyProperties:
    @FAST
    @given(topo_args)
    def test_link_count_formula(self, args):
        n, density, seed = args
        topo = build_topology(n, density, seed)
        expected = min(int(round(density * n)), n * (n - 1) // 2)
        assert topo.n_links == expected

    @FAST
    @given(topo_args)
    def test_degrees_sum_to_twice_links(self, args):
        n, density, seed = args
        topo = build_topology(n, density, seed)
        assert topo.degree.sum() == 2 * topo.n_links

    @FAST
    @given(topo_args)
    def test_apsp_metric_properties(self, args):
        n, density, seed = args
        topo = build_topology(n, density, seed)
        d = all_pairs_path_cost(topo.adjacency_cost)
        assert np.allclose(np.diag(d), 0.0)
        assert np.allclose(d, d.T, equal_nan=True)
        finite = d[np.isfinite(d)]
        assert (finite >= 0).all()

    @FAST
    @given(topo_args)
    def test_latency_model_cloud_dominates(self, args):
        n, density, seed = args
        topo = build_topology(n, density, seed)
        model = DeliveryLatencyModel(topo)
        assert (model.path_cost <= model.cloud_cost + 1e-15).all()
        assert np.isfinite(model.path_cost).all()

    @FAST
    @given(topo_args, st.floats(1.0, 500.0))
    def test_latency_scales_linearly_with_size(self, args, size):
        n, density, seed = args
        topo = build_topology(n, density, seed)
        model = DeliveryLatencyModel(topo)
        assert np.allclose(model.latency_matrix(size), size * model.path_cost)

    @FAST
    @given(topo_args)
    def test_denser_graph_never_slower(self, args):
        """Adding links can only lower (or keep) pairwise path costs, for
        the same base link set (monotonicity over the shared prefix is not
        guaranteed by the RNG, so compare against the complete graph)."""
        n, density, seed = args
        sparse = build_topology(n, density, seed)
        model_sparse = DeliveryLatencyModel(sparse)
        # Complete graph with the fastest allowed links is a lower bound.
        from repro.config import TopologyConfig
        complete = build_topology(
            n, float(n), seed, TopologyConfig(edge_speed_range=(6000.0, 6000.0))
        )
        model_complete = DeliveryLatencyModel(complete)
        # The complete fast graph's costs cannot exceed cloud anywhere,
        # and its diameter is at most 1 hop.
        off_diag = ~np.eye(n, dtype=bool)
        assert (model_complete.path_cost[off_diag] <= 1 / 6000.0 + 1e-15).all()
        assert (model_sparse.path_cost >= 0).all()
