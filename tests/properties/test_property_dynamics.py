"""Property-based tests for the dynamics extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import DeliveryProfile
from repro.datasets.melbourne import CBD_REGION
from repro.dynamics.churn import PoissonChurn, apply_churn
from repro.dynamics.migration import plan_migration
from repro.dynamics.mobility import ConfinedRandomWalk, RandomWaypoint

from .strategies import instances

FAST = settings(max_examples=25, deadline=None)


@st.composite
def profile_pairs(draw):
    """An instance plus two random feasible delivery profiles."""
    instance = draw(instances())
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    profiles = []
    for _ in range(2):
        placed = np.zeros((instance.n_servers, instance.n_data), dtype=bool)
        residual = instance.scenario.storage.astype(float).copy()
        cells = [(i, k) for i in range(instance.n_servers) for k in range(instance.n_data)]
        rng.shuffle(cells)
        for i, k in cells:
            if residual[i] >= instance.scenario.sizes[k] and rng.random() < 0.4:
                placed[i, k] = True
                residual[i] -= instance.scenario.sizes[k]
        profiles.append(DeliveryProfile(placed))
    return instance, profiles[0], profiles[1]


class TestMigrationProperties:
    @FAST
    @given(profile_pairs())
    def test_bytes_equal_added_sizes(self, triple):
        instance, old, new = triple
        plan = plan_migration(instance, old, new)
        expected = sum(instance.scenario.sizes[k] for _, k in plan.added)
        assert plan.bytes_moved == expected

    @FAST
    @given(profile_pairs())
    def test_delta_consistency(self, triple):
        instance, old, new = triple
        plan = plan_migration(instance, old, new)
        added = np.zeros_like(old.placed)
        for i, k in plan.added:
            added[i, k] = True
        removed = np.zeros_like(old.placed)
        for i, k in plan.removed:
            removed[i, k] = True
        assert np.array_equal((old.placed & ~removed) | added, new.placed)

    @FAST
    @given(profile_pairs())
    def test_transfer_times_bounded_by_cloud(self, triple):
        instance, old, new = triple
        plan = plan_migration(instance, old, new)
        cloud = instance.latency_model.cloud_cost
        for (_, k), t in zip(plan.added, plan.transfer_times_s):
            assert t <= instance.scenario.sizes[k] * cloud + 1e-12

    @FAST
    @given(profile_pairs())
    def test_self_migration_is_free(self, triple):
        instance, old, _ = triple
        plan = plan_migration(instance, old, old.copy())
        assert plan.bytes_moved == 0.0
        assert plan.n_added == plan.n_removed == 0


class TestChurnProperties:
    @FAST
    @given(
        st.integers(1, 100),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
        st.integers(0, 2**16),
    )
    def test_mask_stays_boolean_of_right_shape(self, n, pd, pa, seed):
        churn = PoissonChurn(n, rng=seed, p_depart=pd, p_arrive=pa)
        for _ in range(5):
            mask = churn.step()
            assert mask.dtype == bool and mask.shape == (n,)

    @FAST
    @given(st.integers(0, 2**16))
    def test_apply_churn_idempotent(self, seed):
        from .strategies import scenarios
        from hypothesis import strategies as hst

        rng = np.random.default_rng(seed)
        # Build a small deterministic scenario via the pool generator.
        from repro.datasets.eua import sample_scenario, synthetic_eua

        pool = synthetic_eua(0, n_servers=10, n_users=30)
        sc = sample_scenario(pool, 5, 12, 3, rng)
        active = rng.random(12) < 0.5
        once = apply_churn(sc, active)
        twice = apply_churn(once, active)
        assert np.array_equal(once.requests, twice.requests)

    @FAST
    @given(st.integers(0, 2**16), st.integers(1, 6))
    def test_apply_churn_preserves_dtype_and_shape_repeatedly(self, seed, reps):
        from repro.datasets.eua import sample_scenario, synthetic_eua

        rng = np.random.default_rng(seed)
        pool = synthetic_eua(0, n_servers=10, n_users=30)
        sc = sample_scenario(pool, 5, 12, 3, rng)
        cur = sc
        for _ in range(reps):
            active = rng.random(12) < 0.7
            cur = apply_churn(cur, active)
            assert cur.requests.dtype == sc.requests.dtype
            assert cur.requests.shape == sc.requests.shape
            assert not cur.requests[~active].any()

    @FAST
    @given(instances(full_coverage=True), st.integers(0, 2**16))
    def test_departed_rearrived_user_reenters_unallocated(self, instance, seed):
        """The churn round trip leaves no stale state: a departed user is
        fully detached, and on re-arrival the game sees it unallocated —
        any new allocation is freshly feasible, never a resurrected pair."""
        from repro.core.game import IddeUGame
        from repro.core.profiles import UNALLOCATED
        from repro.core.repair import repair_allocation

        rng = np.random.default_rng(seed)
        alloc = IddeUGame(instance).run(rng=rng).profile
        m = instance.n_users
        user = int(rng.integers(m))
        active = np.ones(m, dtype=bool)
        active[user] = False
        departed, _ = repair_allocation(instance, alloc, active)
        assert departed.server[user] == UNALLOCATED
        assert departed.channel[user] == UNALLOCATED
        # Re-arrival: repairing again must not resurrect the old pair.
        active[user] = True
        back, _ = repair_allocation(instance, departed, active)
        assert back.server[user] == UNALLOCATED
        assert back.channel[user] == UNALLOCATED
        result = IddeUGame(instance).run(rng=rng, initial=back, active=active)
        if result.profile.server[user] != UNALLOCATED:
            s = int(result.profile.server[user])
            assert instance.scenario.coverage[s, user]
            assert 0 <= result.profile.channel[user] < instance.scenario.channels[s]


class TestMobilityProperties:
    @FAST
    @given(st.integers(0, 2**16), st.floats(0.1, 120.0))
    def test_waypoint_confined(self, seed, dt):
        rng = np.random.default_rng(seed)
        pts = rng.uniform([0, 0], [CBD_REGION.x1, CBD_REGION.y1], size=(15, 2))
        model = RandomWaypoint(pts, CBD_REGION, rng=seed)
        for _ in range(10):
            out = model.step(dt)
            assert CBD_REGION.contains(out).all()

    @FAST
    @given(st.integers(0, 2**16), st.floats(0.1, 60.0))
    def test_walk_confined(self, seed, dt):
        rng = np.random.default_rng(seed)
        pts = rng.uniform([0, 0], [CBD_REGION.x1, CBD_REGION.y1], size=(15, 2))
        model = ConfinedRandomWalk(pts, CBD_REGION, rng=seed, sigma=20.0)
        for _ in range(10):
            out = model.step(dt)
            assert CBD_REGION.contains(out).all()
