"""Property-based tests for Phase 2 greedy delivery."""

import numpy as np
from hypothesis import given, settings

from repro.config import DeliveryConfig
from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.objectives import average_delivery_latency_ms, retrieval_cost_table
from repro.core.profiles import DeliveryProfile

from .strategies import instances

FAST = settings(max_examples=25, deadline=None)


def equilibrium_alloc(instance):
    return IddeUGame(instance).run(rng=0).profile


class TestGreedyProperties:
    @FAST
    @given(instances())
    def test_storage_never_violated(self, instance):
        alloc = equilibrium_alloc(instance)
        result = greedy_delivery(instance, alloc)
        result.profile.validate(instance.scenario)

    @FAST
    @given(instances())
    def test_latency_never_worse_than_cloud_only(self, instance):
        alloc = equilibrium_alloc(instance)
        result = greedy_delivery(instance, alloc)
        empty = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        cloud_only = average_delivery_latency_ms(instance, alloc, empty)
        achieved = average_delivery_latency_ms(instance, alloc, result.profile)
        assert achieved <= cloud_only + 1e-9

    @FAST
    @given(instances())
    def test_retrieval_table_respects_cloud_bound(self, instance):
        alloc = equilibrium_alloc(instance)
        result = greedy_delivery(instance, alloc)
        table = retrieval_cost_table(instance, result.profile)
        sizes = instance.scenario.sizes
        cloud = instance.latency_model.cloud_cost
        assert (table <= sizes[None, :] * cloud + 1e-12).all()

    @FAST
    @given(instances())
    def test_ratio_and_absolute_both_feasible(self, instance):
        alloc = equilibrium_alloc(instance)
        for rule in (True, False):
            result = greedy_delivery(instance, alloc, DeliveryConfig(ratio_rule=rule))
            result.profile.validate(instance.scenario)

    @FAST
    @given(instances())
    def test_every_placement_fits_when_made(self, instance):
        """Replaying placements in order never exceeds storage."""
        alloc = equilibrium_alloc(instance)
        result = greedy_delivery(instance, alloc)
        used = np.zeros(instance.n_servers)
        for i, k in result.placements:
            used[i] += instance.scenario.sizes[k]
            assert used[i] <= instance.scenario.storage[i] + 1e-9

    @FAST
    @given(instances())
    def test_iterations_account_for_placements(self, instance):
        """Only productive iterations count: the terminal sweep that places
        nothing is not an iteration of Algorithm 1's loop."""
        alloc = equilibrium_alloc(instance)
        result = greedy_delivery(instance, alloc)
        assert result.iterations == len(result.placements)
