"""Shared hypothesis strategies for IDDE scenarios and instances."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.config import RadioConfig, TopologyConfig
from repro.core.instance import IDDEInstance
from repro.topology.graph import build_topology
from repro.types import Scenario

__all__ = ["scenarios", "instances", "allocated_engines"]


@st.composite
def scenarios(
    draw,
    max_servers: int = 5,
    max_users: int = 10,
    max_data: int = 4,
    full_coverage: bool = False,
) -> Scenario:
    """Random small scenarios with guaranteed-covered users."""
    n = draw(st.integers(1, max_servers))
    m = draw(st.integers(1, max_users))
    k = draw(st.integers(1, max_data))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    span = 200.0 if full_coverage else 800.0
    server_xy = rng.uniform(0, span, size=(n, 2))
    radius = (
        np.full(n, 2000.0)
        if full_coverage
        else rng.uniform(250.0, 400.0, size=n)
    )
    # Place users inside randomly chosen discs so everyone is covered.
    owners = rng.integers(0, n, size=m)
    theta = rng.uniform(0, 2 * np.pi, size=m)
    r = radius[owners] * np.sqrt(rng.random(m)) * 0.95
    user_xy = server_xy[owners] + np.column_stack(
        [r * np.cos(theta), r * np.sin(theta)]
    )
    channels = draw(st.integers(1, 3))
    requests = np.zeros((m, k), dtype=bool)
    for j in range(m):
        requests[j, rng.integers(0, k)] = True
    return Scenario(
        server_xy=server_xy,
        radius=radius,
        storage=rng.uniform(0.0, 250.0, size=n),
        channels=np.full(n, channels, dtype=np.int64),
        user_xy=user_xy,
        power=rng.uniform(1.0, 5.0, size=m),
        rmax=rng.uniform(150.0, 250.0, size=m),
        sizes=rng.choice([30.0, 60.0, 90.0], size=k),
        requests=requests,
    )


@st.composite
def instances(draw, **kwargs) -> IDDEInstance:
    """Random small instances (scenario + topology)."""
    scenario = draw(scenarios(**kwargs))
    density = draw(st.floats(0.0, 3.0))
    seed = draw(st.integers(0, 2**16))
    topo = build_topology(scenario.n_servers, density, seed, TopologyConfig())
    return IDDEInstance(scenario, topo, RadioConfig())


@st.composite
def allocated_engines(draw, **kwargs):
    """An engine with a random feasible allocation loaded."""
    instance = draw(instances(**kwargs))
    engine = instance.new_engine()
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    for j in range(instance.n_users):
        covering = instance.scenario.covering_servers[j]
        if len(covering) == 0 or rng.random() < 0.1:
            continue  # leave some users unallocated
        i = int(covering[rng.integers(0, len(covering))])
        x = int(rng.integers(0, instance.scenario.channels[i]))
        engine.assign(j, i, x)
    return instance, engine
