"""Property-based tests for the SINR engine invariants."""

import numpy as np
from hypothesis import given, settings

from repro.core.profiles import AllocationProfile

from .strategies import allocated_engines

FAST = settings(max_examples=40, deadline=None)


class TestEngineInvariants:
    @FAST
    @given(allocated_engines())
    def test_power_table_matches_allocation(self, pair):
        """The incremental channel power table equals the from-scratch sum."""
        instance, engine = pair
        fresh = np.zeros_like(engine.channel_power)
        for j in range(instance.n_users):
            i, x = engine.alloc_server[j], engine.alloc_channel[j]
            if i >= 0:
                fresh[i, x] += engine.power[j]
        assert np.allclose(fresh, engine.channel_power, atol=1e-12)

    @FAST
    @given(allocated_engines())
    def test_counts_match_allocation(self, pair):
        instance, engine = pair
        assert engine.channel_count.sum() == (engine.alloc_server >= 0).sum()

    @FAST
    @given(allocated_engines())
    def test_rates_non_negative_and_capped(self, pair):
        instance, engine = pair
        rates = engine.rates()
        assert (rates >= 0).all()
        assert (rates <= instance.scenario.rmax + 1e-9).all()

    @FAST
    @given(allocated_engines())
    def test_vectorised_rates_match_scalar(self, pair):
        instance, engine = pair
        rates = engine.rates()
        for j in range(instance.n_users):
            assert np.isclose(rates[j], engine.user_rate(j), rtol=1e-9, atol=1e-12)

    @FAST
    @given(allocated_engines())
    def test_adding_interferer_never_raises_sinr(self, pair):
        """Monotonicity: allocating another user to my channel cannot
        improve my SINR."""
        instance, engine = pair
        allocated = np.flatnonzero(engine.alloc_server >= 0)
        free = np.flatnonzero(engine.alloc_server < 0)
        if len(allocated) == 0 or len(free) == 0:
            return
        victim = int(allocated[0])
        i, x = int(engine.alloc_server[victim]), int(engine.alloc_channel[victim])
        before = engine.user_sinr(victim)
        for j in free:
            if instance.scenario.coverage[i, j]:
                engine.assign(int(j), i, x)
                after = engine.user_sinr(victim)
                assert after <= before + 1e-18
                return

    @FAST
    @given(allocated_engines())
    def test_load_profile_round_trip(self, pair):
        instance, engine = pair
        profile = AllocationProfile(engine.alloc_server, engine.alloc_channel)
        other = instance.new_engine()
        other.load_profile(profile.server, profile.channel)
        assert np.allclose(other.channel_power, engine.channel_power)
        assert np.array_equal(other.alloc_server, engine.alloc_server)

    @FAST
    @given(allocated_engines())
    def test_benefit_in_unit_interval(self, pair):
        instance, engine = pair
        for j in range(instance.n_users):
            b = engine.user_benefit(j)
            assert 0.0 <= b <= 1.0

    @FAST
    @given(allocated_engines())
    def test_unassign_restores_state(self, pair):
        instance, engine = pair
        allocated = np.flatnonzero(engine.alloc_server >= 0)
        if len(allocated) == 0:
            return
        j = int(allocated[0])
        i, x = int(engine.alloc_server[j]), int(engine.alloc_channel[j])
        before = engine.channel_power.copy()
        engine.unassign(j)
        engine.assign(j, i, x)
        assert np.allclose(engine.channel_power, before, atol=1e-12)
