"""Property-based tests for the SINR engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import AllocationProfile
from repro.radio.sinr import UNALLOCATED

from .strategies import allocated_engines

FAST = settings(max_examples=40, deadline=None)


class TestEngineInvariants:
    @FAST
    @given(allocated_engines())
    def test_power_table_matches_allocation(self, pair):
        """The incremental channel power table equals the from-scratch sum."""
        instance, engine = pair
        fresh = np.zeros_like(engine.channel_power)
        for j in range(instance.n_users):
            i, x = engine.alloc_server[j], engine.alloc_channel[j]
            if i >= 0:
                fresh[i, x] += engine.power[j]
        assert np.allclose(fresh, engine.channel_power, atol=1e-12)

    @FAST
    @given(allocated_engines())
    def test_counts_match_allocation(self, pair):
        instance, engine = pair
        assert engine.channel_count.sum() == (engine.alloc_server >= 0).sum()

    @FAST
    @given(allocated_engines())
    def test_rates_non_negative_and_capped(self, pair):
        instance, engine = pair
        rates = engine.rates()
        assert (rates >= 0).all()
        assert (rates <= instance.scenario.rmax + 1e-9).all()

    @FAST
    @given(allocated_engines())
    def test_vectorised_rates_match_scalar(self, pair):
        instance, engine = pair
        rates = engine.rates()
        for j in range(instance.n_users):
            assert np.isclose(rates[j], engine.user_rate(j), rtol=1e-9, atol=1e-12)

    @FAST
    @given(allocated_engines())
    def test_adding_interferer_never_raises_sinr(self, pair):
        """Monotonicity: allocating another user to my channel cannot
        improve my SINR."""
        instance, engine = pair
        allocated = np.flatnonzero(engine.alloc_server >= 0)
        free = np.flatnonzero(engine.alloc_server < 0)
        if len(allocated) == 0 or len(free) == 0:
            return
        victim = int(allocated[0])
        i, x = int(engine.alloc_server[victim]), int(engine.alloc_channel[victim])
        before = engine.user_sinr(victim)
        for j in free:
            if instance.scenario.coverage[i, j]:
                engine.assign(int(j), i, x)
                after = engine.user_sinr(victim)
                assert after <= before + 1e-18
                return

    @FAST
    @given(allocated_engines())
    def test_load_profile_round_trip(self, pair):
        instance, engine = pair
        profile = AllocationProfile(engine.alloc_server, engine.alloc_channel)
        other = instance.new_engine()
        other.load_profile(profile.server, profile.channel)
        assert np.allclose(other.channel_power, engine.channel_power)
        assert np.array_equal(other.alloc_server, engine.alloc_server)

    @FAST
    @given(allocated_engines())
    def test_benefit_in_unit_interval(self, pair):
        instance, engine = pair
        for j in range(instance.n_users):
            b = engine.user_benefit(j)
            assert 0.0 <= b <= 1.0

    @FAST
    @given(allocated_engines())
    def test_unassign_restores_state(self, pair):
        instance, engine = pair
        allocated = np.flatnonzero(engine.alloc_server >= 0)
        if len(allocated) == 0:
            return
        j = int(allocated[0])
        i, x = int(engine.alloc_server[j]), int(engine.alloc_channel[j])
        before = engine.channel_power.copy()
        engine.unassign(j)
        engine.assign(j, i, x)
        assert np.allclose(engine.channel_power, before, atol=1e-12)


def _churn(instance, engine, seed, steps=300):
    """Hammer the incremental bookkeeping with random moves/unassigns."""
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        j = int(rng.integers(0, instance.n_users))
        covering = instance.scenario.covering_servers[j]
        if len(covering) == 0 or rng.random() < 0.25:
            engine.unassign(j)
            continue
        i = int(covering[rng.integers(0, len(covering))])
        x = int(rng.integers(0, instance.scenario.channels[i]))
        engine.move(j, i, x)


class TestChurnConsistency:
    """Incremental state stays consistent with a from-scratch rebuild
    after long move churn (the regime where float drift and the
    negative-residue clamp in ``interference_profile`` matter)."""

    @FAST
    @given(allocated_engines(), st.integers(0, 2**16))
    def test_power_table_matches_rebuild_after_churn(self, pair, seed):
        instance, engine = pair
        _churn(instance, engine, seed)
        fresh = instance.new_engine()
        fresh.load_profile(engine.alloc_server, engine.alloc_channel)
        assert np.array_equal(fresh.channel_count, engine.channel_count)
        assert np.allclose(fresh.channel_power, engine.channel_power, atol=1e-12)
        # The unassign drift reset pins emptied channels to exactly zero.
        empty = engine.channel_count == 0
        assert not engine.channel_power[empty].any()

    @FAST
    @given(allocated_engines(), st.integers(0, 2**16))
    def test_interference_clamp_after_churn(self, pair, seed):
        """The own-power subtraction never leaves a negative residue."""
        instance, engine = pair
        _churn(instance, engine, seed)
        for j in range(instance.n_users):
            servers, w = engine.interference_profile(j)
            assert (w >= 0.0).all()
            assert w.shape == (engine.n_channels,)


class TestBatchScalarParity:
    """The batched kernels are bit-for-bit the per-user reference: both
    reduce interference over the same padded covering row, so every
    derived quantity must be the *identical* float, not merely close."""

    @FAST
    @given(allocated_engines())
    def test_batch_interference_bitwise(self, pair):
        instance, engine = pair
        w = engine.batch_interference()
        for j in range(instance.n_users):
            _, scalar_w = engine.interference_profile(j)
            assert np.array_equal(w[j], scalar_w)

    @FAST
    @given(allocated_engines())
    def test_batch_candidates_bitwise(self, pair):
        instance, engine = pair
        batch = engine.batch_candidates()
        for pos in range(instance.n_users):
            j = int(batch.users[pos])
            view = engine.candidates(j)
            s = view.servers.size
            assert np.array_equal(batch.servers[pos, :s], view.servers)
            assert not batch.server_mask[pos, s:].any()
            assert np.array_equal(batch.valid[pos, :s], view.valid)
            for name in ("sinr", "rate", "benefit"):
                got = getattr(batch, name)[pos, :s][view.valid]
                want = getattr(view, name)[view.valid]
                assert np.array_equal(got, want)

    @FAST
    @given(allocated_engines())
    def test_batch_best_responses_bitwise(self, pair):
        instance, engine = pair
        batch = engine.batch_best_responses()
        for pos in range(instance.n_users):
            j = int(batch.users[pos])
            view = engine.candidates(j)
            if view.servers.size == 0:
                assert batch.server[pos] == UNALLOCATED
                assert batch.channel[pos] == UNALLOCATED
                continue
            server, channel, benefit = view.best("benefit")
            assert int(batch.server[pos]) == server
            assert int(batch.channel[pos]) == channel
            # Bitwise by construction — see the sinr module docstring.
            assert np.array_equal(batch.benefit[pos], benefit)
            assert np.array_equal(batch.current_benefit[pos], engine.user_benefit(j))

    @FAST
    @given(allocated_engines(), st.integers(0, 2**16))
    def test_batch_parity_survives_churn(self, pair, seed):
        """Parity is a state invariant, not a fresh-engine accident."""
        instance, engine = pair
        _churn(instance, engine, seed, steps=100)
        batch = engine.batch_best_responses()
        for pos in range(instance.n_users):
            j = int(batch.users[pos])
            view = engine.candidates(j)
            if view.servers.size == 0:
                continue
            server, channel, benefit = view.best("benefit")
            assert (int(batch.server[pos]), int(batch.channel[pos])) == (server, channel)
            assert np.array_equal(batch.benefit[pos], benefit)
