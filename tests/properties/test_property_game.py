"""Property-based tests for the IDDE-U game."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GameConfig
from repro.core.game import IddeUGame

from .strategies import instances

FAST = settings(max_examples=25, deadline=None)


class TestGameProperties:
    @FAST
    @given(instances(), st.sampled_from(["round-robin", "best-gain-winner"]))
    def test_always_converges_to_nash(self, instance, schedule):
        """Theorem 3/4: the dynamics terminate at a Nash equilibrium on
        every randomly drawn instance."""
        game = IddeUGame(instance, GameConfig(schedule=schedule))
        result = game.run(rng=0)
        assert result.converged
        assert result.is_nash

    @FAST
    @given(instances())
    def test_profile_always_feasible(self, instance):
        result = IddeUGame(instance).run(rng=0)
        result.profile.validate(instance.scenario)

    @FAST
    @given(instances())
    def test_every_covered_user_allocated(self, instance):
        """With strictly positive benefits, no covered user stays out."""
        result = IddeUGame(instance).run(rng=0)
        covered = instance.scenario.covered_users
        assert (result.profile.allocated == covered).all()

    @FAST
    @given(instances())
    def test_no_profitable_deviation_detailed(self, instance):
        """Re-verify the (ε-)Nash certificate from first principles.

        The tolerance is the run's ``effective_epsilon``: on cycling
        instances the dynamics escalate the threshold, and the certificate
        must hold at exactly the tolerance the result reports — a rebuilt
        engine, not the one the game played on, so the check is
        independent of any incremental-update state.
        """
        result = IddeUGame(instance).run(rng=0)
        assert result.converged and result.is_nash
        tol = result.effective_epsilon
        engine = instance.new_engine()
        engine.load_profile(result.profile.server, result.profile.channel)
        for j in range(instance.n_users):
            view = engine.candidates(j)
            if view.servers.size == 0:
                continue
            current = engine.user_benefit(j)
            _, _, best = view.best("benefit")
            assert best <= current * (1 + tol) + tol * 1e-30 + 1e-30

    @FAST
    @given(instances())
    def test_moves_bounded_by_theorem4(self, instance):
        """Theorem 4's move bound, on instances where its premise holds.

        The bound assumes the exact-potential regime.  On the rare
        instances where heterogeneous gains make the dynamics cycle, the
        run escalates epsilon (``effective_epsilon`` rises above the
        configured threshold) and the theorem's hypothesis — every move
        raises the potential by at least ``Q_min`` — no longer applies, so
        only the non-escalated runs are held to the bound."""
        from repro.core.bounds import theorem4_iteration_bound

        cfg = GameConfig()
        result = IddeUGame(instance, cfg).run(rng=0)
        if result.effective_epsilon == cfg.epsilon:
            assert result.moves <= theorem4_iteration_bound(instance)
