"""Property-based tests for objectives, metrics and persistence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.objectives import (
    average_delivery_latency_ms,
    evaluate,
    per_user_latencies,
    retrieval_cost_table,
)
from repro.core.profiles import DeliveryProfile
from repro.metrics import jain_index, strategy_report

from .strategies import instances

FAST = settings(max_examples=25, deadline=None)


class TestObjectiveProperties:
    @FAST
    @given(instances())
    def test_adding_replicas_never_hurts_latency(self, instance):
        """L_avg is monotone non-increasing under replica addition."""
        alloc = IddeUGame(instance).run(rng=0).profile
        profile = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        last = average_delivery_latency_ms(instance, alloc, profile)
        rng = np.random.default_rng(0)
        residual = instance.scenario.storage.astype(float).copy()
        for _ in range(6):
            i = int(rng.integers(0, instance.n_servers))
            k = int(rng.integers(0, instance.n_data))
            if profile.placed[i, k] or residual[i] < instance.scenario.sizes[k]:
                continue
            profile.placed[i, k] = True
            residual[i] -= instance.scenario.sizes[k]
            cur = average_delivery_latency_ms(instance, alloc, profile)
            assert cur <= last + 1e-9
            last = cur

    @FAST
    @given(instances())
    def test_retrieval_table_monotone_in_placement(self, instance):
        alloc = IddeUGame(instance).run(rng=0).profile
        result = greedy_delivery(instance, alloc)
        empty = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        t_empty = retrieval_cost_table(instance, empty)
        t_full = retrieval_cost_table(instance, result.profile)
        assert (t_full <= t_empty + 1e-12).all()

    @FAST
    @given(instances())
    def test_evaluation_internally_consistent(self, instance):
        alloc = IddeUGame(instance).run(rng=0).profile
        delivery = greedy_delivery(instance, alloc).profile
        ev = evaluate(instance, alloc, delivery)
        assert ev.r_avg >= 0
        assert ev.l_avg_ms >= 0
        assert ev.rates.shape == (instance.n_users,)
        # Eq. 5: mean over all M users.
        assert np.isclose(ev.r_avg, ev.rates.mean())
        # Per-user latencies are bounded by the per-user cloud fetch.
        lat = per_user_latencies(instance, alloc, delivery)
        cloud = instance.latency_model.cloud_cost
        assert (lat <= instance.scenario.sizes[None, :] * cloud + 1e-12).all()

    @FAST
    @given(instances())
    def test_qoe_report_well_formed(self, instance):
        alloc = IddeUGame(instance).run(rng=0).profile
        delivery = greedy_delivery(instance, alloc).profile
        report = strategy_report(instance, alloc, delivery)
        assert 0 < report.rate_fairness <= 1.0 + 1e-12
        p = report.rate_percentiles
        assert p["min"] <= p["median"] <= p["max"]


class TestPersistenceProperties:
    @FAST
    @given(instances(), st.integers(0, 2**10))
    def test_instance_round_trip(self, instance, salt):
        import tempfile
        from pathlib import Path

        from repro.io import load_instance, save_instance

        with tempfile.TemporaryDirectory() as tmp:
            path = save_instance(instance, Path(tmp) / f"i{salt}.npz")
            loaded = load_instance(path)
        assert np.array_equal(loaded.scenario.requests, instance.scenario.requests)
        assert np.allclose(loaded.scenario.user_xy, instance.scenario.user_xy)
        assert np.array_equal(loaded.topology.links, instance.topology.links)


class TestJainProperties:
    @FAST
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=40))
    def test_bounds(self, values):
        j = jain_index(np.array(values))
        assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9
