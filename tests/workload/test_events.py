"""Event vocabulary and WorkloadState folding tests."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.workload import (
    EpochBatch,
    Move,
    PopularityShift,
    UserJoin,
    UserLeave,
    WorkloadState,
)


class TestEvents:
    def test_to_dict_round_trips_fields(self):
        ev = Move(t=1.5, user=3, x=10.0, y=-2.0)
        assert ev.to_dict() == {
            "kind": "move",
            "t": 1.5,
            "user": 3,
            "x": 10.0,
            "y": -2.0,
        }

    def test_shift_order_serialises_as_list(self):
        ev = PopularityShift(t=0.1, order=(1, 0, 2))
        assert ev.to_dict()["order"] == [1, 0, 2]

    def test_batch_iterates_in_order(self):
        evs = (UserJoin(t=1.0, user=0), UserLeave(t=2.0, user=0))
        batch = EpochBatch(0, 0.0, 2.0, evs)
        assert batch.n_events == 2
        assert tuple(batch) == evs


class TestWorkloadState:
    def test_from_scenario_defaults_all_active(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        assert state.n_users == tiny_scenario.n_users
        assert state.n_active == tiny_scenario.n_users
        np.testing.assert_array_equal(state.positions, tiny_scenario.user_xy)

    def test_state_copies_do_not_alias(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        state.positions[0] = (999.0, 999.0)
        state.requests[:] = False
        assert tiny_scenario.user_xy[0, 0] != 999.0
        assert tiny_scenario.requests.any()

    def test_join_leave_flip_mask(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        state.apply((UserLeave(t=1.0, user=2),))
        assert not state.active[2]
        state.apply((UserJoin(t=2.0, user=2),))
        assert state.active[2]

    def test_move_sets_absolute_position(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        state.apply((Move(t=1.0, user=0, x=42.0, y=-7.0),))
        np.testing.assert_allclose(state.positions[0], (42.0, -7.0))

    def test_shift_permutes_request_columns(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        before = state.requests.copy()
        state.apply((PopularityShift(t=1.0, order=(1, 0)),))
        np.testing.assert_array_equal(state.requests, before[:, [1, 0]])

    def test_shift_rejects_non_permutation(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        with pytest.raises(ScenarioError, match="permutation"):
            state.apply((PopularityShift(t=1.0, order=(0, 0)),))

    def test_user_out_of_range(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        with pytest.raises(ScenarioError, match="out of range"):
            state.apply((UserJoin(t=1.0, user=99),))

    def test_scenario_zeroes_inactive_rows_only(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        state.apply((UserLeave(t=1.0, user=1),))
        snap = state.scenario(tiny_scenario)
        assert not snap.requests[1].any()
        # Pristine demand survives inside the state: re-arrival restores it.
        state.apply((UserJoin(t=2.0, user=1),))
        snap2 = state.scenario(tiny_scenario)
        np.testing.assert_array_equal(snap2.requests[1], tiny_scenario.requests[1])

    def test_scenario_user_count_guard(self, tiny_scenario):
        state = WorkloadState.from_scenario(tiny_scenario)
        bad = WorkloadState(
            np.zeros((2, 2)), np.ones(2, dtype=bool), np.zeros((2, 2), dtype=bool)
        )
        with pytest.raises(ScenarioError, match="users"):
            bad.scenario(tiny_scenario)
        assert state.scenario(tiny_scenario).n_users == tiny_scenario.n_users
