"""idde-events/1 JSONL round-trip and guard tests."""

import json

import pytest

from repro.errors import DatasetError
from repro.workload import (
    EVENTS_SCHEMA,
    Move,
    PopularityShift,
    UserJoin,
    UserLeave,
    load_events,
    poisson_zipf_stream,
    save_events,
)


@pytest.fixture
def sample_events():
    return [
        Move(t=1.5, user=2, x=10.0, y=20.0),
        UserLeave(t=2.0, user=0),
        UserJoin(t=3.25, user=0),
        PopularityShift(t=4.0, order=(1, 0)),
    ]


class TestRoundTrip:
    def test_exact(self, tmp_path, sample_events):
        path = tmp_path / "trace.jsonl"
        n = save_events(sample_events, path, n_users=6, n_data=2)
        assert n == 4
        assert list(load_events(path)) == sample_events

    def test_generated_stream_round_trips(self, tmp_path, tiny_scenario):
        path = tmp_path / "gen.jsonl"
        evs = list(poisson_zipf_stream(tiny_scenario, rng=0, n_events=200))
        save_events(
            evs, path, n_users=tiny_scenario.n_users, n_data=tiny_scenario.n_data
        )
        assert list(load_events(path)) == evs

    def test_save_is_streaming(self, tmp_path, tiny_scenario):
        # A lazy generator is consumed without materialisation.
        path = tmp_path / "lazy.jsonl"
        stream = poisson_zipf_stream(tiny_scenario, rng=1, n_events=50)
        assert save_events(stream, path, n_users=6, n_data=2) == 50

    def test_header_first_line(self, tmp_path, sample_events):
        path = tmp_path / "trace.jsonl"
        save_events(sample_events, path, n_users=6, n_data=2)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"schema": EVENTS_SCHEMA, "n_users": 6, "n_data": 2}


class TestGuards:
    def test_universe_mismatch(self, tmp_path, sample_events):
        path = tmp_path / "trace.jsonl"
        save_events(sample_events, path, n_users=6, n_data=2)
        with pytest.raises(DatasetError, match="users"):
            list(load_events(path, expect_users=7))
        with pytest.raises(DatasetError, match="items"):
            list(load_events(path, expect_data=3))
        assert len(list(load_events(path, expect_users=6, expect_data=2))) == 4

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "something-else/9"}\n')
        with pytest.raises(DatasetError, match="schema"):
            list(load_events(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError, match="header"):
            list(load_events(path))

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": EVENTS_SCHEMA, "n_users": 1, "n_data": 1})
            + "\n"
            + json.dumps({"kind": "teleport", "t": 1.0})
            + "\n"
        )
        with pytest.raises(DatasetError, match="teleport"):
            list(load_events(path))

    def test_malformed_event(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": EVENTS_SCHEMA, "n_users": 1, "n_data": 1})
            + "\n"
            + json.dumps({"kind": "move", "t": 1.0})
            + "\n"
        )
        with pytest.raises(DatasetError, match="malformed"):
            list(load_events(path))
