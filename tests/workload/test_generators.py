"""Poisson/Zipf stream generator and epoch-batching tests."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload import (
    Move,
    PopularityShift,
    StreamConfig,
    UserJoin,
    UserLeave,
    WorkloadState,
    batch_by_count,
    batch_by_time,
    poisson_zipf_stream,
)


class TestStreamConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(arrival_rate=-0.1)

    def test_zero_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(move_sigma=0.0)


class TestStream:
    def test_exact_event_count(self, tiny_scenario):
        evs = list(poisson_zipf_stream(tiny_scenario, rng=0, n_events=50))
        assert len(evs) == 50

    def test_deterministic_in_seed(self, tiny_scenario):
        a = list(poisson_zipf_stream(tiny_scenario, rng=7, n_events=40))
        b = list(poisson_zipf_stream(tiny_scenario, rng=7, n_events=40))
        assert a == b

    def test_timestamps_strictly_increase(self, tiny_scenario):
        evs = list(poisson_zipf_stream(tiny_scenario, rng=1, n_events=100))
        ts = [ev.t for ev in evs]
        assert all(t1 > t0 for t0, t1 in zip(ts, ts[1:]))

    def test_horizon_bounds_time(self, tiny_scenario):
        evs = list(poisson_zipf_stream(tiny_scenario, rng=2, horizon_s=5.0))
        assert all(ev.t < 5.0 for ev in evs)

    def test_infinite_stream_is_lazy(self, tiny_scenario):
        stream = poisson_zipf_stream(tiny_scenario, rng=3)
        evs = list(itertools.islice(stream, 25))
        assert len(evs) == 25

    def test_events_always_applicable(self, tiny_scenario):
        """Every emitted event folds into a state evolved from the same
        start: joins hit inactive users, leaves hit active ones, moves stay
        within the padded bounding box."""
        state = WorkloadState.from_scenario(tiny_scenario)
        for ev in poisson_zipf_stream(tiny_scenario, rng=4, n_events=300):
            if isinstance(ev, UserJoin):
                assert not state.active[ev.user]
            elif isinstance(ev, UserLeave):
                assert state.active[ev.user]
            elif isinstance(ev, PopularityShift):
                assert sorted(ev.order) == list(range(tiny_scenario.n_data))
            state.apply((ev,))
        assert isinstance(state.n_active, int)

    def test_moves_respect_bounds(self, tiny_scenario):
        xs = np.concatenate(
            [tiny_scenario.server_xy[:, 0], tiny_scenario.user_xy[:, 0]]
        )
        ys = np.concatenate(
            [tiny_scenario.server_xy[:, 1], tiny_scenario.user_xy[:, 1]]
        )
        pad = float(tiny_scenario.radius.max())
        cfg = StreamConfig(move_sigma=500.0)  # huge steps force clipping
        for ev in poisson_zipf_stream(tiny_scenario, rng=5, config=cfg, n_events=200):
            if isinstance(ev, Move):
                assert xs.min() - pad <= ev.x <= xs.max() + pad
                assert ys.min() - pad <= ev.y <= ys.max() + pad

    def test_dead_process_raises(self, tiny_scenario):
        cfg = StreamConfig(
            arrival_rate=0.0, departure_rate=0.0, move_rate=0.0, shift_rate=0.0
        )
        with pytest.raises(ConfigurationError, match="dead"):
            next(poisson_zipf_stream(tiny_scenario, rng=0, config=cfg, n_events=1))

    def test_initial_active_shape_guard(self, tiny_scenario):
        with pytest.raises(ConfigurationError):
            next(
                poisson_zipf_stream(
                    tiny_scenario,
                    rng=0,
                    n_events=1,
                    initial_active=np.ones(3, dtype=bool),
                )
            )


class TestBatching:
    def test_batch_by_count_emits_remainder(self, tiny_scenario):
        evs = list(poisson_zipf_stream(tiny_scenario, rng=0, n_events=23))
        batches = list(batch_by_count(evs, 10))
        assert [b.n_events for b in batches] == [10, 10, 3]
        assert [b.index for b in batches] == [0, 1, 2]
        assert [ev for b in batches for ev in b] == evs

    def test_batch_by_count_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            list(batch_by_count([], 0))

    def test_batch_by_time_windows(self, tiny_scenario):
        evs = list(poisson_zipf_stream(tiny_scenario, rng=1, n_events=60))
        epoch_s = 2.0
        batches = list(batch_by_time(evs, epoch_s))
        for b in batches:
            assert b.t_end - b.t_start == pytest.approx(epoch_s)
            for ev in b:
                assert b.t_start <= ev.t < b.t_end
        # Quiet windows are skipped, never emitted empty.
        assert all(b.n_events > 0 for b in batches)
        assert [ev for b in batches for ev in b] == evs

    def test_batch_by_time_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            list(batch_by_time([], 0.0))
