"""Delivery kernel-pair parity: reference vs batched greedy placement.

The batched kernel's claim is bit-for-bit equivalence — identical
placement sequence, identical floats, identical tracer observables — so
every comparison here is exact equality, never a tolerance (the
``repro.bench.delivery_parity`` discipline).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import DeliveryConfig
from repro.core.delivery import (
    _GainTable,
    attached_request_counts,
    greedy_delivery,
)
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.profiles import AllocationProfile
from repro.errors import ConfigurationError
from repro.obs.tracer import RecordingTracer

SEEDS = (0, 1, 2, 3)

CONFIGS = [
    DeliveryConfig(ratio_rule=True),
    DeliveryConfig(ratio_rule=True, min_gain_s_per_mb=0.01),
    DeliveryConfig(ratio_rule=False),
    DeliveryConfig(ratio_rule=False, min_gain_s=1.0),
]


def _small(seed: int) -> tuple[IDDEInstance, AllocationProfile]:
    instance = IDDEInstance.generate(n=8, m=30, k=4, density=1.5, seed=seed)
    alloc = IddeUGame(instance).run(rng=seed).profile
    return instance, alloc


def _run_pair(instance, alloc, cfg, tracer_ref=None, tracer_bat=None):
    ref = greedy_delivery(
        instance, alloc, replace(cfg, kernel="reference"), tracer=tracer_ref
    )
    bat = greedy_delivery(
        instance, alloc, replace(cfg, kernel="batched"), tracer=tracer_bat
    )
    return ref, bat


def _assert_identical(ref, bat):
    assert ref.placements == bat.placements
    assert ref.total_gain_s == bat.total_gain_s  # bitwise, not approx
    assert ref.iterations == bat.iterations
    assert np.array_equal(ref.profile.placed, bat.profile.placed)


def _delivery_events(tracer: RecordingTracer):
    return [
        (e.etype, tuple(sorted(e.fields.items())))
        for e in tracer.events
        if e.etype.startswith("delivery.")
    ]


class TestKernelParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: (
        f"{'ratio' if c.ratio_rule else 'abs'}-t{c.min_gain_s_per_mb if c.ratio_rule else c.min_gain_s:g}"
    ))
    def test_identical_on_generated_instances(self, seed, cfg):
        instance, alloc = _small(seed)
        ref, bat = _run_pair(instance, alloc, cfg)
        _assert_identical(ref, bat)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_traced_observables_identical(self, seed):
        """Placement events (server/item/gain/score), the terminal stop
        event, and the threshold-reject counter all match exactly."""
        instance, alloc = _small(seed)
        for cfg in CONFIGS:
            tr_ref, tr_bat = RecordingTracer(), RecordingTracer()
            ref, bat = _run_pair(instance, alloc, cfg, tr_ref, tr_bat)
            _assert_identical(ref, bat)
            assert _delivery_events(tr_ref) == _delivery_events(tr_bat)
            assert tr_ref.counters.get(
                "delivery.threshold_rejects", 0
            ) == tr_bat.counters.get("delivery.threshold_rejects", 0)

    def test_parity_on_line_fixture(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        for j in range(line_instance.n_users):
            alloc.server[j] = int(line_instance.scenario.covering_servers[j][0])
            alloc.channel[j] = 0
        for cfg in CONFIGS:
            ref, bat = _run_pair(line_instance, alloc, cfg)
            _assert_identical(ref, bat)

    def test_span_records_kernel(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        tracer = RecordingTracer()
        greedy_delivery(
            line_instance, alloc, DeliveryConfig(kernel="batched"), tracer=tracer
        )
        spans = [s for s in tracer.spans if s.name == "delivery.greedy"]
        assert spans and spans[0].attrs["kernel"] == "batched"

    def test_bad_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            DeliveryConfig(kernel="vectorised")


class TestTieBreaks:
    """Explicit argmax tie-break parity: equal scores must resolve to the
    lowest server index within an item and the lowest item index across
    items — in both kernels."""

    @pytest.fixture
    def symmetric(self):
        from ..conftest import make_instance, make_scenario

        # Two disconnected servers, each covering two users; every user
        # requests both (equal-sized) items, so every candidate scores
        # exactly the same float and only the tie-break picks the winner.
        rng = np.random.default_rng(0)
        server_xy = [[0.0, 0.0], [5000.0, 0.0]]
        user_xy = np.concatenate(
            [
                rng.uniform(-50, 50, size=(2, 2)),
                rng.uniform(-50, 50, size=(2, 2)) + [5000.0, 0.0],
            ]
        )
        requests = np.ones((4, 2), dtype=bool)
        sc = make_scenario(
            server_xy, user_xy, radius=300.0, storage=200.0,
            sizes=(30.0, 30.0), requests=requests,
        )
        inst = make_instance(sc, density=0.0)
        alloc = AllocationProfile.empty(4)
        alloc.server[:] = [0, 0, 1, 1]
        alloc.channel[:] = [0, 1, 0, 1]
        return inst, alloc

    @pytest.mark.parametrize("ratio_rule", [True, False])
    def test_lowest_server_then_lowest_item_wins(self, symmetric, ratio_rule):
        inst, alloc = symmetric
        cfg = DeliveryConfig(ratio_rule=ratio_rule)
        ref, bat = _run_pair(inst, alloc, cfg)
        _assert_identical(ref, bat)
        # With no links, each placement only helps its own server's users,
        # so the four candidates stay tied until placed: the reference scan
        # order (lowest server within an item, first item across items)
        # must be reproduced exactly.
        assert ref.placements == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestIncrementalInvariant:
    """Property: after every placement, the incrementally-maintained gain
    table is bitwise equal to a from-scratch rebuild (the batched kernel's
    correctness invariant)."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("ratio_rule", [True, False])
    def test_refresh_matches_rebuild(self, seed, ratio_rule):
        instance, alloc = _small(seed)
        result = greedy_delivery(
            instance, alloc, DeliveryConfig(ratio_rule=ratio_rule, kernel="batched")
        )
        assert result.placements  # the property must be exercised

        sizes = instance.scenario.sizes
        pc = instance.latency_model.path_cost
        cloud = instance.latency_model.cloud_cost
        counts = attached_request_counts(instance, alloc)
        best = np.tile(cloud * sizes[:, None], (1, instance.n_servers))
        table = _GainTable(best, sizes, pc, counts)
        for i, kk in result.placements:
            best[kk] = np.minimum(best[kk], sizes[kk] * pc[i, :])
            table.refresh_row(kk)
            fresh = _GainTable(best.copy(), sizes, pc, counts)
            assert np.array_equal(table.gains, fresh.gains)  # bitwise

    def test_tiled_build_matches_reference_matvec(self, monkeypatch):
        """Forcing a one-row tile exercises the K-block loop; every row of
        the build must equal the reference per-item matvec bitwise."""
        import repro.core.delivery as delivery_mod

        instance, alloc = _small(0)
        sizes = instance.scenario.sizes
        pc = instance.latency_model.path_cost
        cloud = instance.latency_model.cloud_cost
        counts = attached_request_counts(instance, alloc)
        best = np.tile(cloud * sizes[:, None], (1, instance.n_servers))

        monkeypatch.setattr(delivery_mod, "_GAIN_TILE_BYTES", 1)
        tiled = _GainTable(best, sizes, pc, counts).gains
        for kk in range(instance.n_data):
            expected = np.maximum(best[kk][None, :] - sizes[kk] * pc, 0.0) @ counts[kk]
            assert np.array_equal(tiled[kk], expected)

    def test_tile_size_does_not_change_placements(self, monkeypatch):
        import repro.core.delivery as delivery_mod

        instance, alloc = _small(1)
        wide = greedy_delivery(instance, alloc, DeliveryConfig(kernel="batched"))
        monkeypatch.setattr(delivery_mod, "_GAIN_TILE_BYTES", 1)
        narrow = greedy_delivery(instance, alloc, DeliveryConfig(kernel="batched"))
        _assert_identical(wide, narrow)


class TestCountsDtype:
    def test_float64_whole_numbers(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        for j in range(line_instance.n_users):
            alloc.server[j] = int(line_instance.scenario.covering_servers[j][0])
            alloc.channel[j] = 0
        counts = attached_request_counts(line_instance, alloc)
        assert counts.dtype == np.float64
        assert np.array_equal(counts, np.round(counts))  # still whole counts
