"""Solver base-class behaviour tests."""

import numpy as np
import pytest

from repro.core.profiles import AllocationProfile, DeliveryProfile
from repro.core.strategy import Solver
from repro.errors import StorageViolation


class BrokenSolver(Solver):
    """Returns a storage-violating profile — must be caught by validation."""

    name = "Broken"

    def _solve(self, instance, rng):
        alloc = AllocationProfile.empty(instance.n_users)
        delivery = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        delivery.placed[:, :] = True  # guaranteed overflow on small storage
        return alloc, delivery, {}


class NullSolver(Solver):
    """Does nothing: empty allocation, empty delivery."""

    name = "Null"

    def _solve(self, instance, rng):
        return (
            AllocationProfile.empty(instance.n_users),
            DeliveryProfile.empty(instance.n_servers, instance.n_data),
            {"marker": 7},
        )


class TestSolverBase:
    def test_validation_catches_bad_output(self, line_instance):
        with pytest.raises(StorageViolation):
            BrokenSolver().solve(line_instance, rng=0)

    def test_validation_can_be_disabled(self, line_instance):
        s = BrokenSolver().solve(line_instance, rng=0, validate=False)
        assert s.solver == "Broken"

    def test_null_solver_metrics(self, line_instance):
        s = NullSolver().solve(line_instance, rng=0)
        assert s.r_avg == 0.0
        assert s.l_avg_ms > 0  # everything from the cloud
        assert s.extras == {"marker": 7}

    def test_rng_coercion(self, line_instance):
        NullSolver().solve(line_instance)  # None
        NullSolver().solve(line_instance, rng=3)  # int
        NullSolver().solve(line_instance, rng=np.random.default_rng(0))

    def test_repr(self):
        assert "Null" in repr(NullSolver())
