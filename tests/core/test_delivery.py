"""Phase 2 greedy delivery tests (Algorithm 1 lines 22-26, Eq. 17)."""

import numpy as np
import pytest

from repro.config import DeliveryConfig
from repro.core.delivery import attached_request_counts, greedy_delivery
from repro.core.game import IddeUGame
from repro.core.objectives import average_delivery_latency_ms
from repro.core.profiles import AllocationProfile, DeliveryProfile


@pytest.fixture
def line_alloc(line_instance):
    """Users attached to their (unique) covering server."""
    alloc = AllocationProfile.empty(line_instance.n_users)
    for j in range(line_instance.n_users):
        cov = line_instance.scenario.covering_servers[j]
        alloc.server[j] = int(cov[0])
        alloc.channel[j] = 0
    return alloc


class TestAttachedCounts:
    def test_counts(self, line_instance, line_alloc):
        counts = attached_request_counts(line_instance, line_alloc)
        assert counts.shape == (3, 4)
        # 2 users per server, item j % 3.
        assert counts.sum() == line_instance.scenario.requests.sum()

    def test_unallocated_excluded(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        counts = attached_request_counts(line_instance, alloc)
        assert counts.sum() == 0


class TestGreedy:
    def test_respects_storage(self, line_instance, line_alloc):
        result = greedy_delivery(line_instance, line_alloc)
        result.profile.validate(line_instance.scenario)

    def test_reduces_latency(self, line_instance, line_alloc):
        empty = DeliveryProfile.empty(4, 3)
        before = average_delivery_latency_ms(line_instance, line_alloc, empty)
        result = greedy_delivery(line_instance, line_alloc)
        after = average_delivery_latency_ms(line_instance, line_alloc, result.profile)
        assert after < before

    def test_placements_monotone_improve(self, line_instance, line_alloc):
        """Replaying the greedy's placement sequence never increases L_avg."""
        result = greedy_delivery(line_instance, line_alloc)
        profile = DeliveryProfile.empty(4, 3)
        last = average_delivery_latency_ms(line_instance, line_alloc, profile)
        for i, k in result.placements:
            profile.placed[i, k] = True
            cur = average_delivery_latency_ms(line_instance, line_alloc, profile)
            assert cur <= last + 1e-9
            last = cur

    def test_no_useless_replicas(self, line_instance, line_alloc):
        """Every placement the greedy makes strictly reduced latency."""
        result = greedy_delivery(line_instance, line_alloc)
        profile = DeliveryProfile.empty(4, 3)
        last = average_delivery_latency_ms(line_instance, line_alloc, profile)
        for i, k in result.placements:
            profile.placed[i, k] = True
            cur = average_delivery_latency_ms(line_instance, line_alloc, profile)
            assert cur < last - 1e-12
            last = cur

    def test_empty_alloc_places_nothing(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        result = greedy_delivery(line_instance, alloc)
        assert result.profile.n_replicas == 0

    def test_gain_accounting(self, line_instance, line_alloc):
        result = greedy_delivery(line_instance, line_alloc)
        empty = DeliveryProfile.empty(4, 3)
        before = average_delivery_latency_ms(line_instance, line_alloc, empty)
        after = average_delivery_latency_ms(line_instance, line_alloc, result.profile)
        total_requests = line_instance.scenario.requests.sum()
        # total_gain_s is the sum over requests; convert to the average.
        assert (before - after) == pytest.approx(
            1000.0 * result.total_gain_s / total_requests, rel=1e-9
        )

    def test_zero_storage_places_nothing(self, line_instance, line_alloc):
        from ..conftest import make_scenario
        from repro.core.instance import IDDEInstance

        sc = line_instance.scenario
        tight = make_scenario(
            sc.server_xy,
            sc.user_xy,
            radius=150.0,
            storage=0.0,
            sizes=tuple(sc.sizes),
            requests=sc.requests,
        )
        inst = IDDEInstance(tight, line_instance.topology)
        result = greedy_delivery(inst, line_alloc)
        assert result.profile.n_replicas == 0

    def test_weights_override(self, line_instance, line_alloc):
        weights = np.zeros((3, 4))
        weights[0, 0] = 5.0  # only item 0 at server 0 is worth anything
        result = greedy_delivery(line_instance, line_alloc, weights=weights)
        assert result.profile.placed[0, 0]
        # No weight elsewhere: item 1/2 replicas only placed if they reduce
        # the weighted objective, which they cannot.
        assert result.profile.placed[:, 1:].sum() == 0

    def test_weights_shape_checked(self, line_instance, line_alloc):
        with pytest.raises(ValueError):
            greedy_delivery(line_instance, line_alloc, weights=np.zeros((2, 2)))


class TestIterationCounting:
    def test_iterations_count_productive_sweeps_only(self, line_instance, line_alloc):
        """Regression: the terminal sweep that places nothing used to be
        counted, reporting ``len(placements) + 1``."""
        result = greedy_delivery(line_instance, line_alloc)
        assert result.placements
        assert result.iterations == len(result.placements)

    def test_no_placement_means_zero_iterations(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        result = greedy_delivery(line_instance, alloc)
        assert result.iterations == 0


class TestStoppingThresholds:
    """The two selection rules score in different units (s/MB vs s), so
    each rule must consult only its own explicitly-suffixed threshold."""

    def test_min_gain_s_ignored_under_ratio_rule(self, line_instance, line_alloc):
        base = greedy_delivery(line_instance, line_alloc, DeliveryConfig(ratio_rule=True))
        huge_abs = greedy_delivery(
            line_instance,
            line_alloc,
            DeliveryConfig(ratio_rule=True, min_gain_s=1e9),
        )
        assert huge_abs.placements == base.placements

    def test_min_gain_s_per_mb_ignored_under_absolute_rule(self, line_instance, line_alloc):
        base = greedy_delivery(line_instance, line_alloc, DeliveryConfig(ratio_rule=False))
        huge_ratio = greedy_delivery(
            line_instance,
            line_alloc,
            DeliveryConfig(ratio_rule=False, min_gain_s_per_mb=1e9),
        )
        assert huge_ratio.placements == base.placements

    @pytest.mark.parametrize(
        "cfg",
        [
            DeliveryConfig(ratio_rule=True, min_gain_s_per_mb=1e9),
            DeliveryConfig(ratio_rule=False, min_gain_s=1e9),
        ],
    )
    def test_unreachable_threshold_blocks_every_placement(
        self, line_instance, line_alloc, cfg
    ):
        result = greedy_delivery(line_instance, line_alloc, cfg)
        assert result.profile.n_replicas == 0
        assert result.iterations == 0


class TestRatioVsAbsolute:
    def test_ratio_rule_wins_when_big_item_crowds_storage(self):
        """Eq. (17)'s per-byte rule beats absolute gain when one big item
        would crowd out several small high-value placements — the regime
        the paper's ratio normalisation targets (ablation A1)."""
        from ..conftest import make_instance, make_scenario

        # One server, 90 MB of storage.  Item 0 is 90 MB with 4 requesters;
        # items 1-3 are 30 MB with 10 requesters each.  Absolute gain picks
        # the big item (0.6 s saved) and fills the disk; the per-byte rule
        # picks the three small items (1.5 s saved).
        n_users = 34
        requests = np.zeros((n_users, 4), dtype=bool)
        requests[:4, 0] = True
        for u in range(4, 14):
            requests[u, 1] = True
        for u in range(14, 24):
            requests[u, 2] = True
        for u in range(24, 34):
            requests[u, 3] = True
        rng = np.random.default_rng(0)
        sc = make_scenario(
            [[0.0, 0.0]],
            rng.uniform(-50, 50, size=(n_users, 2)),
            radius=300.0,
            storage=90.0,
            sizes=(90.0, 30.0, 30.0, 30.0),
            requests=requests,
        )
        inst = make_instance(sc, density=0.0)
        alloc = AllocationProfile.empty(n_users)
        alloc.server[:] = 0
        alloc.channel[:] = np.arange(n_users) % 2
        ratio = greedy_delivery(inst, alloc, DeliveryConfig(ratio_rule=True))
        absolute = greedy_delivery(inst, alloc, DeliveryConfig(ratio_rule=False))
        l_ratio = average_delivery_latency_ms(inst, alloc, ratio.profile)
        l_abs = average_delivery_latency_ms(inst, alloc, absolute.profile)
        assert l_ratio < l_abs
        assert absolute.profile.placed[0, 0]
        assert not ratio.profile.placed[0, 0]

    def test_both_rules_feasible_on_generated_instance(self, medium_instance):
        game = IddeUGame(medium_instance)
        alloc = game.run(rng=0).profile
        for rule in (True, False):
            result = greedy_delivery(
                medium_instance, alloc, DeliveryConfig(ratio_rule=rule)
            )
            result.profile.validate(medium_instance.scenario)


class TestThresholdRejectCount:
    """The terminal sweep's ``rejected`` count covers *every* positive-gain
    candidate the stopping threshold killed — not just each item's argmax
    server (the old undercount)."""

    def test_counts_all_positive_gain_candidates(self, line_instance, line_alloc):
        from repro.core.delivery import attached_request_counts
        from repro.obs.tracer import RecordingTracer

        cfg = DeliveryConfig(min_gain_s_per_mb=1e9)  # kills every placement
        tracer = RecordingTracer()
        result = greedy_delivery(line_instance, line_alloc, cfg, tracer=tracer)
        assert result.placements == []

        stops = [e for e in tracer.events if e.etype == "delivery.stop"]
        assert len(stops) == 1
        rejected = stops[0].fields["rejected"]
        assert tracer.counters["delivery.threshold_rejects"] == rejected

        # Independent recomputation of the first (= terminal) sweep.
        pc = line_instance.latency_model.path_cost
        cloud = line_instance.latency_model.cloud_cost
        counts = attached_request_counts(line_instance, line_alloc).astype(float)
        sizes = line_instance.scenario.sizes
        residual = line_instance.scenario.storage.astype(float)
        per_item = []
        for kk in range(line_instance.n_data):
            s_k = sizes[kk]
            feasible = residual >= s_k
            improvement = np.maximum(cloud * s_k - s_k * pc, 0.0)
            gains = improvement @ counts[kk]
            per_item.append(int(((gains > 0.0) & feasible).sum()))
        assert rejected == sum(per_item)
        # The scenario exercises the fixed path: at least one item has
        # several positive-gain servers, so the old argmax-only counter
        # (at most one per item) necessarily undercounted.
        assert max(per_item) > 1
        assert rejected > sum(1 for p in per_item if p > 0)

    def test_untraced_run_unaffected(self, line_instance, line_alloc):
        cfg = DeliveryConfig(min_gain_s_per_mb=1e9)
        result = greedy_delivery(line_instance, line_alloc, cfg)
        assert result.placements == []
        assert result.iterations == 0
