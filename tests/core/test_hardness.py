"""NP-hardness gadget tests."""

import numpy as np
import pytest

from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.hardness import WkspInput, interference_gadget, wksp_gadget
from repro.core.profiles import AllocationProfile
from repro.errors import ScenarioError


class TestWkspInput:
    def test_validation(self):
        with pytest.raises(ScenarioError):
            WkspInput(sets=((1,),), weights=(1.0, 2.0))
        with pytest.raises(ScenarioError):
            WkspInput(sets=((1,),), weights=(-1.0,))
        with pytest.raises(ScenarioError):
            WkspInput(sets=((),), weights=(1.0,))


class TestWkspGadget:
    @pytest.fixture
    def wksp(self):
        # Two disjoint sets {1,2} and {3}, one conflicting set {2,3}.
        return WkspInput(
            sets=((1, 2), (3,), (2, 3)),
            weights=(2.0, 1.0, 2.0),
        )

    def test_structure(self, wksp):
        instance, weights = wksp_gadget(wksp)
        assert instance.n_servers == 3  # universe {1, 2, 3}
        assert instance.n_data == 3
        assert np.allclose(weights, [2.0, 1.0, 2.0])
        # One item slot per server.
        assert np.allclose(instance.scenario.storage, instance.scenario.sizes[0])

    def test_element_isolation(self, wksp):
        """Element servers are radio-isolated and network-isolated."""
        instance, _ = wksp_gadget(wksp)
        assert instance.topology.n_links == 0
        # Each user is covered by exactly one element server.
        assert all(len(v) == 1 for v in instance.scenario.covering_servers)

    def test_delivery_selects_a_packing(self, wksp):
        """The greedy's placement never assigns two items to one slot, so
        the selected sets are element-disjoint — a feasible packing."""
        instance, _ = wksp_gadget(wksp)
        alloc = AllocationProfile.empty(instance.n_users)
        for j in range(instance.n_users):
            alloc.server[j] = int(instance.scenario.covering_servers[j][0])
            alloc.channel[j] = j % 3
        result = greedy_delivery(instance, alloc)
        per_server = result.profile.placed.sum(axis=1)
        assert (per_server <= 1).all()

    def test_greedy_prefers_heavier_sets(self, wksp):
        """Latency reduction is proportional to set weight, so the greedy
        picks high-weight placements first."""
        instance, weights = wksp_gadget(wksp)
        alloc = AllocationProfile.empty(instance.n_users)
        for j in range(instance.n_users):
            alloc.server[j] = int(instance.scenario.covering_servers[j][0])
            alloc.channel[j] = j % 3
        result = greedy_delivery(instance, alloc)
        placed_items = {k for _, k in result.placements}
        # The weight-1 set {3} competes with weight-2 {2,3} on element 3;
        # somewhere a weight-2 item must have been chosen.
        assert any(weights[k] == 2.0 for k in placed_items)


class TestInterferenceGadget:
    def test_structure(self):
        instance = interference_gadget(5)
        assert instance.n_servers == 5
        assert (instance.scenario.channels == 1).all()
        # Overlap users are covered by two servers, end users by one.
        counts = [len(v) for v in instance.scenario.covering_servers]
        assert counts[0] == 1 and counts[-1] == 1
        assert all(c == 2 for c in counts[1:-1])

    def test_chain_validation(self):
        with pytest.raises(ScenarioError):
            interference_gadget(1)

    def test_game_solves_the_colouring(self):
        """Best-response dynamics on the gadget converge and spread the
        overlap users across distinct servers where possible."""
        instance = interference_gadget(4)
        result = IddeUGame(instance).run(rng=0)
        assert result.converged
        profile = result.profile
        # No server ends up with three users while a covering alternative
        # sits empty (a strictly improving move would exist).
        loads = np.bincount(
            profile.server[profile.allocated], minlength=instance.n_servers
        )
        assert loads.max() <= 2
