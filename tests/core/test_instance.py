"""IDDEInstance tests."""

import numpy as np
import pytest

from repro.config import ScenarioConfig, WorkloadConfig
from repro.core.instance import IDDEInstance
from repro.datasets.eua import synthetic_eua
from repro.errors import ScenarioError
from repro.topology.graph import build_topology

from ..conftest import make_scenario


class TestConstruction:
    def test_topology_size_checked(self, tiny_scenario):
        topo = build_topology(5, 1.0, 0)  # wrong server count
        with pytest.raises(ScenarioError):
            IDDEInstance(tiny_scenario, topo)

    def test_properties(self, tiny_instance):
        assert tiny_instance.n_servers == 3
        assert tiny_instance.n_users == 6
        assert tiny_instance.n_data == 2

    def test_requests_per_item(self, tiny_instance):
        # conftest assigns item j % K: 3 users each.
        assert tiny_instance.requests_per_item.tolist() == [3, 3]

    def test_new_engine_fresh(self, tiny_instance):
        e1 = tiny_instance.new_engine()
        e1.assign(0, 0, 0)
        e2 = tiny_instance.new_engine()
        assert e2.channel_count.sum() == 0

    def test_latency_model_cached(self, tiny_instance):
        assert tiny_instance.latency_model is tiny_instance.latency_model


class TestGenerate:
    def test_dimensions(self):
        inst = IDDEInstance.generate(n=12, m=40, k=3, density=1.5, seed=9)
        assert inst.n_servers == 12 and inst.n_users == 40 and inst.n_data == 3
        assert inst.topology.n_links == 18

    def test_deterministic(self):
        a = IDDEInstance.generate(n=10, m=20, k=2, seed=4)
        b = IDDEInstance.generate(n=10, m=20, k=2, seed=4)
        assert np.allclose(a.scenario.server_xy, b.scenario.server_xy)
        assert np.array_equal(a.topology.links, b.topology.links)
        assert np.array_equal(a.scenario.requests, b.scenario.requests)

    def test_seed_changes_instance(self):
        a = IDDEInstance.generate(n=10, m=20, k=2, seed=4)
        b = IDDEInstance.generate(n=10, m=20, k=2, seed=5)
        assert not np.allclose(a.scenario.server_xy, b.scenario.server_xy)

    def test_shared_pool(self):
        pool = synthetic_eua(0)
        inst = IDDEInstance.generate(n=10, m=20, k=2, seed=1, pool=pool)
        # Every chosen server position exists in the pool.
        for row in inst.scenario.server_xy:
            assert (np.isclose(pool.server_xy, row).all(axis=1)).any()

    def test_custom_config(self):
        cfg = ScenarioConfig(workload=WorkloadConfig(requests_per_user=2))
        inst = IDDEInstance.generate(n=8, m=15, k=4, seed=2, config=cfg)
        assert (inst.scenario.requests.sum(axis=1) == 2).all()

    def test_repr(self, small_instance):
        assert "IDDEInstance(N=8, M=30, K=4" in repr(small_instance)
