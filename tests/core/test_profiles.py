"""Allocation/delivery profile tests (Definitions 1-2, Eqs. 1 and 6)."""

import numpy as np
import pytest

from repro.core.profiles import UNALLOCATED, AllocationProfile, DeliveryProfile
from repro.errors import AllocationError, CoverageError, DeliveryError, StorageViolation

from ..conftest import make_scenario


class TestAllocationProfile:
    def test_empty(self):
        p = AllocationProfile.empty(5)
        assert p.n_users == 5
        assert p.n_allocated == 0
        assert not p.allocated.any()

    def test_users_of_server_and_channel(self):
        p = AllocationProfile(
            np.array([0, 0, 1, UNALLOCATED]), np.array([0, 1, 0, UNALLOCATED])
        )
        assert p.users_of_server(0).tolist() == [0, 1]
        assert p.users_of_channel(0, 1).tolist() == [1]
        assert p.n_allocated == 3

    def test_inconsistent_unallocated_rejected(self):
        with pytest.raises(AllocationError):
            AllocationProfile(np.array([0]), np.array([UNALLOCATED]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AllocationError):
            AllocationProfile(np.array([0, 1]), np.array([0]))

    def test_validate_coverage(self, tiny_scenario):
        p = AllocationProfile.empty(tiny_scenario.n_users)
        p.server[0], p.channel[0] = 0, 0
        p.validate(tiny_scenario)  # full overlap: fine

    def test_validate_rejects_uncovered(self):
        sc = make_scenario(
            [[0.0, 0.0], [10_000.0, 0.0]], [[1.0, 0.0]], radius=100.0
        )
        p = AllocationProfile.empty(1)
        p.server[0], p.channel[0] = 1, 0
        with pytest.raises(CoverageError):
            p.validate(sc)

    def test_validate_rejects_bad_channel(self, tiny_scenario):
        p = AllocationProfile.empty(tiny_scenario.n_users)
        p.server[0], p.channel[0] = 0, 99
        with pytest.raises(AllocationError):
            p.validate(tiny_scenario)

    def test_validate_rejects_bad_server_index(self, tiny_scenario):
        p = AllocationProfile.empty(tiny_scenario.n_users)
        p.server[0], p.channel[0] = 42, 0
        with pytest.raises(AllocationError):
            p.validate(tiny_scenario)

    def test_validate_rejects_wrong_user_count(self, tiny_scenario):
        with pytest.raises(AllocationError):
            AllocationProfile.empty(3).validate(tiny_scenario)

    def test_copy_is_independent(self):
        p = AllocationProfile.empty(2)
        q = p.copy()
        q.server[0], q.channel[0] = 0, 0
        assert p.n_allocated == 0 and q.n_allocated == 1

    def test_equality(self):
        a = AllocationProfile.empty(2)
        b = AllocationProfile.empty(2)
        assert a == b
        b.server[0], b.channel[0] = 0, 0
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(AllocationProfile.empty(1))


class TestDeliveryProfile:
    def test_empty(self):
        p = DeliveryProfile.empty(3, 4)
        assert p.n_servers == 3 and p.n_data == 4 and p.n_replicas == 0

    def test_servers_holding(self):
        p = DeliveryProfile.empty(3, 2)
        p.placed[0, 1] = True
        p.placed[2, 1] = True
        assert p.servers_holding(1).tolist() == [0, 2]
        assert p.servers_holding(0).tolist() == []

    def test_used_and_residual_storage(self, tiny_scenario):
        p = DeliveryProfile.empty(3, 2)
        p.placed[0, 0] = True  # 30 MB
        p.placed[0, 1] = True  # 60 MB
        used = p.used_storage(tiny_scenario.sizes)
        assert used[0] == pytest.approx(90.0)
        res = p.residual_storage(tiny_scenario)
        assert res[0] == pytest.approx(110.0)

    def test_validate_storage(self, tiny_scenario):
        p = DeliveryProfile.empty(3, 2)
        p.placed[:] = True
        p.validate(tiny_scenario)  # 90 <= 200 everywhere

    def test_validate_rejects_overflow(self):
        sc = make_scenario([[0.0, 0.0]], [[1.0, 0.0]], storage=50.0, sizes=(60.0,))
        p = DeliveryProfile.empty(1, 1)
        p.placed[0, 0] = True
        with pytest.raises(StorageViolation):
            p.validate(sc)

    def test_validate_rejects_shape(self, tiny_scenario):
        with pytest.raises(DeliveryError):
            DeliveryProfile.empty(2, 2).validate(tiny_scenario)

    def test_one_dim_rejected(self):
        with pytest.raises(DeliveryError):
            DeliveryProfile(np.zeros(3, dtype=bool))

    def test_copy_and_equality(self):
        p = DeliveryProfile.empty(2, 2)
        q = p.copy()
        assert p == q
        q.placed[0, 0] = True
        assert p != q

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DeliveryProfile.empty(1, 1))
