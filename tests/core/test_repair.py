"""repair_allocation tests: the vectorised hot path vs the loop formulation."""

import numpy as np
import pytest

from repro.core.game import IddeUGame
from repro.core.profiles import UNALLOCATED, AllocationProfile
from repro.core.repair import repair_allocation


def _loop_repair(instance, alloc, active=None):
    """The straightforward per-user formulation the vectorised path must match."""
    scenario = instance.scenario
    repaired = alloc.copy()
    detached = 0
    mask = (
        np.ones(instance.n_users, dtype=bool)
        if active is None
        else np.asarray(active, dtype=bool)
    )
    for j in range(instance.n_users):
        s = repaired.server[j]
        if s == UNALLOCATED:
            continue
        ok = (
            scenario.coverage[s, j]
            and repaired.channel[j] < scenario.channels[s]
            and mask[j]
        )
        if not ok:
            repaired.server[j] = UNALLOCATED
            repaired.channel[j] = UNALLOCATED
            detached += 1
    return repaired, detached


@pytest.fixture(scope="module")
def equilibrium(small_instance):
    return IddeUGame(small_instance).run(rng=0).profile


class TestParity:
    def test_matches_loop_on_shifted_positions(self, small_instance, equilibrium):
        # Perturb positions so some users genuinely fall out of coverage.
        rng = np.random.default_rng(3)
        scen = small_instance.scenario
        moved = scen.user_xy + rng.normal(0.0, 400.0, size=scen.user_xy.shape)
        from repro.core.instance import IDDEInstance
        from repro.types import Scenario

        shifted = IDDEInstance(
            Scenario(
                server_xy=scen.server_xy,
                radius=scen.radius,
                storage=scen.storage,
                channels=scen.channels,
                user_xy=moved,
                power=scen.power,
                rmax=scen.rmax,
                sizes=scen.sizes,
                requests=scen.requests,
            ),
            small_instance.topology,
            small_instance.radio,
        )
        vec, n_vec = repair_allocation(shifted, equilibrium)
        loop, n_loop = _loop_repair(shifted, equilibrium)
        assert n_vec == n_loop > 0
        np.testing.assert_array_equal(vec.server, loop.server)
        np.testing.assert_array_equal(vec.channel, loop.channel)

    def test_matches_loop_with_active_mask(self, small_instance, equilibrium):
        rng = np.random.default_rng(4)
        active = rng.random(small_instance.n_users) < 0.6
        vec, n_vec = repair_allocation(small_instance, equilibrium, active)
        loop, n_loop = _loop_repair(small_instance, equilibrium, active)
        assert n_vec == n_loop
        np.testing.assert_array_equal(vec.server, loop.server)
        np.testing.assert_array_equal(vec.channel, loop.channel)

    def test_matches_loop_with_shrunk_channels(self, small_instance, equilibrium):
        from repro.core.instance import IDDEInstance
        from repro.types import Scenario

        scen = small_instance.scenario
        shrunk = IDDEInstance(
            Scenario(
                server_xy=scen.server_xy,
                radius=scen.radius,
                storage=scen.storage,
                channels=np.ones_like(scen.channels),
                user_xy=scen.user_xy,
                power=scen.power,
                rmax=scen.rmax,
                sizes=scen.sizes,
                requests=scen.requests,
            ),
            small_instance.topology,
            small_instance.radio,
        )
        vec, n_vec = repair_allocation(shrunk, equilibrium)
        loop, n_loop = _loop_repair(shrunk, equilibrium)
        assert n_vec == n_loop
        np.testing.assert_array_equal(vec.server, loop.server)
        np.testing.assert_array_equal(vec.channel, loop.channel)


class TestBehaviour:
    def test_noop_on_feasible_profile(self, small_instance, equilibrium):
        repaired, detached = repair_allocation(small_instance, equilibrium)
        assert detached == 0
        np.testing.assert_array_equal(repaired.server, equilibrium.server)

    def test_never_mutates_input(self, small_instance, equilibrium):
        before = equilibrium.server.copy()
        active = np.zeros(small_instance.n_users, dtype=bool)
        repaired, detached = repair_allocation(small_instance, equilibrium, active)
        np.testing.assert_array_equal(equilibrium.server, before)
        assert detached == int(equilibrium.allocated.sum())
        assert repaired.n_allocated == 0

    def test_detached_users_fully_cleared(self, small_instance, equilibrium):
        active = np.zeros(small_instance.n_users, dtype=bool)
        repaired, _ = repair_allocation(small_instance, equilibrium, active)
        assert (repaired.server == UNALLOCATED).all()
        assert (repaired.channel == UNALLOCATED).all()

    def test_empty_profile(self, small_instance):
        empty = AllocationProfile.empty(small_instance.n_users)
        repaired, detached = repair_allocation(small_instance, empty)
        assert detached == 0
        assert repaired.n_allocated == 0
