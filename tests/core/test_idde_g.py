"""IDDE-G solver composition tests."""

import pytest

from repro.config import DeliveryConfig, GameConfig
from repro.core.idde_g import IddeG
from repro.core.objectives import average_data_rate, average_delivery_latency_ms


class TestIddeG:
    def test_solves_and_validates(self, small_instance):
        strategy = IddeG().solve(small_instance, rng=0)
        assert strategy.solver == "IDDE-G"
        assert strategy.r_avg > 0
        assert strategy.l_avg_ms >= 0
        assert strategy.wall_time_s > 0

    def test_extras(self, small_instance):
        strategy = IddeG().solve(small_instance, rng=0)
        assert strategy.extras["game_converged"]
        assert strategy.extras["is_nash"]
        assert strategy.extras["replicas"] == strategy.delivery.n_replicas

    def test_objectives_consistent(self, small_instance):
        s = IddeG().solve(small_instance, rng=0)
        assert s.r_avg == pytest.approx(
            average_data_rate(small_instance, s.allocation)
        )
        assert s.l_avg_ms == pytest.approx(
            average_delivery_latency_ms(small_instance, s.allocation, s.delivery)
        )

    def test_deterministic_with_round_robin(self, small_instance):
        a = IddeG().solve(small_instance, rng=0)
        b = IddeG().solve(small_instance, rng=0)
        assert a.allocation == b.allocation
        assert a.delivery == b.delivery

    def test_custom_configs(self, small_instance):
        solver = IddeG(
            game=GameConfig(schedule="best-gain-winner"),
            delivery=DeliveryConfig(ratio_rule=False),
        )
        s = solver.solve(small_instance, rng=0)
        assert s.extras["is_nash"]

    def test_potential_trace_opt_in(self, small_instance):
        s = IddeG(track_potential=True).solve(small_instance, rng=0)
        assert "potential_trace" in s.extras
        assert len(s.extras["potential_trace"]) >= 1

    def test_no_trace_by_default(self, small_instance):
        s = IddeG().solve(small_instance, rng=0)
        assert "potential_trace" not in s.extras
