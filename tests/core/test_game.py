"""IDDE-U game tests: convergence, Nash certification, schedules."""

import numpy as np
import pytest

from repro.config import GameConfig
from repro.core.game import IddeUGame
from repro.core.objectives import average_data_rate
from repro.core.profiles import AllocationProfile

SCHEDULES = ("round-robin", "best-gain-winner", "random-winner")


class TestConvergence:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_converges_to_nash(self, tiny_instance, schedule):
        game = IddeUGame(tiny_instance, GameConfig(schedule=schedule))
        result = game.run(rng=0)
        assert result.converged
        assert result.is_nash
        assert game.is_nash(result.profile)

    def test_all_users_allocated(self, tiny_instance):
        result = IddeUGame(tiny_instance).run(rng=0)
        assert result.profile.n_allocated == tiny_instance.n_users

    def test_uncovered_users_stay_unallocated(self, line_instance):
        result = IddeUGame(line_instance).run(rng=0)
        # Every user in line_instance is covered by exactly one server.
        assert result.profile.n_allocated == line_instance.n_users
        result.profile.validate(line_instance.scenario)

    def test_profile_valid(self, small_instance):
        result = IddeUGame(small_instance).run(rng=1)
        result.profile.validate(small_instance.scenario)
        assert result.is_nash

    def test_max_rounds_truncation(self, small_instance):
        game = IddeUGame(small_instance, GameConfig(max_rounds=1))
        result = game.run(rng=0)
        # One sweep makes moves, so the game cannot certify convergence.
        assert not result.converged
        assert not result.is_nash

    def test_stats_populated(self, tiny_instance):
        result = IddeUGame(tiny_instance).run(rng=0)
        assert result.moves >= tiny_instance.n_users  # everyone moved in
        assert result.rounds >= 1
        assert result.wall_time_s > 0


class TestEquilibriumQuality:
    def test_beats_random_channel_allocation(self, medium_instance):
        """The equilibrium's average rate beats naive random allocation."""
        result = IddeUGame(medium_instance).run(rng=0)
        r_nash = average_data_rate(medium_instance, result.profile)
        rng = np.random.default_rng(0)
        rates = []
        for _ in range(5):
            alloc = AllocationProfile.empty(medium_instance.n_users)
            for j in range(medium_instance.n_users):
                cov = medium_instance.scenario.covering_servers[j]
                if len(cov) == 0:
                    continue
                i = int(cov[rng.integers(0, len(cov))])
                alloc.server[j] = i
                alloc.channel[j] = int(
                    rng.integers(0, medium_instance.scenario.channels[i])
                )
            rates.append(average_data_rate(medium_instance, alloc))
        assert r_nash > np.mean(rates)

    def test_single_user_gets_best_channel(self, tiny_scenario):
        from ..conftest import make_instance, make_scenario

        sc = make_scenario([[0.0, 0.0], [500.0, 0.0]], [[10.0, 0.0]], radius=1000.0)
        inst = make_instance(sc)
        result = IddeUGame(inst).run(rng=0)
        # Solo user: any channel is interference-free; must be allocated to
        # one of the covering servers (benefit 1 everywhere).
        assert result.profile.n_allocated == 1


class TestWarmStart:
    def test_initial_profile_respected(self, tiny_instance):
        game = IddeUGame(tiny_instance)
        cold = game.run(rng=0)
        warm = game.run(rng=0, initial=cold.profile)
        # Warm-starting from an equilibrium converges with zero moves.
        assert warm.moves == 0
        assert warm.profile == cold.profile

    def test_invalid_initial_rejected(self, tiny_instance):
        from repro.errors import AllocationError

        bad = AllocationProfile.empty(tiny_instance.n_users)
        bad.server[0], bad.channel[0] = 0, 99
        with pytest.raises(AllocationError):
            IddeUGame(tiny_instance).run(rng=0, initial=bad)


class TestDeterminism:
    @pytest.mark.parametrize("schedule", ["round-robin", "best-gain-winner"])
    def test_deterministic_schedules(self, small_instance, schedule):
        cfg = GameConfig(schedule=schedule)
        a = IddeUGame(small_instance, cfg).run(rng=0)
        b = IddeUGame(small_instance, cfg).run(rng=0)
        assert a.profile == b.profile

    def test_random_winner_seed_dependent(self, small_instance):
        cfg = GameConfig(schedule="random-winner")
        a = IddeUGame(small_instance, cfg).run(rng=0)
        b = IddeUGame(small_instance, cfg).run(rng=0)
        assert a.profile == b.profile  # same seed => same equilibrium


class TestNashCertificate:
    def test_rejects_non_equilibrium(self, tiny_instance):
        game = IddeUGame(tiny_instance)
        # All users piled on one channel is not an equilibrium when another
        # channel is free.
        alloc = AllocationProfile.empty(tiny_instance.n_users)
        alloc.server[:] = 0
        alloc.channel[:] = 0
        assert not game.is_nash(alloc)

    def test_accepts_equilibrium(self, tiny_instance):
        result = IddeUGame(tiny_instance).run(rng=0)
        assert IddeUGame(tiny_instance).is_nash(result.profile)


class TestPotentialTrace:
    def test_trace_recorded(self, tiny_instance):
        game = IddeUGame(tiny_instance, track_potential=True)
        result = game.run(rng=0)
        assert len(result.potential_trace) == result.moves + 1
