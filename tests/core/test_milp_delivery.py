"""Exact MILP delivery oracle tests (HiGHS via scipy)."""

import numpy as np
import pytest

from repro.core.brute_force import optimal_delivery
from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.objectives import average_delivery_latency_ms
from repro.core.profiles import AllocationProfile
from repro.solvers import optimal_delivery_milp


def equilibrium(instance):
    return IddeUGame(instance).run(rng=0).profile


class TestAgainstBruteForce:
    def test_matches_exhaustive_optimum(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        for j in range(line_instance.n_users):
            cov = line_instance.scenario.covering_servers[j]
            alloc.server[j] = int(cov[0])
            alloc.channel[j] = 0
        _, l_brute = optimal_delivery(line_instance, alloc)
        milp = optimal_delivery_milp(line_instance, alloc)
        assert milp.l_avg_ms == pytest.approx(l_brute, abs=1e-6)

    def test_matches_on_random_micro_instances(self):
        from repro.core.instance import IDDEInstance
        from repro.topology.graph import build_topology
        from ..conftest import make_scenario

        for seed in range(3):
            rng = np.random.default_rng(seed)
            sc = make_scenario(
                rng.uniform(0, 300, size=(3, 2)),
                rng.uniform(0, 300, size=(4, 2)),
                radius=600.0,
                storage=float(rng.uniform(50, 120)),
                sizes=(30.0, 60.0),
            )
            instance = IDDEInstance(sc, build_topology(3, 2.0, seed))
            alloc = equilibrium(instance)
            _, l_brute = optimal_delivery(instance, alloc)
            milp = optimal_delivery_milp(instance, alloc)
            assert milp.l_avg_ms == pytest.approx(l_brute, abs=1e-6)


class TestAgainstGreedy:
    def test_never_worse_than_greedy(self, medium_instance):
        alloc = equilibrium(medium_instance)
        greedy = greedy_delivery(medium_instance, alloc)
        l_greedy = average_delivery_latency_ms(
            medium_instance, alloc, greedy.profile
        )
        milp = optimal_delivery_milp(medium_instance, alloc)
        assert milp.l_avg_ms <= l_greedy + 1e-6

    def test_greedy_within_theoretical_guarantee(self, medium_instance):
        """The Theorem 6/7 guarantee against the *exact* optimum at a scale
        brute force cannot reach."""
        from repro.core.bounds import greedy_approximation_factor
        from repro.core.profiles import DeliveryProfile

        alloc = equilibrium(medium_instance)
        empty = DeliveryProfile.empty(medium_instance.n_servers, medium_instance.n_data)
        phi = average_delivery_latency_ms(medium_instance, alloc, empty)
        milp = optimal_delivery_milp(medium_instance, alloc)
        greedy = greedy_delivery(medium_instance, alloc)
        l_greedy = average_delivery_latency_ms(
            medium_instance, alloc, greedy.profile
        )
        factor = greedy_approximation_factor(medium_instance)
        assert (phi - l_greedy) >= factor * (phi - milp.l_avg_ms) - 1e-9


class TestModel:
    def test_profile_feasible(self, medium_instance):
        alloc = equilibrium(medium_instance)
        milp = optimal_delivery_milp(medium_instance, alloc)
        milp.profile.validate(medium_instance.scenario)

    def test_empty_allocation_places_nothing_useful(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        milp = optimal_delivery_milp(line_instance, alloc)
        # No attached demand: the objective is empty and sigma = 0 is optimal.
        assert milp.l_avg_ms == pytest.approx(
            average_delivery_latency_ms(line_instance, alloc, milp.profile)
        )

    def test_metadata(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        for j in range(line_instance.n_users):
            cov = line_instance.scenario.covering_servers[j]
            alloc.server[j] = int(cov[0])
            alloc.channel[j] = 0
        milp = optimal_delivery_milp(line_instance, alloc)
        assert milp.status == 0
        assert milp.n_variables > 0
        assert milp.n_constraints > 0

    def test_time_limit_accepts_option(self, medium_instance):
        alloc = equilibrium(medium_instance)
        milp = optimal_delivery_milp(medium_instance, alloc, time_limit_s=30.0)
        milp.profile.validate(medium_instance.scenario)
