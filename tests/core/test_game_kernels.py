"""Reference/batched kernel-pair tests: bit-for-bit parity and state hygiene.

The batched einsum kernel is only admissible because it replays the
per-user reference exactly — same benefits, same tie-breaks, same RNG
stream, hence the same ``move_log``.  These tests pin that contract in
the suite; ``idde bench --verify-parity`` checks the same grid in CI.
"""

import numpy as np
import pytest

from repro.config import GameConfig
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.errors import ConfigurationError, ConvergenceError

SCHEDULES = ("round-robin", "best-gain-winner", "random-winner")
SEEDS = (0, 1, 2, 3, 4)


def _run_pair(instance, cfg: GameConfig, seed: int):
    from dataclasses import replace

    ref = IddeUGame(instance, replace(cfg, kernel="reference")).run(rng=seed)
    bat = IddeUGame(instance, replace(cfg, kernel="batched")).run(rng=seed)
    return ref, bat


def _assert_identical(ref, bat):
    assert ref.move_log == bat.move_log
    assert np.array_equal(ref.profile.server, bat.profile.server)
    assert np.array_equal(ref.profile.channel, bat.profile.channel)
    assert (ref.rounds, ref.moves) == (bat.rounds, bat.moves)
    assert (ref.converged, ref.is_nash) == (bat.converged, bat.is_nash)


class TestKernelParity:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_run_parity(self, schedule, seed):
        """5 seeds x 3 schedules: identical move sequence and equilibrium."""
        instance = IDDEInstance.generate(n=8, m=30, k=3, density=1.5, seed=seed)
        ref, bat = _run_pair(instance, GameConfig(schedule=schedule), seed)
        _assert_identical(ref, bat)
        assert ref.converged and ref.is_nash

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_parity_under_active_mask(self, small_instance, schedule):
        """Inactive users are excluded identically by both kernels."""
        rng = np.random.default_rng(7)
        active = rng.random(small_instance.n_users) < 0.6
        active[0] = True  # keep at least one player
        cfg = GameConfig(schedule=schedule)
        from dataclasses import replace

        ref = IddeUGame(small_instance, replace(cfg, kernel="reference")).run(
            rng=3, active=active
        )
        bat = IddeUGame(small_instance, replace(cfg, kernel="batched")).run(
            rng=3, active=active
        )
        _assert_identical(ref, bat)
        assert not ref.profile.allocated[~active].any()

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_parity_on_partial_coverage(self, line_instance, schedule):
        """Disjoint coverage exercises the ragged/padded covering rows."""
        ref, bat = _run_pair(line_instance, GameConfig(schedule=schedule), 0)
        _assert_identical(ref, bat)

    def test_parity_under_move_cap(self, small_instance):
        """The per-user move cap freezes the same users in both kernels."""
        cfg = GameConfig(schedule="round-robin", max_moves_per_user=1)
        ref, bat = _run_pair(small_instance, cfg, 0)
        _assert_identical(ref, bat)

    def test_move_log_matches_move_count(self, tiny_instance):
        for kernel in ("reference", "batched"):
            result = IddeUGame(tiny_instance, GameConfig(kernel=kernel)).run(rng=0)
            assert len(result.move_log) == result.moves


class TestBatchedKernel:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_converges_to_nash(self, tiny_instance, schedule):
        game = IddeUGame(tiny_instance, GameConfig(schedule=schedule, kernel="batched"))
        result = game.run(rng=0)
        assert result.converged
        assert result.is_nash
        # The batched certificate path agrees with the run's verdict.
        assert game.is_nash(result.profile)

    def test_batched_certificate_rejects_non_equilibrium(self, tiny_instance):
        from repro.core.profiles import AllocationProfile

        game = IddeUGame(tiny_instance, GameConfig(kernel="batched"))
        empty = AllocationProfile.empty(tiny_instance.n_users)
        assert not game.is_nash(empty)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            GameConfig(kernel="simd")


class TestParityHarness:
    """The ``repro.bench.parity`` harness the CLI and CI run."""

    def test_verify_kernel_pair_ok(self):
        from repro.bench.parity import render_parity_text, verify_kernel_pair

        report = verify_kernel_pair(
            scale="S", seeds=(0, 1), schedules=("round-robin", "random-winner")
        )
        assert report.ok
        assert report.failures == ()
        assert len(report.cases) == 4
        text = render_parity_text(report)
        assert "PARITY OK" in text
        assert "round-robin" in text

    def test_report_flags_broken_cases(self):
        from dataclasses import replace

        from repro.bench.parity import KernelPairCase, ParityReport

        good = KernelPairCase(
            scale="S",
            seed=0,
            schedule="round-robin",
            moves=10,
            rounds=2,
            same_move_log=True,
            same_profile=True,
            same_certificate=True,
        )
        bad = replace(good, seed=1, same_move_log=False)
        report = ParityReport(cases=(good, bad))
        assert not report.ok
        assert report.failures == (bad,)
        assert "move-log" in bad.describe()


class TestActiveMaskHygiene:
    def test_failed_run_does_not_leak_active_mask(self, tiny_instance):
        """A run that raises mid-setup must not poison later runs.

        Regression: only ``is_nash`` used to clear ``_active`` in a
        ``finally``; a ``run()`` that raised (e.g. a warm start allocating
        inactive users) left the mask behind, silently shrinking the
        player set of every subsequent call on the same game object.
        """
        game = IddeUGame(tiny_instance)
        full = game.run(rng=0)
        active = np.ones(tiny_instance.n_users, dtype=bool)
        active[0] = False  # but the warm start allocates user 0
        with pytest.raises(ConvergenceError):
            game.run(rng=0, initial=full.profile, active=active)
        assert len(game._players()) == tiny_instance.n_users
        # And the next unmasked run behaves as if the failure never happened.
        again = game.run(rng=0)
        assert again.move_log == full.move_log

    def test_bad_mask_shape_does_not_leak(self, tiny_instance):
        game = IddeUGame(tiny_instance)
        with pytest.raises(ConvergenceError):
            game.run(rng=0, active=np.ones(tiny_instance.n_users + 1, dtype=bool))
        assert len(game._players()) == tiny_instance.n_users
