"""Brute-force oracle tests."""

import pytest

from repro.core.brute_force import (
    enumerate_allocations,
    optimal_allocation,
    optimal_delivery,
)
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_delivery_latency_ms
from repro.core.profiles import AllocationProfile
from repro.errors import SolverError
from repro.topology.graph import build_topology

from ..conftest import make_scenario


@pytest.fixture
def micro_instance():
    """2 servers / 3 users / 2 items, full coverage — enumerable."""
    sc = make_scenario(
        [[0.0, 0.0], [150.0, 0.0]],
        [[20.0, 10.0], [100.0, -10.0], [140.0, 30.0]],
        radius=400.0,
        channels=2,
        storage=70.0,
        sizes=(30.0, 60.0),
    )
    topo = build_topology(2, 2.0, 0)
    return IDDEInstance(sc, topo)


class TestOptimalDelivery:
    def test_returns_feasible(self, micro_instance):
        alloc = AllocationProfile.empty(3)
        alloc.server[:] = [0, 1, 1]
        alloc.channel[:] = [0, 0, 1]
        profile, latency = optimal_delivery(micro_instance, alloc)
        profile.validate(micro_instance.scenario)
        assert latency == pytest.approx(
            average_delivery_latency_ms(micro_instance, alloc, profile)
        )

    def test_optimum_not_worse_than_greedy(self, micro_instance):
        from repro.core.delivery import greedy_delivery

        alloc = AllocationProfile.empty(3)
        alloc.server[:] = [0, 1, 1]
        alloc.channel[:] = [0, 0, 1]
        _, l_opt = optimal_delivery(micro_instance, alloc)
        greedy = greedy_delivery(micro_instance, alloc)
        l_greedy = average_delivery_latency_ms(micro_instance, alloc, greedy.profile)
        assert l_opt <= l_greedy + 1e-9

    def test_guard_on_large_instances(self, medium_instance):
        with pytest.raises(SolverError):
            optimal_delivery(
                medium_instance, AllocationProfile.empty(medium_instance.n_users)
            )


class TestOptimalAllocation:
    def test_enumeration_counts(self, micro_instance):
        # 3 users × (2 servers × 2 channels) = 4^3 = 64 profiles.
        profiles = list(enumerate_allocations(micro_instance))
        assert len(profiles) == 64

    def test_optimum_not_worse_than_nash(self, micro_instance):
        from repro.core.game import IddeUGame
        from repro.core.objectives import average_data_rate

        _, r_opt = optimal_allocation(micro_instance)
        nash = IddeUGame(micro_instance).run(rng=0)
        r_nash = average_data_rate(micro_instance, nash.profile)
        assert r_opt >= r_nash - 1e-9

    def test_guard_on_large_instances(self, medium_instance):
        with pytest.raises(SolverError):
            list(enumerate_allocations(medium_instance))
