"""Theoretical bound tests (Theorems 4, 5, 7)."""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    cloud_only_latency_ms,
    greedy_approximation_factor,
    theorem4_iteration_bound,
    theorem5_poa_interval,
    theorem7_latency_upper_bound_ms,
    theory_report,
    user_signal_strengths,
)
from repro.core.game import IddeUGame
from repro.core.idde_g import IddeG


class TestTheorem4:
    def test_bound_positive_finite(self, small_instance):
        y = theorem4_iteration_bound(small_instance)
        assert y > 0 and math.isfinite(y)

    def test_bound_dominates_observed_moves(self, small_instance):
        result = IddeUGame(small_instance).run(rng=0)
        assert result.moves <= theorem4_iteration_bound(small_instance)

    def test_signal_strengths_positive(self, small_instance):
        q = user_signal_strengths(small_instance)
        assert (q > 0).all()


class TestTheorem5:
    def test_interval_well_formed(self, small_instance):
        lo, hi = theorem5_poa_interval(small_instance)
        assert 0.0 <= lo <= hi == 1.0

    def test_equilibrium_rate_within_interval_of_cap(self, small_instance):
        """The realised PoA (equilibrium over best cap) sits in [lo, 1]
        when R_min is evaluated at the equilibrium, per the theorem."""
        from repro.core.objectives import average_data_rate

        result = IddeUGame(small_instance).run(rng=0)
        lo, _ = theorem5_poa_interval(small_instance, result.profile)
        r = average_data_rate(small_instance, result.profile)
        r_max = float(small_instance.scenario.rmax.max())
        assert lo - 1e-12 <= r / r_max <= 1.0 + 1e-12

    def test_profile_aware_bound_tighter_or_equal(self, small_instance):
        result = IddeUGame(small_instance).run(rng=0)
        lo_apriori, _ = theorem5_poa_interval(small_instance)
        lo_at_eq, _ = theorem5_poa_interval(small_instance, result.profile)
        assert lo_at_eq <= lo_apriori + 1e-12


class TestTheorem7:
    def test_factor_in_unit_interval(self, small_instance):
        f = greedy_approximation_factor(small_instance)
        assert 0.0 <= f <= (math.e - 1) / (2 * math.e)

    def test_cloud_only_latency(self, line_instance):
        phi = cloud_only_latency_ms(line_instance)
        # Request-weighted mean size over the j % 3 assignment, at 600 MB/s.
        zeta = line_instance.scenario.requests
        sizes = line_instance.scenario.sizes
        expected = 1000.0 * (zeta * sizes[None, :]).sum() / zeta.sum() / 600.0
        assert phi == pytest.approx(expected)

    def test_upper_bound_dominates_greedy(self, line_instance):
        """The Theorem 7 bound (with the optimum as input) holds for the
        greedy's measured latency."""
        from repro.core.brute_force import optimal_delivery
        from repro.core.objectives import average_delivery_latency_ms
        from repro.core.delivery import greedy_delivery
        from repro.core.profiles import AllocationProfile

        alloc = AllocationProfile.empty(line_instance.n_users)
        for j in range(line_instance.n_users):
            cov = line_instance.scenario.covering_servers[j]
            alloc.server[j] = int(cov[0])
            alloc.channel[j] = 0
        _, l_opt = optimal_delivery(line_instance, alloc)
        greedy = greedy_delivery(line_instance, alloc)
        l_greedy = average_delivery_latency_ms(line_instance, alloc, greedy.profile)
        bound = theorem7_latency_upper_bound_ms(line_instance, l_opt)
        assert l_greedy <= bound + 1e-9

    def test_report_bundle(self, small_instance):
        report = theory_report(small_instance)
        assert report.iteration_bound > 0
        assert report.greedy_factor >= 0
        assert report.cloud_only_latency_ms > 0
        lo, hi = report.poa_interval
        assert 0 <= lo <= hi == 1.0


class TestGreedyGuarantee:
    def test_greedy_reduction_meets_factor(self, line_instance):
        """ΔL(greedy) ≥ factor · ΔL(optimal) — the Theorem 6/7 guarantee,
        verified against the brute-force optimum."""
        from repro.core.brute_force import optimal_delivery
        from repro.core.delivery import greedy_delivery
        from repro.core.objectives import average_delivery_latency_ms
        from repro.core.profiles import AllocationProfile, DeliveryProfile

        alloc = AllocationProfile.empty(line_instance.n_users)
        for j in range(line_instance.n_users):
            cov = line_instance.scenario.covering_servers[j]
            alloc.server[j] = int(cov[0])
            alloc.channel[j] = 0
        empty = DeliveryProfile.empty(4, 3)
        phi = average_delivery_latency_ms(line_instance, alloc, empty)
        _, l_opt = optimal_delivery(line_instance, alloc)
        greedy = greedy_delivery(line_instance, alloc)
        l_greedy = average_delivery_latency_ms(line_instance, alloc, greedy.profile)
        factor = greedy_approximation_factor(line_instance)
        assert (phi - l_greedy) >= factor * (phi - l_opt) - 1e-9
