"""Potential function tests (Definition 4, Eq. 13, Lemma 2)."""

import numpy as np
import pytest

from repro.config import GameConfig, RadioConfig
from repro.core.game import IddeUGame
from repro.core.potential import (
    congestion_potential,
    global_channel_potential,
    lemma2_threshold,
    paper_potential,
)
from repro.radio.sinr import SinrEngine

from ..conftest import make_instance, make_scenario


def single_server_instance(n_users=6, channels=3):
    """One server covering all users — the exact-potential regime."""
    rng = np.random.default_rng(0)
    user_xy = rng.uniform(-80, 80, size=(n_users, 2))
    sc = make_scenario(
        [[0.0, 0.0]],
        user_xy,
        radius=500.0,
        channels=channels,
        power=rng.uniform(1, 5, n_users),
    )
    return make_instance(sc)


class TestCongestionPotential:
    def test_empty_allocation_zero(self, tiny_instance):
        engine = tiny_instance.new_engine()
        assert congestion_potential(engine) == 0.0

    def test_increases_with_load(self, tiny_instance):
        engine = tiny_instance.new_engine()
        engine.assign(0, 0, 0)
        p1 = congestion_potential(engine)
        engine.assign(1, 0, 0)
        p2 = congestion_potential(engine)
        assert p2 > p1 > 0

    def test_known_value(self):
        inst = single_server_instance(2, channels=2)
        engine = inst.new_engine()
        p = inst.scenario.power
        engine.assign(0, 0, 0)
        engine.assign(1, 0, 0)
        expected = 0.5 * ((p[0] + p[1]) ** 2 + p[0] ** 2 + p[1] ** 2)
        assert congestion_potential(engine) == pytest.approx(expected)

    def test_monotone_decrease_under_best_response_single_server(self):
        """With one server the game is an exact congestion game: every
        improving move strictly decreases the Rosenthal potential."""
        inst = single_server_instance(8, channels=3)
        game = IddeUGame(inst, GameConfig(schedule="round-robin"), track_potential=True)
        result = game.run(rng=0)
        trace = result.potential_trace
        # Skip the build-up phase (moving in from unallocated increases the
        # potential); once everyone is allocated, moves must decrease it.
        m = inst.n_users
        settled = trace[m:]
        assert all(b <= a + 1e-12 for a, b in zip(settled, settled[1:]))

    def test_coincides_with_global_for_single_server(self):
        inst = single_server_instance(5, channels=2)
        engine = inst.new_engine()
        for j in range(5):
            engine.assign(j, 0, j % 2)
        assert congestion_potential(engine) == pytest.approx(
            global_channel_potential(engine)
        )


class TestGlobalChannelPotential:
    def test_monotone_under_homogeneous_gains(self):
        """Forcing homogeneous gains reproduces the paper's Theorem 3 proof
        regime: improving moves decrease the global-channel potential."""
        inst = single_server_instance(6, channels=3)
        engine = inst.new_engine()
        engine.gain = np.full_like(engine.gain, 1e-6)
        # Manual better-response loop on the doctored engine.
        for j in range(6):
            engine.assign(j, 0, 0)
        before = global_channel_potential(engine)
        # User 0 moves to the empty channel 1 — an improving move.
        engine.move(0, 0, 1)
        after = global_channel_potential(engine)
        assert after < before


class TestLemma2:
    def test_threshold_positive_and_finite(self, tiny_instance):
        engine = tiny_instance.new_engine()
        for j in range(tiny_instance.n_users):
            engine.assign(j, j % 3, 0)
        for j in range(tiny_instance.n_users):
            t = lemma2_threshold(engine, j)
            assert t > 0

    def test_uncovered_user_infinite(self):
        sc = make_scenario([[0.0, 0.0]], [[9999.0, 0.0]], radius=10.0)
        inst = make_instance(sc)
        engine = inst.new_engine()
        assert lemma2_threshold(engine, 0) == float("inf")

    def test_threshold_bounds_received_interference(self, tiny_instance):
        """Lemma 2: at any profile, a user's received interference on its
        best-rate channel stays below T_j."""
        engine = tiny_instance.new_engine()
        for j in range(tiny_instance.n_users):
            engine.assign(j, j % 3, j % 2)
        for j in range(tiny_instance.n_users):
            t = lemma2_threshold(engine, j)
            _, w = engine.interference_profile(j)
            assert w.min() <= t


class TestPaperPotential:
    def test_empty_zero(self, tiny_instance):
        engine = tiny_instance.new_engine()
        assert paper_potential(engine) == 0.0

    def test_finite_on_full_allocation(self, tiny_instance):
        engine = tiny_instance.new_engine()
        for j in range(tiny_instance.n_users):
            engine.assign(j, j % 3, j % 2)
        val = paper_potential(engine)
        assert np.isfinite(val)
        assert val > 0  # all allocated: only the pair term remains

    def test_penalty_for_unallocated(self, tiny_instance):
        engine = tiny_instance.new_engine()
        for j in range(1, tiny_instance.n_users):
            engine.assign(j, j % 3, j % 2)
        with_hole = paper_potential(engine)
        engine.assign(0, 0, 0)
        full = paper_potential(engine)
        assert full > with_hole
