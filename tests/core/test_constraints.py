"""Constraint checker tests (Eqs. 1, 6, 8)."""

import numpy as np
import pytest

from repro.core.constraints import (
    check_allocation,
    check_latency_constraint,
    check_storage,
    check_strategy,
)
from repro.core.profiles import AllocationProfile, DeliveryProfile
from repro.errors import CoverageError, StorageViolation


class TestCheckers:
    def test_valid_strategy_passes(self, tiny_instance):
        alloc = AllocationProfile.empty(tiny_instance.n_users)
        for j in range(tiny_instance.n_users):
            alloc.server[j] = j % 3
            alloc.channel[j] = j % 2
        d = DeliveryProfile.empty(3, 2)
        d.placed[0, 0] = True
        check_strategy(tiny_instance, alloc, d)

    def test_coverage_violation(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        alloc.server[0] = 3  # user 0 sits at server 0; radius 150 << 3000
        alloc.channel[0] = 0
        with pytest.raises(CoverageError):
            check_allocation(line_instance, alloc)

    def test_storage_violation(self, line_instance):
        d = DeliveryProfile.empty(4, 3)
        d.placed[0, :] = True  # 30+60+90 = 180 > 100 MB
        with pytest.raises(StorageViolation):
            check_storage(line_instance, d)

    def test_latency_constraint_holds_for_any_profile(self, line_instance):
        # With the cloud-capped path costs, the constraint holds by
        # construction for every feasible profile.
        rng = np.random.default_rng(0)
        alloc = AllocationProfile.empty(line_instance.n_users)
        for j in range(line_instance.n_users):
            cov = line_instance.scenario.covering_servers[j]
            if len(cov):
                alloc.server[j] = int(cov[0])
                alloc.channel[j] = int(rng.integers(0, 2))
        d = DeliveryProfile.empty(4, 3)
        d.placed[1, 0] = True
        check_latency_constraint(line_instance, alloc, d)
