"""Objective evaluation tests (Eqs. 5 and 9)."""

import numpy as np
import pytest

from repro.core.objectives import (
    average_data_rate,
    average_delivery_latency_ms,
    evaluate,
    per_user_latencies,
    retrieval_cost_table,
)
from repro.core.profiles import AllocationProfile, DeliveryProfile


def full_alloc(instance):
    """Attach every user to its strongest covering server, channel 0."""
    engine = instance.new_engine()
    alloc = AllocationProfile.empty(instance.n_users)
    for j in range(instance.n_users):
        cov = instance.scenario.covering_servers[j]
        if len(cov) == 0:
            continue
        i = int(cov[int(np.argmax(engine.gain[cov, j]))])
        alloc.server[j] = i
        alloc.channel[j] = 0
    return alloc


class TestRetrievalCostTable:
    def test_empty_profile_is_cloud(self, line_instance):
        table = retrieval_cost_table(line_instance, DeliveryProfile.empty(4, 3))
        sizes = line_instance.scenario.sizes
        cloud = line_instance.latency_model.cloud_cost
        assert np.allclose(table, sizes[None, :] * cloud)

    def test_local_replica_is_free(self, line_instance):
        d = DeliveryProfile.empty(4, 3)
        d.placed[2, 1] = True
        table = retrieval_cost_table(line_instance, d)
        assert table[2, 1] == 0.0

    def test_neighbor_replica_one_hop(self, line_instance):
        d = DeliveryProfile.empty(4, 3)
        d.placed[0, 0] = True
        table = retrieval_cost_table(line_instance, d)
        s0 = line_instance.scenario.sizes[0]
        assert table[1, 0] == pytest.approx(s0 / 3000.0)

    def test_never_exceeds_cloud(self, line_instance):
        d = DeliveryProfile.empty(4, 3)
        d.placed[0, :] = True
        table = retrieval_cost_table(line_instance, d)
        sizes = line_instance.scenario.sizes
        cloud = line_instance.latency_model.cloud_cost
        assert (table <= sizes[None, :] * cloud + 1e-15).all()

    def test_min_over_origins(self, line_instance):
        d = DeliveryProfile.empty(4, 3)
        d.placed[0, 0] = True
        d.placed[3, 0] = True
        table = retrieval_cost_table(line_instance, d)
        s0 = line_instance.scenario.sizes[0]
        # server 1 is 1 hop from 0 and 2 hops from 3.
        assert table[1, 0] == pytest.approx(s0 / 3000.0)


class TestPerUserLatencies:
    def test_unallocated_pay_cloud(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        d = DeliveryProfile.empty(4, 3)
        d.placed[:, :] = True
        lat = per_user_latencies(line_instance, alloc, d)
        sizes = line_instance.scenario.sizes
        cloud = line_instance.latency_model.cloud_cost
        assert np.allclose(lat, sizes[None, :] * cloud)

    def test_allocated_gather(self, line_instance):
        alloc = full_alloc(line_instance)
        d = DeliveryProfile.empty(4, 3)
        d.placed[0, 0] = True
        lat = per_user_latencies(line_instance, alloc, d)
        # Users attached to server 0 fetch item 0 locally.
        for j in np.flatnonzero(alloc.server == 0):
            assert lat[j, 0] == 0.0


class TestAverages:
    def test_latency_zero_with_full_replication(self, line_instance):
        alloc = full_alloc(line_instance)
        d = DeliveryProfile.empty(4, 3)
        d.placed[:, :] = True
        assert average_delivery_latency_ms(line_instance, alloc, d) == 0.0

    def test_latency_cloud_with_empty_profile(self, line_instance):
        alloc = full_alloc(line_instance)
        d = DeliveryProfile.empty(4, 3)
        l_ms = average_delivery_latency_ms(line_instance, alloc, d)
        zeta = line_instance.scenario.requests
        sizes = line_instance.scenario.sizes
        cloud = line_instance.latency_model.cloud_cost
        expected = 1000.0 * (zeta * sizes[None, :] * cloud).sum() / zeta.sum()
        assert l_ms == pytest.approx(expected)

    def test_rate_matches_engine(self, line_instance):
        alloc = full_alloc(line_instance)
        engine = line_instance.new_engine()
        engine.load_profile(alloc.server, alloc.channel)
        assert average_data_rate(line_instance, alloc) == pytest.approx(
            engine.average_rate()
        )

    def test_rate_empty_alloc_zero(self, line_instance):
        alloc = AllocationProfile.empty(line_instance.n_users)
        assert average_data_rate(line_instance, alloc) == 0.0


class TestEvaluate:
    def test_bundle_consistency(self, line_instance):
        alloc = full_alloc(line_instance)
        d = DeliveryProfile.empty(4, 3)
        d.placed[0, :] = True
        ev = evaluate(line_instance, alloc, d)
        assert ev.r_avg == pytest.approx(average_data_rate(line_instance, alloc))
        assert ev.l_avg_ms == pytest.approx(
            average_delivery_latency_ms(line_instance, alloc, d)
        )
        assert ev.allocated_users == alloc.n_allocated
        assert ev.replicas == 3
        assert ev.rates.shape == (line_instance.n_users,)
        assert ev.latencies_ms.shape == (line_instance.n_users,)

    def test_per_user_latency_only_requested(self, line_instance):
        alloc = full_alloc(line_instance)
        d = DeliveryProfile.empty(4, 3)
        ev = evaluate(line_instance, alloc, d)
        # Every user requests exactly one item here; per-user ms equals the
        # latency of that item.
        zeta = line_instance.scenario.requests
        lat = per_user_latencies(line_instance, alloc, d)
        for j in range(line_instance.n_users):
            k = int(np.flatnonzero(zeta[j])[0])
            assert ev.latencies_ms[j] == pytest.approx(1000.0 * lat[j, k])
