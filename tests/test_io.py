"""Persistence round-trip tests."""

import numpy as np
import pytest

from repro.core.idde_g import IddeG
from repro.core.instance import IDDEInstance
from repro.errors import DatasetError
from repro.io import load_instance, load_strategy, save_instance, save_strategy
from repro.radio.fading import lognormal_shadowing


class TestInstanceRoundTrip:
    def test_arrays_bit_exact(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "inst.npz")
        loaded = load_instance(path)
        sc0, sc1 = small_instance.scenario, loaded.scenario
        assert np.array_equal(sc0.server_xy, sc1.server_xy)
        assert np.array_equal(sc0.user_xy, sc1.user_xy)
        assert np.array_equal(sc0.requests, sc1.requests)
        assert np.array_equal(sc0.storage, sc1.storage)
        assert np.array_equal(
            small_instance.topology.links, loaded.topology.links
        )
        assert np.array_equal(
            small_instance.topology.speeds, loaded.topology.speeds
        )
        assert loaded.topology.cloud_speed == small_instance.topology.cloud_speed
        assert loaded.radio == small_instance.radio

    def test_solver_agrees_after_reload(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "inst.npz")
        loaded = load_instance(path)
        a = IddeG().solve(small_instance, rng=0)
        b = IddeG().solve(loaded, rng=0)
        assert a.r_avg == pytest.approx(b.r_avg)
        assert a.l_avg_ms == pytest.approx(b.l_avg_ms)

    def test_gain_override_persisted(self, tmp_path):
        base = IDDEInstance.generate(n=6, m=15, k=2, seed=3)
        gain = lognormal_shadowing(
            base.scenario.server_xy, base.scenario.user_xy, rng=1
        )
        instance = IDDEInstance(
            base.scenario, base.topology, base.radio, gain_override=gain
        )
        path = save_instance(instance, tmp_path / "shadowed.npz")
        loaded = load_instance(path)
        assert loaded.gain_override is not None
        assert np.allclose(loaded.gain_override, gain)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_instance(tmp_path / "nope.npz")

    def test_wrong_kind_rejected(self, small_instance, tmp_path):
        strategy = IddeG().solve(small_instance, rng=0)
        path = save_strategy(strategy, tmp_path / "strategy.npz")
        with pytest.raises(DatasetError):
            load_instance(path)


class TestStrategyRoundTrip:
    def test_profiles_bit_exact(self, small_instance, tmp_path):
        strategy = IddeG().solve(small_instance, rng=0)
        path = save_strategy(strategy, tmp_path / "s.npz")
        loaded = load_strategy(path)
        assert loaded.solver == "IDDE-G"
        assert loaded.allocation == strategy.allocation
        assert loaded.delivery == strategy.delivery
        assert loaded.r_avg == pytest.approx(strategy.r_avg)
        assert loaded.l_avg_ms == pytest.approx(strategy.l_avg_ms)
        assert loaded.extras == {}

    def test_loaded_profiles_still_valid(self, small_instance, tmp_path):
        strategy = IddeG().solve(small_instance, rng=0)
        path = save_strategy(strategy, tmp_path / "s.npz")
        loaded = load_strategy(path)
        loaded.allocation.validate(small_instance.scenario)
        loaded.delivery.validate(small_instance.scenario)

    def test_wrong_kind_rejected(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "inst.npz")
        with pytest.raises(DatasetError):
            load_strategy(path)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        from repro.io import load_jsonl, save_jsonl

        records = [{"kind": "a", "x": 1}, {"kind": "b", "nested": {"y": [1, 2]}}]
        path = save_jsonl(records, tmp_path / "r.jsonl")
        assert load_jsonl(path) == records
        # One compact object per line, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert len(text.splitlines()) == 2

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        from repro.io import load_jsonl

        assert load_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_errors(self, tmp_path):
        from repro.io import load_jsonl, save_jsonl

        with pytest.raises(DatasetError):
            save_jsonl([["not", "a", "dict"]], tmp_path / "bad.jsonl")
        with pytest.raises(DatasetError):
            load_jsonl(tmp_path / "missing.jsonl")
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('{"a": 1}\nnot json\n')
        with pytest.raises(DatasetError, match=":2"):
            load_jsonl(corrupt)
        nonobj = tmp_path / "nonobj.jsonl"
        nonobj.write_text("[1, 2]\n")
        with pytest.raises(DatasetError):
            load_jsonl(nonobj)
