"""Parallel trial execution substrate.

Experiment sweeps repeat every parameter point tens of times with
independent seeds; the trials are embarrassingly parallel and CPU-bound, so
they are farmed to a :class:`concurrent.futures.ProcessPoolExecutor` with
deterministic per-trial seed spawning (see :mod:`repro.rng`).  The helpers
here keep ordering, chunking and graceful serial fallback in one place.
"""

from .partition import chunk_evenly, chunk_sized
from .pool import ParallelConfig, force_serial, parallel_map, serial_forced

__all__ = [
    "parallel_map",
    "ParallelConfig",
    "chunk_evenly",
    "chunk_sized",
    "force_serial",
    "serial_forced",
]
