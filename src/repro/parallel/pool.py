"""Process-pool map with ordered results and serial fallback.

``parallel_map(fn, items)`` behaves exactly like ``[fn(x) for x in items]``
but can fan out across processes.  The callable and items must be picklable
(all trial specs in :mod:`repro.experiments` are plain dataclasses).  Order
is always preserved — downstream aggregation indexes results by position.

The serial path is taken when ``n_workers <= 1`` or the item count is tiny,
avoiding pool startup costs dominating short sweeps; it is also the path
used under pytest, keeping test failures debuggable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ParallelConfig", "parallel_map", "default_workers"]


def default_workers() -> int:
    """A safe default worker count: physical parallelism minus one."""
    return max((os.cpu_count() or 2) - 1, 1)


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan work out.

    ``n_workers = 0`` or ``1`` forces serial execution; ``None`` uses
    :func:`default_workers`.  ``min_parallel_items`` guards against paying
    pool startup for trivially small batches.
    """

    n_workers: int | None = None
    chunksize: int = 1
    min_parallel_items: int = 4

    def resolved_workers(self) -> int:
        if self.n_workers is None:
            return default_workers()
        return max(self.n_workers, 0)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across processes, in order."""
    items = list(items)
    config = config or ParallelConfig()
    workers = config.resolved_workers()
    if workers <= 1 or len(items) < config.min_parallel_items:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=max(config.chunksize, 1)))
