"""Process-pool map with ordered results and serial fallback.

``parallel_map(fn, items)`` behaves exactly like ``[fn(x) for x in items]``
but can fan out across processes.  The callable and items must be picklable
(all trial specs in :mod:`repro.experiments` are plain dataclasses).  Order
is always preserved — downstream aggregation indexes results by position.

The serial path is taken when ``n_workers <= 1`` or the item count is tiny,
avoiding pool startup costs dominating short sweeps; it is also the path
used under pytest, keeping test failures debuggable.

Timed regions (the IDDE-Bench harness) must never measure pool startup:
:func:`force_serial` is a re-entrant context manager that pins every
``parallel_map`` in the dynamic extent to the serial path regardless of the
:class:`ParallelConfig` or :func:`default_workers` in play, so a benchmark
measures the kernel, not executor forking.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "default_workers",
    "force_serial",
    "serial_forced",
    "PARALLEL_ENTRY_POINTS",
]

#: Fan-out entry points: callable name -> positional index of the worker
#: callable argument.  The IDDE010/IDDE012 lint rules consult this instead
#: of hard-coding knowledge of this module, so adding a new pool API here
#: automatically extends the parallel-safety checks to it.
PARALLEL_ENTRY_POINTS: dict[str, int] = {"parallel_map": 0}

#: Per-thread depth counter for nested :func:`force_serial` regions.
_serial_state = threading.local()


@contextmanager
def force_serial() -> Iterator[None]:
    """Pin every ``parallel_map`` in this dynamic extent to serial execution.

    Re-entrant and thread-local: nesting is counted, and other threads'
    pools are unaffected.  Used by the benchmark runner so that timed
    regions can never pay (or measure) process-pool startup.
    """
    _serial_state.depth = getattr(_serial_state, "depth", 0) + 1
    try:
        yield
    finally:
        _serial_state.depth -= 1


def serial_forced() -> bool:
    """Whether the calling thread is inside a :func:`force_serial` region."""
    return getattr(_serial_state, "depth", 0) > 0


def default_workers() -> int:
    """A safe default worker count: physical parallelism minus one."""
    return max((os.cpu_count() or 2) - 1, 1)


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan work out.

    ``n_workers = 0`` or ``1`` forces serial execution; ``None`` uses
    :func:`default_workers`.  ``min_parallel_items`` guards against paying
    pool startup for trivially small batches.
    """

    n_workers: int | None = None
    chunksize: int = 1
    min_parallel_items: int = 4

    def resolved_workers(self) -> int:
        if self.n_workers is None:
            return default_workers()
        return max(self.n_workers, 0)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across processes, in order."""
    items = list(items)
    config = config or ParallelConfig()
    workers = 1 if serial_forced() else config.resolved_workers()
    if workers <= 1 or len(items) < config.min_parallel_items:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=max(config.chunksize, 1)))
