"""Work partitioning helpers for the process-pool harness."""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")

__all__ = ["chunk_sized", "chunk_evenly"]


def chunk_sized(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def chunk_evenly(
    items: Sequence[T], n_chunks: int, *, exact: bool = False
) -> list[list[T]]:
    """Split ``items`` into ``n_chunks`` near-equal consecutive chunks.

    Earlier chunks are at most one element longer.  By default empty
    chunks are *dropped*, so fewer than ``n_chunks`` lists may be returned
    when there are fewer items than chunks — a silent-shrink hazard for
    callers that zip the chunks against a fixed-size resource list (e.g. a
    per-shard worker table).  Pass ``exact=True`` to always get exactly
    ``n_chunks`` lists, padding with empty ones.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n = len(items)
    base, extra = divmod(n, n_chunks)
    out: list[list[T]] = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        if size == 0:
            if exact:
                out.append([])
            continue
        out.append(list(items[start : start + size]))
        start += size
    return out
