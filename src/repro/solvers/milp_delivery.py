"""Exact data-delivery optimisation as a MILP (HiGHS via SciPy).

Problem
-------
Given a fixed user allocation ``α``, choose the delivery profile ``σ``
minimising the total (request-weighted) delivery latency subject to the
per-server storage constraint.  Because a user's retrieval latency depends
only on its *attached server*, demand aggregates into the ``(K, N)``
request-count matrix ``w`` and the model lives entirely in server space:

Variables
    ``σ_{o,k} ∈ {0,1}``     — replica of item ``k`` on server ``o``;
    ``y_{i,k,o} ∈ [0,1]``   — fraction of server ``i``'s demand for item
    ``k`` served from origin ``o`` (``o = N`` encodes the cloud).

Objective
    ``min Σ_{i,k,o} w[k,i] · s_k · pathcost[o,i] · y_{i,k,o}``

Constraints
    ``Σ_o y_{i,k,o} = 1``                 for every demanded ``(i, k)``;
    ``y_{i,k,o} ≤ σ_{o,k}``              for every edge origin ``o``;
    ``Σ_k σ_{o,k} · s_k ≤ A_o``          for every server ``o``.

The ``y`` variables may stay continuous: for any fixed binary ``σ`` the
cost-minimal ``y`` is an indicator of the cheapest available origin, so
the MILP's optimum equals the combinatorial optimum of Eq. (9).

This oracle replaces brute force beyond ~20 decision cells and powers the
greedy-optimality-gap ablation at the paper's full scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import coo_matrix

from ..core.delivery import attached_request_counts
from ..core.instance import IDDEInstance
from ..core.objectives import average_delivery_latency_ms
from ..core.profiles import AllocationProfile, DeliveryProfile
from ..errors import SolverError

__all__ = ["optimal_delivery_milp", "MilpDeliveryResult"]


@dataclass(frozen=True)
class MilpDeliveryResult:
    """Outcome of the exact delivery solve."""

    profile: DeliveryProfile
    l_avg_ms: float
    status: int
    message: str
    mip_gap: float
    n_variables: int
    n_constraints: int


def optimal_delivery_milp(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    *,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 0.0,
) -> MilpDeliveryResult:
    """Solve the Phase 2 subproblem to (certified) optimality.

    Parameters
    ----------
    instance, alloc:
        The problem and the fixed Phase 1 allocation.
    time_limit_s:
        Optional HiGHS wall-clock limit; the incumbent is returned with
        its reported gap when the limit binds.
    mip_rel_gap:
        Relative optimality tolerance (0 = prove optimality).

    Raises
    ------
    SolverError
        If HiGHS terminates without any feasible incumbent (cannot happen
        for this model — ``σ = 0`` is always feasible — except on solver
        failure).
    """
    n, k = instance.n_servers, instance.n_data
    sizes = instance.scenario.sizes
    storage = instance.scenario.storage
    pc = instance.latency_model.path_cost  # (N, N), cloud-capped
    cloud = instance.latency_model.cloud_cost
    w = attached_request_counts(instance, alloc)  # (K, N) float64

    # Variable layout: first the N*K sigma binaries (o-major: sigma[o, kk]
    # at index o*k + kk), then one y block per demanded (i, kk) pair with
    # N+1 origins each (origin N = cloud).
    n_sigma = n * k
    demanded = [(i, kk) for kk in range(k) for i in range(n) if w[kk, i] > 0]
    n_y = len(demanded) * (n + 1)
    n_vars = n_sigma + n_y

    cost = np.zeros(n_vars)
    integrality = np.zeros(n_vars)
    integrality[:n_sigma] = 1  # sigma binary, y continuous

    lower = np.zeros(n_vars)
    upper = np.ones(n_vars)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    con_lb: list[float] = []
    con_ub: list[float] = []
    row = 0

    def sigma_idx(o: int, kk: int) -> int:
        return o * k + kk

    # Storage constraints: sum_k s_k sigma_{o,k} <= A_o.
    for o in range(n):
        for kk in range(k):
            rows.append(row)
            cols.append(sigma_idx(o, kk))
            vals.append(float(sizes[kk]))
        con_lb.append(0.0)
        con_ub.append(float(storage[o]))
        row += 1

    # Demand and linking constraints per demanded (i, kk).
    for d, (i, kk) in enumerate(demanded):
        base = n_sigma + d * (n + 1)
        weight = w[kk, i] * sizes[kk]
        # Objective coefficients for this block.
        cost[base : base + n] = weight * pc[:, i]
        cost[base + n] = weight * cloud
        # sum_o y = 1.
        for o in range(n + 1):
            rows.append(row)
            cols.append(base + o)
            vals.append(1.0)
        con_lb.append(1.0)
        con_ub.append(1.0)
        row += 1
        # y_{i,k,o} - sigma_{o,k} <= 0 for edge origins.
        for o in range(n):
            rows.append(row)
            cols.append(base + o)
            vals.append(1.0)
            rows.append(row)
            cols.append(sigma_idx(o, kk))
            vals.append(-1.0)
            con_lb.append(-np.inf)
            con_ub.append(0.0)
            row += 1

    a = coo_matrix((vals, (rows, cols)), shape=(row, n_vars))
    constraints = LinearConstraint(a, np.array(con_lb), np.array(con_ub))

    options: dict = {"mip_rel_gap": mip_rel_gap}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)

    res = milp(
        c=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options=options,
    )
    if res.x is None:
        raise SolverError(f"HiGHS returned no incumbent: {res.message}")

    placed = res.x[:n_sigma].reshape(n, k) > 0.5
    profile = DeliveryProfile(placed)
    profile.validate(instance.scenario)
    l_avg = average_delivery_latency_ms(instance, alloc, profile)
    return MilpDeliveryResult(
        profile=profile,
        l_avg_ms=l_avg,
        status=int(res.status),
        message=str(res.message),
        mip_gap=float(getattr(res, "mip_gap", 0.0) or 0.0),
        n_variables=n_vars,
        n_constraints=row,
    )
