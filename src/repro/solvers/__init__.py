"""Exact optimisation back-ends.

:mod:`repro.solvers.milp_delivery` formulates the Phase 2 data-delivery
subproblem (minimise Eq. 9 subject to the storage constraint Eq. 6, given
a fixed allocation) as a mixed-integer linear program and solves it with
SciPy's HiGHS backend — an *exact* oracle that scales far beyond the
brute-force enumerator in :mod:`repro.core.brute_force`, used to measure
the greedy's real optimality gap at paper scale (ablation bench).
"""

from .milp_delivery import MilpDeliveryResult, optimal_delivery_milp

__all__ = ["optimal_delivery_milp", "MilpDeliveryResult"]
