"""Sub-instance extraction: slice one :class:`~repro.sharding.domains.Domain`
out of an :class:`~repro.core.instance.IDDEInstance` with index remapping.

The slice is *faithful*: server and user index maps are sorted (monotone),
so remapped covering sets keep their global order and every argmax
tie-break inside the kernels resolves identically to the global run.  The
pairwise gain entries are bit-identical too — either recomputed from the
same positions or sliced from the instance's ``gain_override`` — which is
what makes the single-shard fallback and the clean-decomposition parity
guarantees *bit-for-bit*, not just approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import IDDEInstance
from ..errors import ShardingError
from ..topology.graph import EdgeTopology
from ..types import Scenario
from .domains import Domain

__all__ = ["SubInstance", "extract_subinstance"]


@dataclass(frozen=True)
class SubInstance:
    """A per-shard instance plus the maps back to global indices."""

    instance: IDDEInstance
    #: ``(n_sub,)`` sorted global server index for each local server.
    server_map: np.ndarray
    #: ``(m_sub,)`` sorted global user index for each local user.
    user_map: np.ndarray


def extract_subinstance(instance: IDDEInstance, domain: Domain) -> SubInstance:
    """Slice ``domain`` out of ``instance`` as a self-contained instance."""
    servers = np.asarray(domain.servers, dtype=np.int64)
    users = np.asarray(domain.users, dtype=np.int64)
    if servers.size == 0 or users.size == 0:
        raise ShardingError(
            f"cannot extract an empty domain ({servers.size} servers, "
            f"{users.size} users)"
        )
    for name, idx, hi in (("server", servers, instance.n_servers),
                          ("user", users, instance.n_users)):
        if np.any(np.diff(idx) <= 0) or idx[0] < 0 or idx[-1] >= hi:
            raise ShardingError(
                f"domain {name} indices must be sorted, unique and in "
                f"[0, {hi}); got range [{idx[0]}, {idx[-1]}]"
            )

    sc = instance.scenario
    sub_scenario = Scenario(
        server_xy=sc.server_xy[servers],
        radius=sc.radius[servers],
        storage=sc.storage[servers],
        channels=sc.channels[servers],
        user_xy=sc.user_xy[users],
        power=sc.power[users],
        rmax=sc.rmax[users],
        sizes=sc.sizes,
        requests=sc.requests[users],
    )
    sub_topology = _slice_topology(instance.topology, servers)
    gain = instance.gain_override
    if gain is not None:
        gain = np.ascontiguousarray(gain[np.ix_(servers, users)])
    sub = IDDEInstance(sub_scenario, sub_topology, instance.radio, gain_override=gain)
    return SubInstance(instance=sub, server_map=servers, user_map=users)


def _slice_topology(topology: EdgeTopology, servers: np.ndarray) -> EdgeTopology:
    """Induced subgraph on ``servers``, endpoints remapped to local indices."""
    if topology.n_links == 0:
        links = np.empty((0, 2), dtype=np.int64)
        speeds = np.empty(0, dtype=float)
    else:
        keep = np.isin(topology.links[:, 0], servers) & np.isin(
            topology.links[:, 1], servers
        )
        links = np.searchsorted(servers, topology.links[keep])
        speeds = topology.speeds[keep]
    return EdgeTopology(
        n=int(servers.size),
        links=links,
        speeds=speeds,
        cloud_speed=topology.cloud_speed,
    )
