"""Concurrent shard solving with whole-instance reconciliation.

The pipeline is build → solve → reconcile:

1. **build** — :func:`~repro.sharding.domains.build_plan` decomposes the
   instance; each shard becomes a picklable :class:`ShardTask` holding its
   own sub-instance (see :mod:`repro.sharding.extract`).
2. **solve** — shards fan out through :func:`repro.parallel.parallel_map`.
   Each worker plays the full IDDE-U dynamics on its sub-instance with an
   independent child RNG stream spawned from ``(root_seed, "shard", i)``,
   so results are reproducible regardless of worker count or scheduling.
3. **reconcile** — shard profiles are stitched back into global indices
   (boundary users left unallocated) and handed to a warm-started global
   :class:`~repro.core.game.IddeUGame` run.  Its quiescent sweep is what
   certifies the *whole-instance* ε-Nash at ``effective_epsilon``; on a
   clean decomposition (no boundary users) it converges in one sweep with
   zero moves, and the certificate is over the full player set either way.

The composed :class:`~repro.core.game.GameResult` therefore reports an
honest whole-instance certificate — ``is_nash``/``effective_epsilon`` come
from the reconciliation run, never from per-shard claims — while rounds,
moves and the move log aggregate the shard work.

When the plan is trivial (one shard owning every allocatable user, no
boundary) the solver falls back to the plain game on the full instance
with the caller's RNG untouched, which is bit-for-bit identical to not
sharding at all — for every schedule, including ``random-winner`` whose
stream alignment a detour through the fan-out would break.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..config import DeliveryConfig, GameConfig
from ..core.delivery import greedy_delivery
from ..core.game import GameResult, IddeUGame
from ..core.idde_g import IddeG
from ..core.instance import IDDEInstance
from ..core.profiles import AllocationProfile, DeliveryProfile
from ..obs.tracer import Tracer, ensure_tracer
from ..parallel import ParallelConfig, parallel_map
from ..radio.sinr import UNALLOCATED
from ..rng import ensure_rng, spawn_rng
from .config import ShardConfig
from .domains import ShardPlan, build_plan
from .extract import extract_subinstance

__all__ = ["ShardTask", "ShardOutcome", "ShardedIddeG", "solve_sharded_game"]


@dataclass(frozen=True)
class ShardTask:
    """One shard's unit of work — fully picklable, no shared state.

    ``initial_server``/``initial_channel`` carry a shard-local warm-start
    profile (allocations to out-of-domain servers already dropped) and
    ``active`` the shard-local participant mask; all three are ``None`` on
    a cold solve.
    """

    index: int
    root_seed: int
    instance: IDDEInstance
    cfg: GameConfig
    initial_server: np.ndarray | None = None
    initial_channel: np.ndarray | None = None
    active: np.ndarray | None = None


@dataclass(frozen=True)
class ShardOutcome:
    """What a shard worker sends back (local indices throughout)."""

    index: int
    server: np.ndarray
    channel: np.ndarray
    rounds: int
    moves: int
    converged: bool
    effective_epsilon: float
    move_log: list[tuple[int, int, int]]
    wall_time_s: float


def _solve_shard(task: ShardTask) -> ShardOutcome:
    """Worker entry point: play the game on one shard's sub-instance."""
    rng = spawn_rng(task.root_seed, "shard", task.index)
    initial = None
    if task.initial_server is not None and task.initial_channel is not None:
        initial = AllocationProfile(task.initial_server, task.initial_channel)
    result = IddeUGame(task.instance, task.cfg).run(
        rng=rng, initial=initial, active=task.active
    )
    return ShardOutcome(
        index=task.index,
        server=result.profile.server,
        channel=result.profile.channel,
        rounds=result.rounds,
        moves=result.moves,
        converged=result.converged,
        effective_epsilon=result.effective_epsilon,
        move_log=result.move_log,
        wall_time_s=result.wall_time_s,
    )


def solve_sharded_game(
    instance: IDDEInstance,
    game_cfg: GameConfig | None = None,
    shard_cfg: ShardConfig | None = None,
    *,
    rng: np.random.Generator | int | None = None,
    tracer: Tracer | None = None,
    plan: ShardPlan | None = None,
    initial: AllocationProfile | None = None,
    active: np.ndarray | None = None,
) -> tuple[GameResult, dict[str, Any]]:
    """Solve the IDDE-U game via interference-domain decomposition.

    ``initial`` warm-starts the decomposition: each shard re-enters its
    sub-game from the prior equilibrium restricted to its domain, boundary
    users keep their prior allocation going into reconciliation (guarded by
    a coverage/channel check), and ``active`` masks churned-away users
    throughout.  The certificate semantics are unchanged — the global
    reconciliation sweep still proves the whole-instance ε-Nash.

    Returns the composed whole-instance :class:`GameResult` plus a stats
    dict (shard sizes, per-shard rounds/moves, reconcile effort) suitable
    for solver ``extras`` and trace events.
    """
    game_cfg = game_cfg or GameConfig()
    shard_cfg = shard_cfg or ShardConfig()
    tracer = ensure_tracer(tracer)
    t0 = time.perf_counter()

    with tracer.span("shard.build", users=instance.n_users) as span:
        if plan is None:
            plan = build_plan(instance, shard_cfg)
        span.set(
            domains=plan.n_domains,
            shards=len(plan.shards),
            boundary_users=int(plan.boundary_users.size),
            uncovered_users=int(plan.uncovered_users.size),
            trivial=plan.is_trivial,
        )
    if tracer.enabled:
        tracer.count("shard.boundary_users", int(plan.boundary_users.size))

    if plan.is_trivial:
        # Bit-identical fallback: full instance, caller's RNG untouched.
        if tracer.enabled:
            tracer.event("shard.fallback", reason="trivial-plan")
        result = IddeUGame(instance, game_cfg, tracer=tracer).run(
            rng=rng, initial=initial, active=active
        )
        stats = _stats(plan, [], result, fallback=True)
        return result, stats

    # A generator caller pays one draw to seed the shard tree; an int seed
    # is used directly so `rng=seed` stays reproducible across runs.
    if rng is None or isinstance(rng, (int, np.integer)):
        root_seed = int(rng) if rng is not None else int(
            ensure_rng(None).integers(0, 2**31 - 1)
        )
    else:
        root_seed = int(ensure_rng(rng).integers(0, 2**31 - 1))

    # Shard-local warm-start projection: inverse-map global server indices
    # into each domain; allocations to out-of-domain servers are dropped
    # (those users re-enter their shard's game unallocated).
    server_pos = None
    if initial is not None:
        server_pos = np.full(instance.n_servers, -1, dtype=np.int64)

    def _local_warmth(
        dom: Any,
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        loc_active = None if active is None else np.asarray(active, bool)[dom.users]
        if initial is None:
            return None, None, loc_active
        assert server_pos is not None
        server_pos.fill(-1)
        server_pos[dom.servers] = np.arange(dom.servers.size, dtype=np.int64)
        g_server = initial.server[dom.users]
        g_channel = initial.channel[dom.users]
        loc_server = np.where(g_server >= 0, server_pos[g_server], UNALLOCATED)
        loc_channel = np.where(loc_server >= 0, g_channel, UNALLOCATED)
        loc_server = np.where(loc_server >= 0, loc_server, UNALLOCATED)
        return loc_server, loc_channel, loc_active

    tasks = []
    for i, dom in enumerate(plan.shards):
        loc_server, loc_channel, loc_active = _local_warmth(dom)
        tasks.append(
            ShardTask(
                index=i,
                root_seed=root_seed,
                instance=extract_subinstance(instance, dom).instance,
                cfg=game_cfg,
                initial_server=loc_server,
                initial_channel=loc_channel,
                active=loc_active,
            )
        )

    with tracer.span(
        "shard.solve", shards=len(tasks), workers=shard_cfg.n_workers or 0
    ) as span:
        outcomes = parallel_map(
            _solve_shard, tasks, ParallelConfig(n_workers=shard_cfg.n_workers)
        )
        span.set(
            rounds=sum(o.rounds for o in outcomes),
            moves=sum(o.moves for o in outcomes),
            converged=all(o.converged for o in outcomes),
        )
    if tracer.enabled:
        for dom, o in zip(plan.shards, outcomes):
            tracer.event(
                "shard.result",
                index=o.index,
                users=dom.n_users,
                servers=dom.n_servers,
                rounds=o.rounds,
                moves=o.moves,
                converged=o.converged,
                effective_epsilon=o.effective_epsilon,
            )

    # Stitch local profiles back into global indices; boundary/uncovered
    # users stay unallocated until (and unless) reconciliation moves them.
    m = instance.n_users
    server = np.full(m, UNALLOCATED, dtype=np.int64)
    channel = np.full(m, UNALLOCATED, dtype=np.int64)
    move_log: list[tuple[int, int, int]] = []
    for dom, o in zip(plan.shards, outcomes):
        allocated = o.server != UNALLOCATED
        server[dom.users[allocated]] = dom.servers[o.server[allocated]]
        channel[dom.users[allocated]] = o.channel[allocated]
        move_log.extend(
            (int(dom.users[u]), int(dom.servers[s]), int(c))
            for u, s, c in o.move_log
        )
    if initial is not None and plan.boundary_users.size:
        # Boundary users were withheld from every shard; let them keep their
        # prior allocation into reconciliation instead of starting detached.
        # Guard coverage/channel validity so a stale warm profile can't make
        # the reconciliation game's initial-validate throw.
        b = plan.boundary_users
        b_server = initial.server[b]
        ok = b_server >= 0
        if active is not None:
            ok &= np.asarray(active, bool)[b]
        safe = b_server.clip(min=0)
        ok &= instance.scenario.coverage[safe, b]
        ok &= initial.channel[b] < instance.scenario.channels[safe]
        seed_users = b[ok]
        server[seed_users] = initial.server[seed_users]
        channel[seed_users] = initial.channel[seed_users]
    stitched = AllocationProfile(server, channel)

    # The reconciliation threshold starts at the loosest per-shard
    # certificate: anything the shards already settled at ε_i must not be
    # re-litigated, and the escalation machinery still tightens honesty —
    # the final certificate is whatever tolerance the global sweep proves.
    shard_eps = max((o.effective_epsilon for o in outcomes), default=game_cfg.epsilon)
    rec_cfg = replace(
        game_cfg,
        schedule=shard_cfg.reconcile_schedule,
        epsilon=max(game_cfg.epsilon, shard_eps),
        max_rounds=shard_cfg.reconcile_max_rounds,
    )
    with tracer.span(
        "shard.reconcile", boundary_users=int(plan.boundary_users.size)
    ) as span:
        rec = IddeUGame(instance, rec_cfg, tracer=tracer).run(
            rng=spawn_rng(root_seed, "reconcile"), initial=stitched, active=active
        )
        span.set(
            rounds=rec.rounds,
            moves=rec.moves,
            is_nash=rec.is_nash,
            effective_epsilon=rec.effective_epsilon,
        )
    if tracer.enabled:
        tracer.count("shard.reconcile_rounds", rec.rounds)
        tracer.count("shard.reconcile_moves", rec.moves)

    move_log.extend(rec.move_log)
    result = GameResult(
        profile=rec.profile,
        rounds=sum(o.rounds for o in outcomes) + rec.rounds,
        moves=sum(o.moves for o in outcomes) + rec.moves,
        converged=all(o.converged for o in outcomes) and rec.converged,
        is_nash=rec.is_nash,
        wall_time_s=time.perf_counter() - t0,
        effective_epsilon=rec.effective_epsilon,
        potential_trace=rec.potential_trace,
        move_log=move_log,
        capped_users=rec.capped_users,
    )
    return result, _stats(plan, outcomes, rec, fallback=False)


def _stats(
    plan: ShardPlan,
    outcomes: list[ShardOutcome],
    reconcile: GameResult,
    *,
    fallback: bool,
) -> dict[str, Any]:
    return {
        "fallback": fallback,
        "n_domains": plan.n_domains,
        "n_shards": len(plan.shards),
        "shard_users": [d.n_users for d in plan.shards],
        "boundary_users": int(plan.boundary_users.size),
        "uncovered_users": int(plan.uncovered_users.size),
        "shard_rounds": [o.rounds for o in outcomes],
        "shard_moves": [o.moves for o in outcomes],
        "shard_effective_epsilon": max(
            (o.effective_epsilon for o in outcomes), default=0.0
        ),
        "reconcile_rounds": 0 if fallback else reconcile.rounds,
        "reconcile_moves": 0 if fallback else reconcile.moves,
    }


class ShardedIddeG(IddeG):
    """IDDE-G with phase 1 executed by interference-domain decomposition.

    Keeps the ``IDDE-G`` solver name — sharding is an execution strategy
    for the same algorithm, not a different point in the paper's solver
    comparison — and the same extras contract, plus a ``"sharding"`` block
    with the decomposition stats.
    """

    def __init__(
        self,
        game: GameConfig | None = None,
        delivery: DeliveryConfig | None = None,
        *,
        sharding: ShardConfig | None = None,
        track_potential: bool = False,
        tracer: Tracer | None = None,
        initial: AllocationProfile | None = None,
        active: np.ndarray | None = None,
    ) -> None:
        super().__init__(
            game,
            delivery,
            track_potential=track_potential,
            tracer=tracer,
            initial=initial,
            active=active,
        )
        self.shard_cfg = sharding or ShardConfig()

    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        result, stats = solve_sharded_game(
            instance,
            self.game_cfg,
            self.shard_cfg,
            rng=rng,
            tracer=self.tracer,
            initial=self.initial,
            active=self.active,
        )
        delivery = greedy_delivery(
            instance, result.profile, self.delivery_cfg, tracer=self.tracer
        )
        extras = {
            "game_rounds": result.rounds,
            "game_moves": result.moves,
            "game_converged": result.converged,
            "is_nash": result.is_nash,
            "effective_epsilon": result.effective_epsilon,
            "capped_users": list(result.capped_users),
            "schedule": self.game_cfg.schedule,
            "kernel": self.game_cfg.kernel,
            "delivery_kernel": self.delivery_cfg.kernel,
            "sharding": stats,
            "delivery_iterations": delivery.iterations,
            "replicas": delivery.profile.n_replicas,
            "delivery_gain_s": delivery.total_gain_s,
            "game_result": result,
            "delivery_result": delivery,
        }
        if self.track_potential:
            extras["potential_trace"] = result.potential_trace
        return result.profile, delivery.profile, extras
