"""Interference-domain decomposition: coverage components, split, packing.

The IDDE-U game couples two users only when their covering sets share a
server (a move changes channel powers only at the mover's servers, and a
user's benefit reads only its own covering servers' powers).  The coverage-
overlap graph — servers adjacent iff some user covers both — therefore
splits the game into independent sub-games, one per connected component:
solving each component separately is *exact*, not an approximation.

Two size heuristics shape the components into a :class:`ShardPlan`:

* **split** — a component with more users than the configured cap is
  geometrically bisected (median of server positions along the wider
  axis, recursively).  Users whose covering set spans both sides become
  *boundary users*: they are excluded from every shard and deferred to
  the whole-instance reconciliation sweeps, so shard solves remain exact
  for the interior users they do own.
* **pack** — small domains are merged into shared shards
  (first-fit-decreasing onto the least-loaded shard), bounding shard
  count and amortising per-shard setup.  Merging is exact: a shard
  holding several components is just their disjoint union.

Everything here is deterministic in the instance: stable sorts, index-
ordered tie-breaks, no RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..core.instance import IDDEInstance
from ..errors import ShardingError
from .config import ShardConfig

__all__ = ["Domain", "ShardPlan", "build_plan"]


@dataclass(frozen=True)
class Domain:
    """One shard's slice of the instance, in global indices (both sorted)."""

    servers: np.ndarray
    users: np.ndarray

    @property
    def n_users(self) -> int:
        return int(self.users.size)

    @property
    def n_servers(self) -> int:
        return int(self.servers.size)


@dataclass(frozen=True)
class ShardPlan:
    """The full decomposition of one instance.

    Attributes
    ----------
    shards : the domains to solve independently (possibly merged).
    boundary_users : users excluded from every shard by a size-cap split;
        they enter the game only in the reconciliation sweeps.
    uncovered_users : users with no covering server — unallocatable by
        Eq. (1), they belong to no shard and never move.
    n_domains : natural coverage components that contained users, before
        splitting and packing.
    n_users, n_servers : dimensions of the decomposed instance.
    """

    shards: tuple[Domain, ...]
    boundary_users: np.ndarray
    uncovered_users: np.ndarray
    n_domains: int
    n_users: int
    n_servers: int

    @cached_property
    def is_trivial(self) -> bool:
        """True when the plan is one shard owning every allocatable user —
        the sharded solver then falls back to the plain game, bit-for-bit."""
        return (
            len(self.shards) == 1
            and self.boundary_users.size == 0
            and self.shards[0].n_users + self.uncovered_users.size == self.n_users
        )

    def validate(self) -> None:
        """Check the plan partitions the users (raises :class:`ShardingError`)."""
        seen = np.concatenate(
            [d.users for d in self.shards]
            + [self.boundary_users, self.uncovered_users]
        ) if self.shards else np.concatenate([self.boundary_users, self.uncovered_users])
        if seen.size != self.n_users or not np.array_equal(
            np.sort(seen), np.arange(self.n_users)
        ):
            raise ShardingError(
                f"shard plan does not partition the {self.n_users} users "
                f"(covered {seen.size}, {np.unique(seen).size} distinct)"
            )

    def summary(self) -> str:
        sizes = sorted((d.n_users for d in self.shards), reverse=True)
        return (
            f"{len(self.shards)} shard(s) from {self.n_domains} domain(s), "
            f"users/shard {sizes}, boundary={self.boundary_users.size}, "
            f"uncovered={self.uncovered_users.size}"
        )


def build_plan(instance: IDDEInstance, cfg: ShardConfig | None = None) -> ShardPlan:
    """Decompose ``instance`` into a deterministic :class:`ShardPlan`."""
    cfg = cfg or ShardConfig()
    scenario = instance.scenario
    covering = scenario.covering_servers
    labels = instance.new_engine().overlap_components()

    m = scenario.n_users
    user_comp = np.full(m, -1, dtype=np.int64)
    for j, servers in enumerate(covering):
        if len(servers):
            user_comp[j] = labels[int(servers[0])]
    uncovered = np.flatnonzero(user_comp < 0)

    domains: list[Domain] = []
    for c in range(int(labels.max()) + 1 if labels.size else 0):
        users = np.flatnonzero(user_comp == c)
        if users.size == 0:
            continue  # a server island nobody covers from: nothing to solve
        domains.append(Domain(servers=np.flatnonzero(labels == c), users=users))
    n_domains = len(domains)

    cap = cfg.user_cap(m)
    boundary: list[np.ndarray] = []
    if cap is not None:
        split: list[Domain] = []
        for dom in domains:
            split.extend(_bisect(dom, scenario.server_xy, covering, cap, boundary))
        domains = split

    shards = _pack(domains, cfg)
    plan = ShardPlan(
        shards=tuple(shards),
        boundary_users=(
            np.sort(np.concatenate(boundary)) if boundary else np.empty(0, dtype=np.int64)
        ),
        uncovered_users=uncovered,
        n_domains=n_domains,
        n_users=m,
        n_servers=scenario.n_servers,
    )
    plan.validate()
    return plan


def _bisect(
    dom: Domain,
    server_xy: np.ndarray,
    covering: list[np.ndarray],
    cap: int,
    boundary: list[np.ndarray],
) -> list[Domain]:
    """Recursively bisect ``dom`` until each piece holds at most ``cap``
    interior users; spanning users are appended to ``boundary``."""
    if dom.n_users <= cap or dom.n_servers < 2:
        # A single-server domain above the cap cannot be split — its users
        # all share that server, so any cut would orphan them all.
        return [dom]
    xy = server_xy[dom.servers]
    spread = xy.max(axis=0) - xy.min(axis=0)
    axis = 0 if spread[0] >= spread[1] else 1
    order = np.argsort(xy[:, axis], kind="stable")
    half = dom.n_servers // 2
    side = np.full(server_xy.shape[0], -1, dtype=np.int64)
    side[dom.servers[order[:half]]] = 0
    side[dom.servers[order[half:]]] = 1

    left_users, right_users, spanning = [], [], []
    for j in dom.users:
        sides = side[covering[int(j)]]
        if sides.max() == sides.min():
            (left_users if sides[0] == 0 else right_users).append(int(j))
        else:
            spanning.append(int(j))
    if spanning:
        boundary.append(np.asarray(spanning, dtype=np.int64))

    out: list[Domain] = []
    for mask_side, users in ((0, left_users), (1, right_users)):
        servers = np.sort(dom.servers[side[dom.servers] == mask_side])
        if not users:
            continue  # every user of this half spans the cut: nothing interior
        out.extend(
            _bisect(
                Domain(servers=servers, users=np.asarray(users, dtype=np.int64)),
                server_xy,
                covering,
                cap,
                boundary,
            )
        )
    return out


def _pack(domains: list[Domain], cfg: ShardConfig) -> list[Domain]:
    """Pack domains into shards: first-fit-decreasing onto the least-loaded
    shard, deterministic under stable sorting.

    ``repro.parallel.chunk_evenly`` is deliberately *not* used here: its
    historical contract drops empty chunks, so it cannot pin the shard
    count when domains are fewer than shards (its ``exact=True`` flag now
    returns empty chunks instead, but balanced bin-packing by user count —
    not by domain count — is what keeps shard wall-clocks even).
    """
    if not domains:
        return []
    order = sorted(
        range(len(domains)),
        key=lambda i: (-domains[i].n_users, int(domains[i].servers[0])),
    )
    if cfg.n_shards is not None:
        n_bins = min(cfg.n_shards, len(domains))
    elif cfg.min_users > 1:
        # Merge undersized domains: one bin per large domain, plus as few
        # bins as needed so every bin reaches min_users where possible.
        large = sum(1 for d in domains if d.n_users >= cfg.min_users)
        small_users = sum(d.n_users for d in domains if d.n_users < cfg.min_users)
        n_bins = large + max(-(-small_users // cfg.min_users), 1 if small_users else 0)
        n_bins = min(n_bins, len(domains))
    else:
        return [domains[i] for i in order]

    bins: list[list[Domain]] = [[] for _ in range(n_bins)]
    loads = [0] * n_bins
    for i in order:
        b = loads.index(min(loads))
        bins[b].append(domains[i])
        loads[b] += domains[i].n_users
    merged = []
    for group in bins:
        if not group:
            continue
        merged.append(
            Domain(
                servers=np.sort(np.concatenate([d.servers for d in group])),
                users=np.sort(np.concatenate([d.users for d in group])),
            )
        )
    return merged
