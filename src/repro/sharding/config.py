"""Configuration for the interference-domain decomposition solver."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GameConfig
from ..errors import ConfigurationError

__all__ = ["ShardConfig"]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigurationError(msg)


@dataclass(frozen=True)
class ShardConfig:
    """How to decompose an instance into interference domains and solve them.

    The default configuration shards along the *natural* coverage-overlap
    components only — an exact decomposition (no boundary users, no
    approximation; see :mod:`repro.sharding.domains`).  Size controls turn
    on the two heuristics:

    Attributes
    ----------
    n_shards:
        Target shard count (the CLI's ``--shards N``).  Domains larger
        than ``ceil(M / n_shards)`` users are geometrically bisected, then
        all domains are packed into at most ``n_shards`` shards
        (first-fit-decreasing).  ``None`` (the CLI's ``--shards auto``)
        keeps the natural domains.
    max_users:
        Explicit per-domain size cap: any domain with more interior users
        is bisected until it fits.  Splitting a connected domain creates
        *boundary users* (covering sets spanning two sides); they are
        deferred to the reconciliation sweeps.  ``None`` disables the cap.
        When both ``n_shards`` and ``max_users`` are given the tighter cap
        wins.
    min_users:
        Domains smaller than this are packed together with others into a
        shared shard, amortising per-shard setup.  ``1`` (default) never
        merges on its own (packing still happens under ``n_shards``).
    n_workers:
        Worker processes for the shard fan-out (``repro.parallel``
        semantics: ``None`` = auto, ``0``/``1`` = serial).  Benchmarks pin
        this serial via :func:`repro.parallel.force_serial` regardless.
    reconcile_schedule:
        Update schedule for the whole-instance reconciliation sweeps.
        Round-robin (default) settles all boundary users in one pass per
        sweep; the winner schedules would pay one full sweep per move.
    reconcile_max_rounds:
        Round cap for the reconciliation game (a safety net — a clean
        decomposition reconciles in a single quiescent sweep).
    """

    n_shards: int | None = None
    max_users: int | None = None
    min_users: int = 1
    n_workers: int | None = None
    reconcile_schedule: str = "round-robin"
    reconcile_max_rounds: int = 1000

    def __post_init__(self) -> None:
        _require(
            self.n_shards is None or self.n_shards >= 1,
            f"n_shards must be >= 1 or None, got {self.n_shards}",
        )
        _require(
            self.max_users is None or self.max_users >= 1,
            f"max_users must be >= 1 or None, got {self.max_users}",
        )
        _require(self.min_users >= 1, f"min_users must be >= 1, got {self.min_users}")
        _require(
            self.n_workers is None or self.n_workers >= 0,
            f"n_workers must be >= 0 or None, got {self.n_workers}",
        )
        _require(
            self.reconcile_schedule in GameConfig._SCHEDULES,
            f"reconcile_schedule must be one of {GameConfig._SCHEDULES}, "
            f"got {self.reconcile_schedule!r}",
        )
        _require(
            self.reconcile_max_rounds >= 1,
            f"reconcile_max_rounds must be >= 1, got {self.reconcile_max_rounds}",
        )

    def user_cap(self, n_users: int) -> int | None:
        """The effective per-domain user cap for an ``n_users`` instance."""
        caps = []
        if self.max_users is not None:
            caps.append(self.max_users)
        if self.n_shards is not None:
            caps.append(-(-n_users // self.n_shards))  # ceil division
        return min(caps) if caps else None
