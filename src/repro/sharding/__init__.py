"""Interference-domain decomposition: solve the IDDE-U game shard-by-shard.

SINR coverage is spatially local, so the coverage-overlap graph splits a
city-scale instance into weakly-coupled interference domains.  This
package extracts those domains (:mod:`~repro.sharding.domains`), slices
each into a self-contained sub-instance (:mod:`~repro.sharding.extract`),
solves shards concurrently with independent RNG streams, and reconciles
the stitched profile with global best-response sweeps so the result
certifies as an ε-Nash on the whole instance
(:mod:`~repro.sharding.solver`).  See ``docs/SHARDING.md``.
"""

from .config import ShardConfig
from .domains import Domain, ShardPlan, build_plan
from .extract import SubInstance, extract_subinstance
from .solver import ShardedIddeG, ShardOutcome, ShardTask, solve_sharded_game

__all__ = [
    "ShardConfig",
    "Domain",
    "ShardPlan",
    "build_plan",
    "SubInstance",
    "extract_subinstance",
    "ShardTask",
    "ShardOutcome",
    "ShardedIddeG",
    "solve_sharded_game",
]
