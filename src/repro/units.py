"""Unit conversions used throughout the IDDE models.

The paper mixes telecom units (dBm noise floors, Watt transmit powers) with
storage-system units (megabytes, MB/s link speeds, millisecond latencies).
Centralising the conversions here keeps every model module dimensionally
honest and makes the conventions testable in one place.

Conventions
-----------
* Distances are **metres**.
* Data sizes are **megabytes (MB)**.
* Link speeds and data rates are **MB/s** (the paper reports ``MBps``).
* Latencies are reported in **milliseconds** but computed internally in
  seconds; :func:`seconds_to_ms` converts at the reporting boundary.
* Transmit powers are **Watts**; the noise floor is configured in **dBm**
  and converted to Watts with :func:`dbm_to_watts`.
"""

from __future__ import annotations

import math

__all__ = [
    "dbm_to_watts",
    "watts_to_dbm",
    "seconds_to_ms",
    "ms_to_seconds",
    "mb_to_bytes",
    "bytes_to_mb",
    "MB",
    "MS_PER_S",
    "UNIT_SUFFIXES",
    "CONVERTER_UNITS",
    "unit_for_name",
]

#: Name-suffix -> unit tag, the machine-readable form of the conventions
#: above.  The IDDE011 lint rule seeds its dataflow from these suffixes, so
#: naming a parameter ``latency_ms`` *is* declaring its unit.
UNIT_SUFFIXES: dict[str, str] = {
    "_seconds": "s",
    "_sec": "s",
    "_s": "s",
    "_millis": "ms",
    "_ms": "ms",
    "_mb": "MB",
    "_bytes": "B",
    "_mbps": "MB/s",
    "_dbm": "dBm",
    "_watts": "W",
}

#: Converter function name -> (input unit, output unit).  Applying one to a
#: value tagged with a different input unit is an IDDE011 violation; the
#: result carries the output tag.
CONVERTER_UNITS: dict[str, tuple[str, str]] = {
    "dbm_to_watts": ("dBm", "W"),
    "watts_to_dbm": ("W", "dBm"),
    "seconds_to_ms": ("s", "ms"),
    "ms_to_seconds": ("ms", "s"),
    "mb_to_bytes": ("MB", "B"),
    "bytes_to_mb": ("B", "MB"),
}

#: Suffixes sorted longest-first so ``_ms`` wins over ``_s``.
_SUFFIXES_BY_LENGTH = sorted(UNIT_SUFFIXES, key=len, reverse=True)


def unit_for_name(name: str) -> str | None:
    """The unit tag a variable/parameter/function name declares, if any.

    >>> unit_for_name("latency_ms")
    'ms'
    >>> unit_for_name("total_seconds")
    's'
    >>> unit_for_name("n_items") is None
    True
    """
    for suffix in _SUFFIXES_BY_LENGTH:
        if name.endswith(suffix) and len(name) > len(suffix):
            return UNIT_SUFFIXES[suffix]
    return None


#: Bytes per megabyte (decimal convention, as in storage marketing and the
#: paper's MB/MBps figures).
MB: int = 1_000_000

#: Milliseconds per second.
MS_PER_S: float = 1_000.0


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to Watts.

    ``P[W] = 10 ** ((P[dBm] - 30) / 10)``.  The paper's additive white
    Gaussian noise floor of −174 dBm converts to ≈ 3.98e−21 W.
    """
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in Watts to dBm.

    Raises
    ------
    ValueError
        If ``watts`` is not strictly positive (dBm is a log scale).
    """
    if watts <= 0.0:
        raise ValueError(f"power must be > 0 W to express in dBm, got {watts!r}")
    return 10.0 * math.log10(watts) + 30.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_S


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / MS_PER_S


def mb_to_bytes(mb: float) -> float:
    """Convert megabytes to bytes (decimal MB)."""
    return mb * MB


def bytes_to_mb(n_bytes: float) -> float:
    """Convert bytes to megabytes (decimal MB)."""
    return n_bytes / MB
