"""Kernel-pair parity harness: ``reference`` vs ``batched`` best response.

IDDE-Bench measures how fast a kernel is; this module establishes that a
fast kernel is *the same algorithm*.  The two evaluation kernels of
:class:`~repro.core.game.IddeUGame` are held to bit-for-bit parity — not
"numerically close": both reduce interference over the identical padded
covering row (see :mod:`repro.radio.sinr`), so every benefit they compute
is the identical float, every argmax breaks ties identically, and every
run therefore applies the identical move sequence.

:func:`verify_kernel_pair` replays a grid of ``(seed, schedule)`` cases
over the shared bench fixtures and compares, per case:

* the full ordered ``GameResult.move_log`` — the strongest observable,
  implying identical RNG consumption for the random-winner schedule;
* the final allocation profile (server and channel assignments);
* the convergence certificate (``converged`` and ``is_nash`` flags,
  round and move counts).

The CI smoke gate runs it via ``idde bench --verify-parity``;
``tests/core/test_game_kernels.py`` pins the same contract in the test
suite.  A parity break is a correctness bug in whichever kernel changed
last — never relax the comparison to tolerances to make it pass.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..config import GameConfig
from ..core.game import GameResult, IddeUGame
from ..obs.tracer import Tracer
from .fixtures import instance_for

__all__ = [
    "KernelPairCase",
    "ParityReport",
    "verify_kernel_pair",
    "render_parity_text",
    "PARITY_SEEDS",
    "PARITY_SCHEDULES",
]

#: Default verification grid: 5 seeds x all three schedules.
PARITY_SEEDS: tuple[int, ...] = (0, 1, 2, 3, 4)
PARITY_SCHEDULES: tuple[str, ...] = tuple(GameConfig._SCHEDULES)


@dataclass(frozen=True)
class KernelPairCase:
    """Parity verdict for one ``(scale, seed, schedule)`` replay."""

    scale: str
    seed: int
    schedule: str
    moves: int
    rounds: int
    same_move_log: bool
    same_profile: bool
    same_certificate: bool

    @property
    def ok(self) -> bool:
        return self.same_move_log and self.same_profile and self.same_certificate

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        detail = f"moves={self.moves} rounds={self.rounds}"
        if not self.ok:
            broken = [
                name
                for name, good in (
                    ("move-log", self.same_move_log),
                    ("profile", self.same_profile),
                    ("certificate", self.same_certificate),
                )
                if not good
            ]
            detail += " broken=" + ",".join(broken)
        return (
            f"{self.scale} seed={self.seed} {self.schedule:<17s} {status:<8s} {detail}"
        )


@dataclass(frozen=True)
class ParityReport:
    """Aggregate verdict over the verification grid."""

    cases: tuple[KernelPairCase, ...]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> tuple[KernelPairCase, ...]:
        return tuple(case for case in self.cases if not case.ok)


def _run(
    instance, cfg: GameConfig, kernel: str, seed: int, tracer: Tracer | None
) -> GameResult:
    return IddeUGame(instance, replace(cfg, kernel=kernel), tracer=tracer).run(rng=seed)


def _compare(
    scale: str, seed: int, schedule: str, ref: GameResult, bat: GameResult
) -> KernelPairCase:
    same_profile = bool(
        np.array_equal(ref.profile.server, bat.profile.server)
        and np.array_equal(ref.profile.channel, bat.profile.channel)
    )
    same_certificate = (
        ref.converged == bat.converged
        and ref.is_nash == bat.is_nash
        and ref.rounds == bat.rounds
        and ref.moves == bat.moves
    )
    return KernelPairCase(
        scale=scale,
        seed=seed,
        schedule=schedule,
        moves=ref.moves,
        rounds=ref.rounds,
        same_move_log=ref.move_log == bat.move_log,
        same_profile=same_profile,
        same_certificate=same_certificate,
    )


def verify_kernel_pair(
    scale: str = "S",
    seeds: tuple[int, ...] = PARITY_SEEDS,
    schedules: tuple[str, ...] = PARITY_SCHEDULES,
    base_cfg: GameConfig | None = None,
    tracer: Tracer | None = None,
) -> ParityReport:
    """Replay every ``(seed, schedule)`` case under both kernels.

    Each case plays the identical shared fixture instance from an
    identical RNG seed through the reference and batched kernels and
    compares move logs, final profiles and convergence certificates.
    An attached ``tracer`` observes both replays; since the tracer never
    consumes RNG, parity must hold with tracing on.
    """
    base = base_cfg or GameConfig()
    cases = []
    for seed in seeds:
        instance = instance_for(scale, seed)
        for schedule in schedules:
            cfg = replace(base, schedule=schedule)
            ref = _run(instance, cfg, "reference", seed, tracer)
            bat = _run(instance, cfg, "batched", seed, tracer)
            cases.append(_compare(scale, seed, schedule, ref, bat))
    return ParityReport(cases=tuple(cases))


def render_parity_text(report: ParityReport) -> str:
    """Human-readable verdict table for the CLI."""
    lines = ["kernel-pair parity: reference vs batched"]
    lines.extend("  " + case.describe() for case in report.cases)
    verdict = "PARITY OK" if report.ok else f"PARITY BROKEN ({len(report.failures)} cases)"
    lines.append(f"{verdict}: {len(report.cases)} cases")
    return "\n".join(lines)
