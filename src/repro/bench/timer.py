"""The timer core: warmup + repeated timed runs with robust statistics.

Microbenchmark discipline, dependency-free (stdlib only):

* the default clock is :func:`time.perf_counter` — monotonic, highest
  available resolution, immune to NTP slew; any injected clock must be
  monotonic too, and a backwards step is reported as a
  :class:`~repro.errors.BenchError` rather than silently producing a
  negative sample;
* ``warmup`` runs execute before measurement and are discarded, absorbing
  first-call costs (allocator warm-up, numpy dispatch caches, branch
  predictors);
* the reported statistics are order statistics — **median**, **IQR**
  (inter-quartile range) and **min** — because wall-clock samples on a
  shared host are contaminated by one-sided scheduling noise that ruins
  means and variances.  The minimum is the least-noise estimate of the
  kernel's true cost; the IQR is the noise-awareness input to the
  comparison gate (:mod:`repro.bench.compare`).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import BenchError

__all__ = ["BenchStats", "summarize", "time_callable"]


@dataclass(frozen=True)
class BenchStats:
    """Summary statistics over the timed (post-warmup) runs of one bench."""

    repeats: int
    warmup: int
    times_s: tuple[float, ...]
    median_s: float
    mean_s: float
    min_s: float
    max_s: float
    iqr_s: float

    def to_dict(self) -> dict:
        """JSON-ready representation (schema in :mod:`repro.bench.document`)."""
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "times_s": list(self.times_s),
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "iqr_s": self.iqr_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchStats":
        try:
            return cls(
                repeats=int(d["repeats"]),
                warmup=int(d["warmup"]),
                times_s=tuple(float(t) for t in d["times_s"]),
                median_s=float(d["median_s"]),
                mean_s=float(d["mean_s"]),
                min_s=float(d["min_s"]),
                max_s=float(d["max_s"]),
                iqr_s=float(d["iqr_s"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchError(f"malformed benchmark stats entry: {d!r}") from exc


def summarize(times_s: list[float] | tuple[float, ...], *, warmup: int = 0) -> BenchStats:
    """Compute :class:`BenchStats` over raw per-run durations (seconds).

    ``times_s`` holds only the measured runs — warmup runs are discarded
    before this point and recorded just as a count.
    """
    times = tuple(float(t) for t in times_s)
    if not times:
        raise BenchError("cannot summarize zero timed runs")
    if any(t < 0 for t in times):
        raise BenchError(f"negative duration in samples {times}; clock went backwards")
    if len(times) >= 2:
        q1, _, q3 = statistics.quantiles(times, n=4, method="inclusive")
        iqr = q3 - q1
    else:
        iqr = 0.0
    return BenchStats(
        repeats=len(times),
        warmup=warmup,
        times_s=times,
        median_s=statistics.median(times),
        mean_s=statistics.fmean(times),
        min_s=min(times),
        max_s=max(times),
        iqr_s=iqr,
    )


def time_callable(
    fn: Callable[[], object],
    *,
    repeats: int = 5,
    warmup: int = 1,
    clock: Callable[[], float] = time.perf_counter,
) -> BenchStats:
    """Run ``fn`` ``warmup + repeats`` times, timing the last ``repeats``.

    The clock is sampled immediately around each call so per-run Python
    overhead between samples is excluded.  A non-monotonic ``clock``
    (possible only with an injected fake) raises :class:`BenchError`.
    """
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise BenchError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    for _ in range(repeats):
        t0 = clock()
        fn()
        t1 = clock()
        if t1 < t0:
            raise BenchError(
                f"clock went backwards ({t0} -> {t1}); benchmarks require a monotonic clock"
            )
        times.append(t1 - t0)
    return summarize(times, warmup=warmup)
