"""The registered benchmarks covering the IDDE-G hot paths.

Each factory does its setup (fixtures, engines, profiles) outside the
timed callable, and each timed callable performs enough inner work to sit
comfortably above clock resolution at the ``S`` scale (inner-loop counts
are part of a benchmark's identity — changing one invalidates trajectory
comparisons for that benchmark, so bump the benchmark's *name* too).

The hot paths, mapped to the paper:

* ``sinr.*`` — the :class:`~repro.radio.sinr.SinrEngine` kernels behind
  every best-response evaluation (Eq. 2/12) and the global Eq. 4/5 rates;
* ``game.round.*`` — one best-response round under each of the three
  update schedules of Algorithm 1; each schedule is registered twice, as
  a *kernel pair* — the per-user ``reference`` kernel and its
  bit-for-bit-equivalent ``.batched`` einsum counterpart (parity proven
  by :mod:`repro.bench.parity`), so a run shows the speed-up directly;
* ``game.converge`` / ``game.converge.batched`` — a full IDDE-U run to
  Nash equilibrium under each kernel;
* ``shard.*`` — the interference-domain decomposition layer: plan
  construction (``shard.build``), a full sharded solve including
  reconciliation (``shard.solve``), and its unsharded twin
  (``shard.solve.global``) on the identical instance and config — their
  ratio IS the decomposition speed-up (serial by construction: the timed
  region runs under ``force_serial``).  Both solve benches use the
  literal Algorithm 1 ``best-gain-winner`` schedule on the batched
  kernel, where decomposition shortens the per-move candidate sweep;
  run them at ``XL`` for the trajectory point;
* ``delivery.greedy`` / ``delivery.greedy.batched`` — Phase 2
  marginal-latency-per-byte placement (Eq. 17, Theorems 6–7) as a kernel
  pair: the reference per-item sweep and the incremental gain-table
  kernel replay the identical placement sequence (parity proven by
  :mod:`repro.bench.delivery_parity`), so their ratio IS the kernel
  speed-up; run them at ``M_k64``, where delivery dominates the solve,
  for the trajectory point;
* ``workload.replay.warm`` / ``workload.replay.cold`` — the day-in-the-
  life streaming pair: a Poisson/Zipf event stream batched into epochs,
  re-solved through the :func:`repro.api.solve` façade either warm
  (``warm_start=`` the previous epoch's equilibrium) or cold (from
  scratch) on the *identical* pre-built epoch instances; every epoch
  asserts the ε-Nash certificate, so their ratio IS the incremental
  re-solve speed-up with certificates intact.  Run at ``M`` (10k events)
  for the trajectory point; ``S`` is the CI smoke size;
* ``serve.request.warm`` — the IDDE-Serve hot path end to end: a
  warm-booted :class:`~repro.serve.SolverSession` services the same
  day-in-the-life delta batches — fold events, project the instance,
  warm re-solve, *independently* re-check the ε-Nash certificate —
  exactly what one ``POST /v1/events`` costs the daemon per request
  (run at ``M`` for the trajectory point);
* ``topology.all-pairs-dijkstra`` — the pure-Python fallback Dijkstra
  over all sources, paired with ``topology.all-pairs-dijkstra.scipy``,
  the compiled csgraph *production* path (the default everywhere) at a
  higher inner-loop count: the compiled kernel's per-call cost shrinks
  with scale while the Python one grows, so the twin needs more calls to
  clear clock resolution;
* ``datasets.eua-sample`` — EUA-style per-trial scenario generation;
* ``analysis.selflint.*`` — the IDDE-Lint self-lint of ``src/repro`` as a
  cold/warm cache pair: ``cold`` times the full semantic analysis,
  ``warm`` the incremental path, and their ratio gates the cache's
  effectiveness (``tests/bench/test_self_lint.py`` requires ≥5x).
"""

from __future__ import annotations

from typing import Callable

from ..config import DeliveryConfig, GameConfig
from ..core.delivery import greedy_delivery
from ..core.game import IddeUGame
from ..datasets.eua import sample_scenario
from ..radio.sinr import UNALLOCATED, SinrEngine
from ..rng import spawn_rng
from ..topology.shortest_path import all_pairs_path_cost
from .fixtures import equilibrium_profile, eua_pool, instance_for, scale_spec
from .registry import benchmark

__all__: list[str] = []

#: Inner-loop counts lifting sub-100µs kernels above timer noise at scale S.
_CHURN_SWEEPS = 10
_RATES_CALLS = 100
_GREEDY_CALLS = 3
_DIJKSTRA_CALLS = 3
_DIJKSTRA_SCIPY_CALLS = 50


def _loaded_engine(scale: str, seed: int) -> SinrEngine:
    """A fresh engine holding the equilibrium profile (setup helper)."""
    instance = instance_for(scale, seed)
    profile = equilibrium_profile(scale, seed)
    engine = instance.new_engine()
    engine.load_profile(profile.server, profile.channel)
    return engine


@benchmark(
    "sinr.candidates",
    "CandidateView evaluation (Eq. 2/12) for every user at equilibrium",
)
def _bench_sinr_candidates(scale: str, seed: int) -> Callable[[], object]:
    engine = _loaded_engine(scale, seed)
    users = range(engine.scenario.n_users)

    def run() -> object:
        views = [engine.candidates(j) for j in users]
        return len(views)

    return run


@benchmark(
    "sinr.churn",
    f"incremental unassign/assign bookkeeping, {_CHURN_SWEEPS} full user sweeps",
)
def _bench_sinr_churn(scale: str, seed: int) -> Callable[[], object]:
    engine = _loaded_engine(scale, seed)
    allocated = [
        (j, int(engine.alloc_server[j]), int(engine.alloc_channel[j]))
        for j in range(engine.scenario.n_users)
        if engine.alloc_server[j] != UNALLOCATED
    ]

    def run() -> object:
        for _ in range(_CHURN_SWEEPS):
            for j, server, channel in allocated:
                engine.unassign(j)
                engine.assign(j, server, channel)
        return len(allocated)

    return run


@benchmark(
    "sinr.rates",
    f"vectorised global Eq. 4/5 rate evaluation, {_RATES_CALLS} calls",
)
def _bench_sinr_rates(scale: str, seed: int) -> Callable[[], object]:
    engine = _loaded_engine(scale, seed)

    def run() -> object:
        total = 0.0
        for _ in range(_RATES_CALLS):
            total += float(engine.rates().sum())
        return total

    return run


def _one_round_factory(
    schedule: str, kernel: str = "reference"
) -> Callable[[str, int], Callable[[], object]]:
    def make(scale: str, seed: int) -> Callable[[], object]:
        instance = instance_for(scale, seed)
        cfg = GameConfig(schedule=schedule, kernel=kernel, max_rounds=1)

        def run() -> object:
            return IddeUGame(instance, cfg).run(rng=seed).moves

        return run

    return make


# Each schedule's round benchmark is registered as a kernel pair: the
# per-user reference loop and the ``.batched`` einsum kernel replay the
# identical round, so their ratio IS the kernel speed-up (parity verified
# by ``idde bench --verify-parity``).
benchmark(
    "game.round.round-robin",
    "one best-response round, round-robin schedule (package default)",
)(_one_round_factory("round-robin"))

benchmark(
    "game.round.round-robin.batched",
    "the same round-robin round on the batched einsum kernel (pair)",
)(_one_round_factory("round-robin", kernel="batched"))

def _one_round_traced_factory(
    schedule: str, kernel: str = "reference"
) -> Callable[[str, int], Callable[[], object]]:
    """The ``.traced`` twin: the identical round with a live recording tracer.

    The tracer is constructed inside the timed callable on purpose — the
    twin times the full observed cost of tracing a round (tracer setup,
    per-move events, span bookkeeping), so ``twin / plain`` is the
    recording overhead and the plain benchmark gates the no-op overhead.
    """

    def make(scale: str, seed: int) -> Callable[[], object]:
        from ..obs.tracer import RecordingTracer

        instance = instance_for(scale, seed)
        cfg = GameConfig(schedule=schedule, kernel=kernel, max_rounds=1)

        def run() -> object:
            tracer = RecordingTracer()
            moves = IddeUGame(instance, cfg, tracer=tracer).run(rng=seed).moves
            return (moves, len(tracer.events))

        return run

    return make


# The two ``.traced`` twins time the recording-tracer cost of the same
# round (tracer constructed inside the timed region); the plain pair above
# runs with the shared no-op tracer, so CI gates the no-op overhead simply
# by gating the plain benchmarks against the seed baseline.
benchmark(
    "game.round.round-robin.traced",
    "the same round-robin round with a live recording tracer (overhead twin)",
)(_one_round_traced_factory("round-robin"))

benchmark(
    "game.round.round-robin.batched.traced",
    "the batched round-robin round with a live recording tracer (overhead twin)",
)(_one_round_traced_factory("round-robin", kernel="batched"))

benchmark(
    "game.round.best-gain-winner",
    "one best-response round, literal Algorithm 1 best-gain-winner schedule",
)(_one_round_factory("best-gain-winner"))

benchmark(
    "game.round.best-gain-winner.batched",
    "the same best-gain-winner round on the batched einsum kernel (pair)",
)(_one_round_factory("best-gain-winner", kernel="batched"))

benchmark(
    "game.round.random-winner",
    "one best-response round, asynchronous random-winner schedule",
)(_one_round_factory("random-winner"))

benchmark(
    "game.round.random-winner.batched",
    "the same random-winner round on the batched einsum kernel (pair)",
)(_one_round_factory("random-winner", kernel="batched"))


def _converge_factory(kernel: str) -> Callable[[str, int], Callable[[], object]]:
    def make(scale: str, seed: int) -> Callable[[], object]:
        instance = instance_for(scale, seed)
        cfg = GameConfig(kernel=kernel)

        def run() -> object:
            return IddeUGame(instance, cfg).run(rng=seed).moves

        return run

    return make


benchmark(
    "game.converge",
    "full IDDE-U best-response dynamics to Nash equilibrium (Theorem 4)",
)(_converge_factory("reference"))

benchmark(
    "game.converge.batched",
    "the same full run to Nash equilibrium on the batched kernel (pair)",
)(_converge_factory("batched"))


#: The shard solve pair plays the literal Algorithm 1 schedule: one winner
#: per round means the global run pays a full candidate sweep per move,
#: which is exactly the cost decomposition amortises per shard.
_SHARD_GAME_CFG = GameConfig(schedule="best-gain-winner", kernel="batched")


@benchmark(
    "shard.build",
    "interference-domain plan construction (components + split + pack)",
)
def _bench_shard_build(scale: str, seed: int) -> Callable[[], object]:
    from ..sharding import ShardConfig, build_plan

    instance = instance_for(scale, seed)
    cfg = ShardConfig()

    def run() -> object:
        return len(build_plan(instance, cfg).shards)

    return run


@benchmark(
    "shard.solve",
    "sharded IDDE-U solve + reconciliation, best-gain-winner/batched (pair)",
)
def _bench_shard_solve(scale: str, seed: int) -> Callable[[], object]:
    from ..sharding import ShardConfig, solve_sharded_game

    instance = instance_for(scale, seed)
    shard_cfg = ShardConfig(n_workers=0)

    def run() -> object:
        result, _ = solve_sharded_game(
            instance, _SHARD_GAME_CFG, shard_cfg, rng=seed
        )
        assert result.is_nash
        return result.moves

    return run


@benchmark(
    "shard.solve.global",
    "the same solve unsharded on the whole instance (pair twin)",
)
def _bench_shard_solve_global(scale: str, seed: int) -> Callable[[], object]:
    instance = instance_for(scale, seed)

    def run() -> object:
        result = IddeUGame(instance, _SHARD_GAME_CFG).run(rng=seed)
        assert result.is_nash
        return result.moves

    return run


@benchmark(
    "delivery.greedy",
    f"Phase 2 greedy latency-per-byte placement (Eq. 17), {_GREEDY_CALLS} calls",
)
def _bench_delivery_greedy(scale: str, seed: int) -> Callable[[], object]:
    instance = instance_for(scale, seed)
    profile = equilibrium_profile(scale, seed)
    # Materialise the cached path-cost model outside the timed region.
    assert instance.latency_model is not None

    def run() -> object:
        replicas = 0
        for _ in range(_GREEDY_CALLS):
            replicas = greedy_delivery(instance, profile).profile.n_replicas
        return replicas

    return run


@benchmark(
    "delivery.greedy.batched",
    f"the same placement on the incremental gain-table kernel (pair), "
    f"{_GREEDY_CALLS} calls",
)
def _bench_delivery_greedy_batched(scale: str, seed: int) -> Callable[[], object]:
    instance = instance_for(scale, seed)
    profile = equilibrium_profile(scale, seed)
    # Materialise the cached path-cost model outside the timed region.
    assert instance.latency_model is not None
    cfg = DeliveryConfig(kernel="batched")

    def run() -> object:
        replicas = 0
        for _ in range(_GREEDY_CALLS):
            replicas = greedy_delivery(instance, profile, cfg).profile.n_replicas
        return replicas

    return run


# --- the streaming day-in-the-life pair -------------------------------
#
# Both twins replay the identical epoch sequence: the event stream,
# per-epoch instances, and participant masks are pre-built (and their
# lazily-cached state — path costs, coverage, covering sets — pre-touched)
# in a shared memoised setup, so the timed region is exactly the façade
# re-solves.  The warm twin threads each epoch's Solution into the next
# ``warm_start=``; the cold twin solves every epoch from scratch.  Both
# assert the ε-Nash certificate every epoch — the speed-up is *with
# certificates intact*, which is the whole point.
#
# The stream is deliberately gentle (small move sigma, low churn): the
# regime where incremental re-solve should shine is "most users barely
# moved", and a cold solve's move count floors at ~n_active regardless.

#: Events per run and events per epoch, by scale.  ``M`` is the ISSUE's
#: 10k-event day-in-the-life trajectory point; ``S`` the CI smoke size.
_REPLAY_SPEC: dict[str, tuple[int, int]] = {
    "S": (600, 50),
    "M": (10_000, 25),
    "M_k64": (2_000, 50),
    "L": (2_000, 50),
    "XL": (2_000, 50),
}
_REPLAY_GAME_CFG = GameConfig(
    schedule="best-gain-winner", kernel="batched", epsilon=0.01
)

#: (epoch instance, active mask) steps plus the epoch-0 solution, memoised.
_REPLAY_CACHE: dict[tuple[str, int], tuple[list, object]] = {}


def _replay_delivery_cfg():
    # The batched delivery kernel rides along in the replay path: every
    # epoch re-places the catalogue, so the incremental kernel's win
    # lands directly on the day-in-the-life numbers (parity-verified, so
    # the certificates are unchanged).
    return DeliveryConfig(min_gain_s_per_mb=0.05, kernel="batched")


def _replay_day(scale: str, seed: int) -> tuple[list, object]:
    """Pre-built epoch steps + cold epoch-0 solution for ``(scale, seed)``."""
    from ..api import solve
    from ..core.instance import IDDEInstance
    from ..workload import (
        StreamConfig,
        WorkloadState,
        batch_by_count,
        poisson_zipf_stream,
    )

    key = (scale, seed)
    if key in _REPLAY_CACHE:
        return _REPLAY_CACHE[key]
    base = instance_for(scale, seed)
    n_events, per_epoch = _REPLAY_SPEC[scale]
    stream_cfg = StreamConfig(
        move_sigma=2.0, departure_rate=0.0005, arrival_rate=0.002
    )
    stream = poisson_zipf_stream(
        base.scenario,
        rng=spawn_rng(seed, "bench", "replay-stream"),
        config=stream_cfg,
        n_events=n_events,
    )
    state = WorkloadState.from_scenario(base.scenario)
    steps: list[tuple[IDDEInstance, object]] = []
    for batch in batch_by_count(stream, per_epoch):
        state.apply(batch)
        inst = IDDEInstance(state.scenario(base.scenario), base.topology, base.radio)
        # Touch the lazily-cached per-instance state outside the timed
        # region: the bench measures re-solving, not cache construction.
        assert inst.latency_model.path_cost is not None
        assert inst.scenario.coverage is not None
        assert inst.scenario.covering_servers is not None
        steps.append((inst, state.active.copy()))
    sol0 = solve(
        base,
        "idde-g",
        game_config=_REPLAY_GAME_CFG,
        delivery_config=_replay_delivery_cfg(),
        rng=spawn_rng(seed, "bench", "replay-epoch0"),
        validate=False,
    )
    _REPLAY_CACHE[key] = (steps, sol0)
    return _REPLAY_CACHE[key]


def _replay_factory(warm: bool) -> Callable[[str, int], Callable[[], object]]:
    def make(scale: str, seed: int) -> Callable[[], object]:
        from ..api import solve

        steps, sol0 = _replay_day(scale, seed)
        delivery_cfg = _replay_delivery_cfg()

        def run(replay_seed: int = seed) -> object:
            # Default-bound seed so every repeat replays the identical
            # per-epoch streams (the eua-sample idiom).
            prev = sol0
            moves = 0
            for i, (inst, active) in enumerate(steps):
                sol = solve(
                    inst,
                    "idde-g",
                    game_config=_REPLAY_GAME_CFG,
                    delivery_config=delivery_cfg,
                    warm_start=prev if warm else None,
                    active=active,
                    rng=spawn_rng(replay_seed, "replay", i),
                    validate=False,
                )
                assert sol.game is not None and sol.game.is_nash
                if warm:
                    prev = sol
                moves += sol.game.moves
            return moves

        return run

    return make


benchmark(
    "workload.replay.warm",
    "streaming epoch replay, warm-started façade re-solve per epoch "
    "(certificate asserted every epoch)",
)(_replay_factory(warm=True))

benchmark(
    "workload.replay.cold",
    "the identical epoch replay re-solved from scratch every epoch "
    "(pair twin; certificate asserted every epoch)",
)(_replay_factory(warm=False))


#: Pre-built event batches + the cold epoch-0 solution per (scale, seed).
_SERVE_CACHE: dict[tuple[str, int], tuple[list, object]] = {}


def _serve_day(scale: str, seed: int) -> tuple[list, object]:
    """Event batches + warm-boot solution for the serve bench (memoised)."""
    from ..api import execute
    from ..request import SolveRequest
    from ..workload import StreamConfig, batch_by_count, poisson_zipf_stream

    key = (scale, seed)
    if key in _SERVE_CACHE:
        return _SERVE_CACHE[key]
    base = instance_for(scale, seed)
    n_events, per_epoch = _REPLAY_SPEC[scale]
    stream = poisson_zipf_stream(
        base.scenario,
        rng=spawn_rng(seed, "bench", "serve-stream"),
        config=StreamConfig(move_sigma=2.0, departure_rate=0.0005, arrival_rate=0.002),
        n_events=n_events,
    )
    batches = [tuple(batch) for batch in batch_by_count(stream, per_epoch)]
    sol0 = execute(
        base,
        SolveRequest(
            solver="idde-g",
            game_config=_REPLAY_GAME_CFG,
            delivery_config=_replay_delivery_cfg(),
            rng=spawn_rng(seed, "bench", "serve-epoch0"),
            validate=False,
        ),
    )
    assert base.latency_model.path_cost is not None
    _SERVE_CACHE[key] = (batches, sol0)
    return _SERVE_CACHE[key]


@benchmark(
    "serve.request.warm",
    "IDDE-Serve session servicing a day of delta batches: fold events, "
    "warm re-solve, independent certificate check per response",
)
def _bench_serve_request_warm(scale: str, seed: int) -> Callable[[], object]:
    from ..request import SolveRequest
    from ..serve import SolverSession

    base = instance_for(scale, seed)
    batches, sol0 = _serve_day(scale, seed)
    request = SolveRequest(
        solver="idde-g",
        game_config=_REPLAY_GAME_CFG,
        delivery_config=_replay_delivery_cfg(),
        warm_start=True,
        rng=seed,
        validate=False,
    )

    def run() -> object:
        # A fresh warm-booted session per repeat: every repeat services
        # the identical batch sequence from the identical resident state
        # (per-epoch RNG streams are keyed off the session epoch counter,
        # so the replay is deterministic end to end).
        session = SolverSession(base, request, resident=sol0)
        for batch in batches:
            session.apply_events(batch)
            assert session.certified
        return session.stats()["warm_solves"]

    return run


@benchmark(
    "topology.all-pairs-dijkstra",
    f"pure-Python all-pairs Dijkstra over the edge graph, {_DIJKSTRA_CALLS} calls",
)
def _bench_all_pairs_dijkstra(scale: str, seed: int) -> Callable[[], object]:
    cost = instance_for(scale, seed).topology.adjacency_cost

    def run() -> object:
        out = None
        for _ in range(_DIJKSTRA_CALLS):
            out = all_pairs_path_cost(cost, method="dijkstra-py")
        assert out is not None
        return float(out[0, -1])

    return run


@benchmark(
    "topology.all-pairs-dijkstra.scipy",
    "the same all-pairs shortest paths on the compiled scipy production "
    f"path, {_DIJKSTRA_SCIPY_CALLS} calls (pair twin)",
)
def _bench_all_pairs_dijkstra_scipy(scale: str, seed: int) -> Callable[[], object]:
    cost = instance_for(scale, seed).topology.adjacency_cost

    def run() -> object:
        out = None
        for _ in range(_DIJKSTRA_SCIPY_CALLS):
            out = all_pairs_path_cost(cost, method="scipy")
        assert out is not None
        return float(out[0, -1])

    return run


def _repro_src_root():
    """The ``src/repro`` tree this package was imported from."""
    from pathlib import Path

    return Path(__file__).resolve().parents[1]


@benchmark(
    "analysis.selflint.cold",
    "full IDDE-Lint self-lint of src/repro with an empty incremental cache",
)
def _bench_selflint_cold(scale: str, seed: int) -> Callable[[], object]:
    import tempfile
    from pathlib import Path

    from ..analysis import lint_paths

    root = _repro_src_root()

    def run() -> object:
        # A fresh cache directory per call: every file and the whole
        # interprocedural pass miss, so this times the full analysis.
        with tempfile.TemporaryDirectory() as tmp:
            findings = lint_paths([root], cache=Path(tmp) / "cache.json")
        return len(findings)

    return run


@benchmark(
    "analysis.selflint.warm",
    "the same self-lint served from a primed cache (incremental-path pair)",
)
def _bench_selflint_warm(scale: str, seed: int) -> Callable[[], object]:
    import tempfile
    from pathlib import Path

    from ..analysis import lint_paths

    root = _repro_src_root()
    # Prime the cache outside the timed region; the tree never changes
    # between repeats, so every call hits both cache tiers and the timed
    # cost is discovery + hashing + cache lookups.
    tmp = tempfile.mkdtemp(prefix="idde-selflint-")
    cache = Path(tmp) / "cache.json"
    lint_paths([root], cache=cache)

    def run() -> object:
        return len(lint_paths([root], cache=cache))

    return run


@benchmark(
    "datasets.eua-sample",
    "EUA-style per-trial scenario sampling from the shared 125/816 pool",
)
def _bench_eua_sample(scale: str, seed: int) -> Callable[[], object]:
    spec = scale_spec(scale)
    pool = eua_pool(seed)

    def run(sample_seed: int = seed) -> object:
        # The stream is respawned per call so every repeat samples the
        # identical scenario — stable work, stable timing.
        scenario = sample_scenario(
            pool, spec.n, spec.m, spec.k, spawn_rng(sample_seed, "bench", "eua-sample")
        )
        return scenario.n_users

    return run
