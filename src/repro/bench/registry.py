"""The benchmark registry: named, discoverable, setup/timed-split benches.

A benchmark is a *factory*: ``make(scale, seed)`` performs all setup
(instance generation, engine construction, profile loading) and returns
the zero-argument callable that the timer measures.  The split is the
core discipline of the harness — nothing amortisable may leak into the
timed region.

Registration happens at import of :mod:`repro.bench.suite`; the registry
is keyed by dotted names (``sinr.candidates``) so ``--filter`` works on
natural substrings (``sinr``, ``game.round``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import BenchError

__all__ = ["Benchmark", "benchmark", "all_benchmarks", "get_benchmark", "select_benchmarks"]

#: ``make(scale, seed)`` -> the callable to time.
MakeFn = Callable[[str, int], Callable[[], object]]

_REGISTRY: dict[str, "Benchmark"] = {}


@dataclass(frozen=True)
class Benchmark:
    """One registered microbenchmark."""

    name: str
    description: str
    make: MakeFn


def benchmark(name: str, description: str) -> Callable[[MakeFn], MakeFn]:
    """Decorator registering a benchmark factory under ``name``."""

    def register(make: MakeFn) -> MakeFn:
        if name in _REGISTRY:
            raise BenchError(f"duplicate benchmark name {name!r}")
        _REGISTRY[name] = Benchmark(name=name, description=description, make=make)
        return make

    return register


def _ensure_suite_loaded() -> None:
    # The suite module registers itself on import; importing it here keeps
    # `all_benchmarks()` usable without callers knowing the module layout.
    from . import suite  # noqa: F401


def all_benchmarks() -> list[Benchmark]:
    """Every registered benchmark, sorted by name (stable report order)."""
    _ensure_suite_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_benchmark(name: str) -> Benchmark:
    _ensure_suite_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BenchError(
            f"unknown benchmark {name!r}; run `idde bench --list` for the registry"
        ) from None


def select_benchmarks(filter_substr: str | None = None) -> list[Benchmark]:
    """Benchmarks whose name contains ``filter_substr`` (all when ``None``)."""
    benches = all_benchmarks()
    if filter_substr is None:
        return benches
    selected = [b for b in benches if filter_substr in b.name]
    if not selected:
        raise BenchError(
            f"--filter {filter_substr!r} matches no benchmark; "
            f"registered: {[b.name for b in benches]}"
        )
    return selected
