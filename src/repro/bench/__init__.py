"""IDDE-Bench: the statistical microbenchmark subsystem.

The ROADMAP's north star is a system that "runs as fast as the hardware
allows"; this package is the quantified notion of *fast* — the
measurement substrate every performance PR is judged against.

Pieces:

* :mod:`~repro.bench.timer` — warmup + repeated timed runs,
  median/IQR/min statistics, monotonic-clock discipline;
* :mod:`~repro.bench.fixtures` — seeded S/M/L scenario fixtures shared
  across benches;
* :mod:`~repro.bench.registry` / :mod:`~repro.bench.suite` — the named
  benchmarks covering the IDDE-G hot paths;
* :mod:`~repro.bench.runner` — orchestration with serial pinning
  (timed regions never measure process-pool startup);
* :mod:`~repro.bench.document` — the schema-versioned JSON trajectory
  point (``BENCH_<rev>.json``);
* :mod:`~repro.bench.compare` — the noise-aware regression gate
  (``idde bench --compare OLD NEW``);
* :mod:`~repro.bench.parity` — the kernel-pair parity harness proving the
  batched best-response kernel replays the reference move-for-move
  (``idde bench --verify-parity``);
* :mod:`~repro.bench.delivery_parity` — the same discipline for Phase 2:
  the batched incremental delivery kernel replays the reference greedy
  placement-for-placement, reject-count included
  (``idde bench --verify-delivery-parity``);
* :mod:`~repro.bench.shard_parity` — the sharded-vs-global harness
  proving the decomposition solver certifies on the whole instance and
  stitches bit-identically where the theory demands it
  (``idde bench --verify-shard-parity``).

See ``docs/BENCHMARKING.md`` for the workflow and the CI gate.
"""

from .compare import (
    BenchDelta,
    CompareResult,
    classify,
    compare_documents,
    render_compare_text,
)
from .document import (
    SCHEMA,
    build_document,
    document_stats,
    load_document,
    render_text,
    save_document,
    validate_document,
)
from .delivery_parity import (
    DELIVERY_PARITY_CONFIGS,
    DeliveryPairCase,
    DeliveryParityReport,
    render_delivery_parity_text,
    verify_delivery_pair,
)
from .fixtures import SCALES, ScaleSpec, instance_for, scale_spec
from .parity import (
    PARITY_SCHEDULES,
    PARITY_SEEDS,
    KernelPairCase,
    ParityReport,
    render_parity_text,
    verify_kernel_pair,
)
from .registry import Benchmark, all_benchmarks, benchmark, get_benchmark, select_benchmarks
from .shard_parity import (
    ShardPairCase,
    ShardParityReport,
    render_shard_parity_text,
    verify_sharded_pair,
)
from .runner import BenchRunConfig, run_benchmarks, run_one
from .timer import BenchStats, summarize, time_callable

__all__ = [
    "SCHEMA",
    "SCALES",
    "Benchmark",
    "BenchDelta",
    "BenchRunConfig",
    "BenchStats",
    "CompareResult",
    "DELIVERY_PARITY_CONFIGS",
    "DeliveryPairCase",
    "DeliveryParityReport",
    "KernelPairCase",
    "PARITY_SCHEDULES",
    "PARITY_SEEDS",
    "ParityReport",
    "ScaleSpec",
    "ShardPairCase",
    "ShardParityReport",
    "all_benchmarks",
    "benchmark",
    "build_document",
    "classify",
    "compare_documents",
    "document_stats",
    "get_benchmark",
    "instance_for",
    "load_document",
    "render_compare_text",
    "render_delivery_parity_text",
    "render_parity_text",
    "render_shard_parity_text",
    "render_text",
    "run_benchmarks",
    "run_one",
    "save_document",
    "scale_spec",
    "select_benchmarks",
    "summarize",
    "time_callable",
    "validate_document",
    "verify_delivery_pair",
    "verify_kernel_pair",
    "verify_sharded_pair",
]
