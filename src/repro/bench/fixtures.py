"""Seeded scenario fixtures for the benchmark suite, at several scales.

Every benchmark draws its workload from here so that (a) two benches
measuring different kernels see the *same* instance, (b) a run is fully
deterministic in ``(scale, seed)``, and (c) expensive setup (instance
generation, playing the game to equilibrium for the delivery bench) is
paid once per process, outside every timed region.

Scales
------
``S``
    Smoke scale: small enough for CI (full suite in seconds), large
    enough that each timed region comfortably exceeds clock resolution.
``M``
    The paper's default operating point (Section 4.2: N=30, M=200, K=5).
``M_k64``
    The M topology with a K=64 catalogue and tighter per-server storage:
    the game phase is unchanged while Phase 2 runs tens of placement
    iterations over a 64-row gain table, so the delivery kernels dominate
    the solve — the fixture the ``delivery.greedy*`` pair is judged on.
``L``
    A stress point beyond the paper's largest setting, for optimisation
    PRs whose wins only show at scale.
``XL``
    A metropolitan instance: six CBD-sized districts tiled with a gap
    wider than any coverage diameter (:func:`repro.datasets.synthetic_metro`),
    so the interference graph decomposes naturally — the regime the
    ``shard.*`` benchmarks measure.  Too slow for the full registry in CI;
    the bench-trajectory job runs it filtered to ``shard``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ScenarioConfig, WorkloadConfig
from ..core.instance import IDDEInstance
from ..core.profiles import AllocationProfile
from ..datasets.eua import EuaPool, synthetic_eua, synthetic_metro
from ..errors import BenchError

__all__ = [
    "ScaleSpec",
    "SCALES",
    "scale_spec",
    "instance_for",
    "equilibrium_profile",
    "eua_pool",
    "clear_cache",
]


@dataclass(frozen=True)
class ScaleSpec:
    """Instance dimensions for one benchmark scale.

    ``districts > 1`` samples from a :func:`~repro.datasets.synthetic_metro`
    pool instead of the single-CBD EUA pool, producing a naturally
    decomposable interference graph.  ``storage_range`` overrides the
    workload's per-server storage draw (MB) — the K-heavy delivery fixture
    tightens it so placement competition, not capacity slack, ends the
    greedy loop.
    """

    name: str
    n: int
    m: int
    k: int
    density: float
    districts: int = 1
    storage_range: tuple[float, float] | None = None


SCALES: dict[str, ScaleSpec] = {
    "S": ScaleSpec("S", n=10, m=60, k=3, density=1.5),
    "M": ScaleSpec("M", n=30, m=200, k=5, density=1.0),
    "M_k64": ScaleSpec(
        "M_k64", n=30, m=200, k=64, density=1.0, storage_range=(60.0, 180.0)
    ),
    "L": ScaleSpec("L", n=60, m=450, k=8, density=1.0),
    "XL": ScaleSpec("XL", n=96, m=2400, k=8, density=1.0, districts=6),
}

#: Process-local memo of expensive fixture objects, keyed by (kind, scale, seed).
_CACHE: dict[tuple[str, str, int], object] = {}


def scale_spec(scale: str) -> ScaleSpec:
    """Look up a :class:`ScaleSpec`, raising :class:`BenchError` if unknown."""
    try:
        return SCALES[scale]
    except KeyError:
        raise BenchError(
            f"unknown benchmark scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


def instance_for(scale: str, seed: int) -> IDDEInstance:
    """The shared :class:`IDDEInstance` for ``(scale, seed)`` (memoised)."""
    spec = scale_spec(scale)
    key = ("instance", spec.name, seed)
    if key not in _CACHE:
        pool = synthetic_metro(seed, districts=spec.districts) if spec.districts > 1 else None
        config = None
        if spec.storage_range is not None:
            config = ScenarioConfig(
                workload=WorkloadConfig(storage_range=spec.storage_range)
            )
        _CACHE[key] = IDDEInstance.generate(
            n=spec.n, m=spec.m, k=spec.k, density=spec.density, seed=seed,
            pool=pool, config=config,
        )
    inst = _CACHE[key]
    assert isinstance(inst, IDDEInstance)
    return inst


def equilibrium_profile(scale: str, seed: int) -> AllocationProfile:
    """A converged IDDE-U allocation over the shared instance (memoised).

    Benchmarks of downstream kernels (delivery placement, global rate
    evaluation, incremental churn) condition on a realistic equilibrium
    profile rather than an arbitrary one.
    """
    key = ("profile", scale, seed)
    if key not in _CACHE:
        from ..core.game import IddeUGame

        instance = instance_for(scale, seed)
        _CACHE[key] = IddeUGame(instance).run(rng=seed).profile
    profile = _CACHE[key]
    assert isinstance(profile, AllocationProfile)
    return profile


def eua_pool(seed: int) -> EuaPool:
    """The scale-independent synthetic EUA pool (125/816, memoised)."""
    key = ("pool", "", seed)
    if key not in _CACHE:
        _CACHE[key] = synthetic_eua(seed)
    pool = _CACHE[key]
    assert isinstance(pool, EuaPool)
    return pool


def clear_cache() -> None:
    """Drop all memoised fixtures (tests use this to probe cache behaviour)."""
    _CACHE.clear()
