"""The machine-readable benchmark document: the repo's perf trajectory.

One run of ``idde bench`` emits one schema-versioned JSON document.
Committed documents (``BENCH_<rev>.json``, and the CI gate's
``benchmarks/out/baseline_S.json``) form the repository's performance
trajectory: every optimisation PR records a point, and the comparison
gate (:mod:`repro.bench.compare`) classifies deltas between any two
points.

Schema ``idde-bench/1``::

    {
      "schema": "idde-bench/1",
      "created_unix_s": <float, wall-clock provenance only>,
      "host": {"platform": str, "python": str, "numpy": str, "cpu_count": int},
      "config": {"scale": str, "seed": int, "repeats": int,
                 "warmup": int, "filter": str|null},
      "benchmarks": {<name>: {"repeats", "warmup", "times_s", "median_s",
                              "mean_s", "min_s", "max_s", "iqr_s"}, ...}
    }

The wall-clock timestamp is provenance metadata — nothing downstream
branches on it, keeping comparisons deterministic in the two documents.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

from ..errors import BenchError
from ..io import load_json, save_json
from ..units import seconds_to_ms
from .runner import BenchRunConfig
from .timer import BenchStats

__all__ = [
    "SCHEMA",
    "host_info",
    "build_document",
    "validate_document",
    "document_stats",
    "save_document",
    "load_document",
    "render_text",
]

SCHEMA = "idde-bench/1"

_REQUIRED_TOP = ("schema", "host", "config", "benchmarks")
_REQUIRED_CONFIG = ("scale", "seed", "repeats", "warmup")


def host_info() -> dict:
    """Hardware/runtime provenance for a benchmark document."""
    import os

    import numpy

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def build_document(results: dict[str, BenchStats], config: BenchRunConfig) -> dict:
    """Assemble the schema-versioned document for one run."""
    return {
        "schema": SCHEMA,
        "created_unix_s": time.time(),
        "host": host_info(),
        "config": {
            "scale": config.scale,
            "seed": config.seed,
            "repeats": config.repeats,
            "warmup": config.warmup,
            "filter": config.filter,
        },
        "benchmarks": {name: stats.to_dict() for name, stats in sorted(results.items())},
    }


def validate_document(doc: dict) -> dict:
    """Check a document against schema ``idde-bench/1``; return it.

    Raises :class:`BenchError` with a field-level message on mismatch so
    CI failures say *what* is wrong with a trajectory point.
    """
    if not isinstance(doc, dict):
        raise BenchError(f"benchmark document must be an object, got {type(doc).__name__}")
    missing = [key for key in _REQUIRED_TOP if key not in doc]
    if missing:
        raise BenchError(f"benchmark document lacks required keys {missing}")
    if doc["schema"] != SCHEMA:
        raise BenchError(
            f"unsupported benchmark schema {doc['schema']!r}; this build reads {SCHEMA!r}"
        )
    config = doc["config"]
    if not isinstance(config, dict):
        raise BenchError("'config' must be an object")
    missing = [key for key in _REQUIRED_CONFIG if key not in config]
    if missing:
        raise BenchError(f"benchmark document config lacks keys {missing}")
    benches = doc["benchmarks"]
    if not isinstance(benches, dict):
        raise BenchError("'benchmarks' must be an object keyed by benchmark name")
    for name, entry in benches.items():
        BenchStats.from_dict(entry if isinstance(entry, dict) else {})
        if not isinstance(name, str) or not name:
            raise BenchError(f"bad benchmark name {name!r}")
    return doc


def document_stats(doc: dict) -> dict[str, BenchStats]:
    """Reconstruct per-benchmark :class:`BenchStats` from a valid document."""
    validate_document(doc)
    return {name: BenchStats.from_dict(entry) for name, entry in doc["benchmarks"].items()}


def save_document(doc: dict, path: str | Path) -> Path:
    """Validate and write a document (via :func:`repro.io.save_json`)."""
    validate_document(doc)
    return save_json(doc, path)


def load_document(path: str | Path) -> dict:
    """Read and validate a document (via :func:`repro.io.load_json`)."""
    return validate_document(load_json(path))


def render_text(doc: dict) -> str:
    """Human-readable table of one document (times in milliseconds)."""
    config = doc["config"]
    host = doc["host"]
    lines = [
        f"IDDE-Bench  scale={config['scale']}  seed={config['seed']}  "
        f"repeats={config['repeats']}  warmup={config['warmup']}",
        f"host: {host['platform']}  python {host['python']}  "
        f"numpy {host['numpy']}  cpus {host['cpu_count']}",
        "",
        f"{'benchmark':<28} | {'median ms':>10} | {'iqr ms':>9} | {'min ms':>9} | {'max ms':>9}",
        f"{'-' * 28}-+-{'-' * 10}-+-{'-' * 9}-+-{'-' * 9}-+-{'-' * 9}",
    ]
    for name, entry in sorted(doc["benchmarks"].items()):
        stats = BenchStats.from_dict(entry)
        median_ms = seconds_to_ms(stats.median_s)
        iqr_ms = seconds_to_ms(stats.iqr_s)
        min_ms = seconds_to_ms(stats.min_s)
        max_ms = seconds_to_ms(stats.max_s)
        lines.append(
            f"{name:<28} | {median_ms:>10.3f} | {iqr_ms:>9.3f} | "
            f"{min_ms:>9.3f} | {max_ms:>9.3f}"
        )
    return "\n".join(lines)
