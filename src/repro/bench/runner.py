"""The benchmark runner: setup/measure orchestration with serial pinning.

Every timed region executes inside :func:`repro.parallel.force_serial`,
so a benchmarked kernel that (today or after a refactor) reaches a
``parallel_map`` can never measure process-pool startup or depend on
``default_workers()`` of the host — benches measure the kernel, serially,
or they measure nothing.  Setup (``make(scale, seed)``) runs *outside*
the pin: fixtures may parallelise if they ever want to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..errors import BenchError
from ..parallel import force_serial
from .registry import Benchmark, select_benchmarks
from .timer import BenchStats, time_callable

__all__ = ["BenchRunConfig", "run_benchmarks", "run_one"]


@dataclass(frozen=True)
class BenchRunConfig:
    """How one benchmark session is driven."""

    scale: str = "S"
    seed: int = 0
    repeats: int = 5
    warmup: int = 1
    filter: str | None = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise BenchError(f"repeats must be >= 1, got {self.repeats}")
        if self.warmup < 0:
            raise BenchError(f"warmup must be >= 0, got {self.warmup}")


def run_one(
    bench: Benchmark,
    config: BenchRunConfig,
    *,
    clock: Callable[[], float] = time.perf_counter,
) -> BenchStats:
    """Set up and measure a single benchmark under ``config``."""
    fn = bench.make(config.scale, config.seed)
    with force_serial():
        return time_callable(fn, repeats=config.repeats, warmup=config.warmup, clock=clock)


def run_benchmarks(
    config: BenchRunConfig,
    *,
    clock: Callable[[], float] = time.perf_counter,
    progress: Callable[[str, BenchStats], None] | None = None,
) -> dict[str, BenchStats]:
    """Run the (filtered) registry in name order; results keyed by name.

    ``progress`` is invoked after each benchmark completes (the CLI's
    text mode streams the table row by row).
    """
    results: dict[str, BenchStats] = {}
    for bench in select_benchmarks(config.filter):
        stats = run_one(bench, config, clock=clock)
        results[bench.name] = stats
        if progress is not None:
            progress(bench.name, stats)
    return results
