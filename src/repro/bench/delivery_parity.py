"""Delivery kernel-pair parity harness: ``reference`` vs ``batched`` greedy.

The batched Phase 2 kernel (:mod:`repro.core.delivery`) claims bit-for-bit
equivalence with the literal Algorithm 1 sweep — not "numerically close":
both evaluate every candidate's gain with the identical BLAS matvec, so
every score is the identical float, every argmax breaks ties identically,
and the greedy loop therefore places the identical replica sequence.

:func:`verify_delivery_pair` replays a grid of ``(seed, config)`` cases
over the shared bench fixtures — both selection rules, plain and with
stopping thresholds that actually reject candidates, with and without a
recording tracer — and compares, per case:

* the full ordered placement sequence ``(server, item)`` and the bitwise
  total gain;
* the final :class:`~repro.core.profiles.DeliveryProfile`;
* the traced placement events (server/item/gain/score per step) and the
  terminal sweep's threshold-reject count — the tracer observables are
  part of the contract, not a debugging nicety.

The CI smoke gate runs it via ``idde bench --verify-delivery-parity``;
``tests/core/test_delivery_kernels.py`` pins the same contract in the
test suite.  A parity break is a correctness bug in whichever kernel
changed last — never relax the comparison to tolerances to make it pass.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..config import DeliveryConfig
from ..core.delivery import DeliveryResult, greedy_delivery
from ..obs.tracer import RecordingTracer
from .fixtures import equilibrium_profile, instance_for
from .parity import PARITY_SEEDS

__all__ = [
    "DELIVERY_PARITY_CONFIGS",
    "DeliveryPairCase",
    "DeliveryParityReport",
    "verify_delivery_pair",
    "render_delivery_parity_text",
]

#: Default config grid: both selection rules, each plain and with a
#: stopping threshold high enough to reject real candidates — the
#: thresholded cases are what make the reject-count comparison meaningful.
DELIVERY_PARITY_CONFIGS: tuple[DeliveryConfig, ...] = (
    DeliveryConfig(ratio_rule=True),
    DeliveryConfig(ratio_rule=True, min_gain_s_per_mb=0.005),
    DeliveryConfig(ratio_rule=False),
    DeliveryConfig(ratio_rule=False, min_gain_s=1.0),
)


@dataclass(frozen=True)
class DeliveryPairCase:
    """Parity verdict for one ``(scale, seed, config, traced)`` replay."""

    scale: str
    seed: int
    ratio_rule: bool
    stop_threshold: float
    traced: bool
    placements: int
    same_placements: bool
    same_gains: bool
    same_profile: bool
    same_trace: bool

    @property
    def ok(self) -> bool:
        return (
            self.same_placements
            and self.same_gains
            and self.same_profile
            and self.same_trace
        )

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        rule = "ratio" if self.ratio_rule else "abs"
        mode = "traced" if self.traced else "plain"
        detail = f"placements={self.placements}"
        if not self.ok:
            broken = [
                name
                for name, good in (
                    ("placements", self.same_placements),
                    ("gains", self.same_gains),
                    ("profile", self.same_profile),
                    ("trace", self.same_trace),
                )
                if not good
            ]
            detail += " broken=" + ",".join(broken)
        return (
            f"{self.scale} seed={self.seed} {rule:<5s} "
            f"thresh={self.stop_threshold:g} {mode:<6s} {status:<8s} {detail}"
        )


@dataclass(frozen=True)
class DeliveryParityReport:
    """Aggregate verdict over the verification grid."""

    cases: tuple[DeliveryPairCase, ...]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> tuple[DeliveryPairCase, ...]:
        return tuple(case for case in self.cases if not case.ok)


def _trace_observables(tracer: RecordingTracer) -> tuple[list, list, int]:
    """The delivery events and counters a parity case must reproduce."""
    places = [
        (e.fields["server"], e.fields["item"], e.fields["gain_s"], e.fields["score"])
        for e in tracer.events
        if e.etype == "delivery.place"
    ]
    stops = [
        (e.fields["rejected"], e.fields["iterations"])
        for e in tracer.events
        if e.etype == "delivery.stop"
    ]
    rejects = int(tracer.counters.get("delivery.threshold_rejects", 0))
    return places, stops, rejects


def _compare(
    scale: str,
    seed: int,
    cfg: DeliveryConfig,
    traced: bool,
    ref: DeliveryResult,
    bat: DeliveryResult,
    tr_ref: RecordingTracer | None,
    tr_bat: RecordingTracer | None,
) -> DeliveryPairCase:
    same_trace = True
    if tr_ref is not None and tr_bat is not None:
        same_trace = _trace_observables(tr_ref) == _trace_observables(tr_bat)
    return DeliveryPairCase(
        scale=scale,
        seed=seed,
        ratio_rule=cfg.ratio_rule,
        stop_threshold=cfg.min_gain_s_per_mb if cfg.ratio_rule else cfg.min_gain_s,
        traced=traced,
        placements=len(ref.placements),
        same_placements=(
            ref.placements == bat.placements and ref.iterations == bat.iterations
        ),
        same_gains=ref.total_gain_s == bat.total_gain_s,
        same_profile=bool(np.array_equal(ref.profile.placed, bat.profile.placed)),
        same_trace=same_trace,
    )


def verify_delivery_pair(
    scale: str = "S",
    seeds: tuple[int, ...] = PARITY_SEEDS,
    configs: tuple[DeliveryConfig, ...] = DELIVERY_PARITY_CONFIGS,
) -> DeliveryParityReport:
    """Replay every ``(seed, config, traced)`` case under both kernels.

    Each case conditions both kernels on the identical shared fixture
    instance and its converged IDDE-U equilibrium, then compares placement
    sequences, bitwise gains, final profiles and — in the traced replays —
    the per-placement events and threshold-reject counts.
    """
    cases = []
    for seed in seeds:
        instance = instance_for(scale, seed)
        alloc = equilibrium_profile(scale, seed)
        for cfg in configs:
            for traced in (False, True):
                tr_ref = RecordingTracer() if traced else None
                tr_bat = RecordingTracer() if traced else None
                ref = greedy_delivery(
                    instance, alloc, replace(cfg, kernel="reference"), tracer=tr_ref
                )
                bat = greedy_delivery(
                    instance, alloc, replace(cfg, kernel="batched"), tracer=tr_bat
                )
                cases.append(
                    _compare(scale, seed, cfg, traced, ref, bat, tr_ref, tr_bat)
                )
    return DeliveryParityReport(cases=tuple(cases))


def render_delivery_parity_text(report: DeliveryParityReport) -> str:
    """Human-readable verdict table for the CLI."""
    lines = ["delivery kernel-pair parity: reference vs batched"]
    lines.extend("  " + case.describe() for case in report.cases)
    verdict = "PARITY OK" if report.ok else f"PARITY BROKEN ({len(report.failures)} cases)"
    lines.append(f"{verdict}: {len(report.cases)} cases")
    return "\n".join(lines)
