"""Sharded-vs-global parity harness, the decomposition counterpart of
:mod:`repro.bench.parity`.

The kernel-pair harness proves the batched kernel is the same algorithm;
this one proves the sharded solver reaches the same *kind* of answer as
the global solver and — where the theory says so — the same answer:

* **certificate parity** (every case): both runs must converge and
  certify an ε-Nash on the whole instance at their ``effective_epsilon``.
  The sharded certificate comes from the reconciliation run over the full
  player set, so this is a like-for-like whole-instance claim.
* **profile parity** (deterministic schedules on a clean decomposition):
  with no boundary users, sorted index maps preserve covering-set order
  and every per-shard float is the identical padded reduction, so
  ``round-robin`` and ``best-gain-winner`` must stitch to the
  *bit-identical* profile the global run finds.  ``random-winner`` is
  exempt: shards consume independent spawned streams, so it reaches a
  (certified) different equilibrium by design.

The CI smoke gate runs it via ``idde bench --verify-shard-parity``;
``tests/sharding/test_parity.py`` pins the same contract in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..config import GameConfig
from ..core.game import GameResult, IddeUGame
from ..sharding import ShardConfig, build_plan, solve_sharded_game
from .fixtures import instance_for
from .parity import PARITY_SCHEDULES, PARITY_SEEDS

__all__ = [
    "ShardPairCase",
    "ShardParityReport",
    "verify_sharded_pair",
    "render_shard_parity_text",
]


@dataclass(frozen=True)
class ShardPairCase:
    """Verdict for one ``(scale, seed, schedule)`` sharded-vs-global replay."""

    scale: str
    seed: int
    schedule: str
    n_shards: int
    boundary_users: int
    global_nash: bool
    sharded_nash: bool
    same_profile: bool
    profile_must_match: bool

    @property
    def ok(self) -> bool:
        certified = self.global_nash and self.sharded_nash
        return certified and (self.same_profile or not self.profile_must_match)

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        detail = (
            f"shards={self.n_shards} boundary={self.boundary_users} "
            f"nash={self.sharded_nash}/{self.global_nash}"
        )
        if self.profile_must_match:
            detail += f" bit-identical={self.same_profile}"
        return (
            f"{self.scale} seed={self.seed} {self.schedule:<17s} {status:<8s} {detail}"
        )


@dataclass(frozen=True)
class ShardParityReport:
    """Aggregate verdict over the verification grid."""

    cases: tuple[ShardPairCase, ...]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> tuple[ShardPairCase, ...]:
        return tuple(case for case in self.cases if not case.ok)


def _same_profile(a: GameResult, b: GameResult) -> bool:
    return bool(
        np.array_equal(a.profile.server, b.profile.server)
        and np.array_equal(a.profile.channel, b.profile.channel)
    )


def verify_sharded_pair(
    scale: str = "S",
    seeds: tuple[int, ...] = PARITY_SEEDS,
    schedules: tuple[str, ...] = PARITY_SCHEDULES,
    base_cfg: GameConfig | None = None,
    shard_cfg: ShardConfig | None = None,
) -> ShardParityReport:
    """Replay every ``(seed, schedule)`` case sharded and globally.

    Uses the batched kernel on both sides (the kernel pair is covered by
    :func:`~repro.bench.parity.verify_kernel_pair`).  Bit-identical
    profiles are demanded only where guaranteed: deterministic schedules
    on a plan with no boundary users.
    """
    base = replace(base_cfg or GameConfig(), kernel="batched")
    shard_cfg = shard_cfg or ShardConfig(n_workers=0)
    cases = []
    for seed in seeds:
        instance = instance_for(scale, seed)
        plan = build_plan(instance, shard_cfg)
        for schedule in schedules:
            cfg = replace(base, schedule=schedule)
            glob = IddeUGame(instance, cfg).run(rng=seed)
            shard, stats = solve_sharded_game(
                instance, cfg, shard_cfg, rng=seed, plan=plan
            )
            must_match = schedule != "random-winner" and (
                plan.boundary_users.size == 0
            )
            cases.append(
                ShardPairCase(
                    scale=scale,
                    seed=seed,
                    schedule=schedule,
                    n_shards=stats["n_shards"],
                    boundary_users=stats["boundary_users"],
                    global_nash=glob.is_nash,
                    sharded_nash=shard.is_nash,
                    same_profile=_same_profile(glob, shard),
                    profile_must_match=must_match,
                )
            )
    return ShardParityReport(cases=tuple(cases))


def render_shard_parity_text(report: ShardParityReport) -> str:
    """Human-readable verdict table for the CLI."""
    lines = ["shard parity: sharded vs global (batched kernel)"]
    lines.extend("  " + case.describe() for case in report.cases)
    verdict = (
        "SHARD PARITY OK"
        if report.ok
        else f"SHARD PARITY BROKEN ({len(report.failures)} cases)"
    )
    lines.append(f"{verdict}: {len(report.cases)} cases")
    return "\n".join(lines)
