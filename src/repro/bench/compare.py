"""Noise-aware comparison of two benchmark documents: the regression gate.

Classification per benchmark, given a ratio ``threshold`` (the CI gate
uses a generous 2×, catching order-of-magnitude blowups, not scheduler
jitter):

* **regression** — the new median exceeds ``threshold ×`` the old median
  *and* the new minimum exceeds ``threshold ×`` the old minimum.  The
  double condition is the noise awareness: the median can be dragged by
  one-sided scheduling noise, but the minimum is the low-noise estimate
  of true kernel cost, so both statistics must agree before the gate
  trips.
* **improvement** — the symmetric condition in the other direction.
* **neutral** — everything else, including benchmarks whose old *and*
  new medians sit below ``noise_floor_s`` (at that magnitude the clock
  cannot distinguish real change from resolution error — the zero-median
  degenerate case lands here).
* **added** / **removed** — present on only one side; never gates.

All denominators are clamped to ``noise_floor_s`` so a zero median (a
kernel faster than the clock tick) cannot manufacture infinite ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import seconds_to_ms
from .document import document_stats
from .timer import BenchStats

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_NOISE_FLOOR_S",
    "BenchDelta",
    "CompareResult",
    "classify",
    "compare_documents",
    "render_compare_text",
]

DEFAULT_THRESHOLD = 2.0
DEFAULT_NOISE_FLOOR_S = 1e-4

_GATING = ("regression",)


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark's classified old→new delta."""

    name: str
    status: str  # regression | improvement | neutral | added | removed
    ratio: float | None
    old_median_s: float | None
    new_median_s: float | None


@dataclass(frozen=True)
class CompareResult:
    """The full classified comparison between two documents."""

    deltas: tuple[BenchDelta, ...]
    threshold: float
    noise_floor_s: float

    @property
    def regressions(self) -> tuple[BenchDelta, ...]:
        return tuple(d for d in self.deltas if d.status in _GATING)

    @property
    def exit_code(self) -> int:
        """0 when the gate passes, 1 when any benchmark regressed."""
        return 1 if self.regressions else 0


def classify(
    old: BenchStats,
    new: BenchStats,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
) -> tuple[str, float]:
    """Classify one benchmark's delta; returns ``(status, median_ratio)``."""
    floor = noise_floor_s
    ratio = new.median_s / max(old.median_s, floor)
    if old.median_s < floor and new.median_s < floor:
        return "neutral", ratio
    slower_median = new.median_s > threshold * max(old.median_s, floor)
    slower_min = new.min_s > threshold * max(old.min_s, floor)
    if slower_median and slower_min:
        return "regression", ratio
    faster_median = old.median_s > threshold * max(new.median_s, floor)
    faster_min = old.min_s > threshold * max(new.min_s, floor)
    if faster_median and faster_min:
        return "improvement", ratio
    return "neutral", ratio


def compare_documents(
    old_doc: dict,
    new_doc: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
) -> CompareResult:
    """Classify every benchmark across two (validated) documents."""
    old_stats = document_stats(old_doc)
    new_stats = document_stats(new_doc)
    deltas: list[BenchDelta] = []
    for name in sorted(set(old_stats) | set(new_stats)):
        old = old_stats.get(name)
        new = new_stats.get(name)
        if old is None:
            assert new is not None
            deltas.append(BenchDelta(name, "added", None, None, new.median_s))
        elif new is None:
            deltas.append(BenchDelta(name, "removed", None, old.median_s, None))
        else:
            status, ratio = classify(
                old, new, threshold=threshold, noise_floor_s=noise_floor_s
            )
            deltas.append(BenchDelta(name, status, ratio, old.median_s, new.median_s))
    return CompareResult(
        deltas=tuple(deltas), threshold=threshold, noise_floor_s=noise_floor_s
    )


def _fmt_ms(value_s: float | None) -> str:
    return f"{seconds_to_ms(value_s):>10.3f}" if value_s is not None else f"{'-':>10}"


def render_compare_text(result: CompareResult) -> str:
    """Human-readable comparison table plus the gate verdict."""
    lines = [
        f"IDDE-Bench compare  threshold={result.threshold:g}x  "
        f"noise floor={result.noise_floor_s:g}s",
        "",
        f"{'benchmark':<28} | {'old ms':>10} | {'new ms':>10} | {'ratio':>7} | status",
        f"{'-' * 28}-+-{'-' * 10}-+-{'-' * 10}-+-{'-' * 7}-+-{'-' * 11}",
    ]
    for d in result.deltas:
        ratio = f"{d.ratio:>7.2f}" if d.ratio is not None else f"{'-':>7}"
        lines.append(
            f"{d.name:<28} | {_fmt_ms(d.old_median_s)} | "
            f"{_fmt_ms(d.new_median_s)} | {ratio} | {d.status}"
        )
    n_reg = len(result.regressions)
    lines.append("")
    if n_reg:
        names = ", ".join(d.name for d in result.regressions)
        lines.append(f"FAIL: {n_reg} regression(s) beyond {result.threshold:g}x: {names}")
    else:
        lines.append(f"OK: no benchmark regressed beyond {result.threshold:g}x")
    return "\n".join(lines)
