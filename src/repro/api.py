"""The public solving façade: :func:`solve` and the unified :class:`Solution`.

Every front-end — the ``idde`` CLI, the experiment harness, notebook users —
reaches the solvers through one call::

    from repro.api import solve
    sol = solve(instance, "idde-g", game_config=GameConfig(kernel="batched"),
                tracer=RecordingTracer(), rng=0)
    sol.to_dict()   # the schema-versioned ``idde-solution/1`` document

:class:`Solution` unifies what used to live in three places — the
:class:`~repro.core.game.GameResult` (rounds, moves, the ε-Nash
certificate), the :class:`~repro.core.delivery.DeliveryResult` (placements,
latency gain), and the joint :class:`~repro.core.objectives.Evaluation` —
without re-running any phase: the solver stashes the full result objects in
``extras`` and this module lifts them out.

Solver names resolve through the :mod:`repro.baselines` registry, so
unknown names fail with a did-you-mean
:class:`~repro.errors.SolverLookupError`, and tracing threads through every
layer via the shared :class:`~repro.obs.tracer.Tracer` (no-op by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .baselines import IddeG, resolve_solver_name, solver_by_name
from .config import DeliveryConfig, GameConfig
from .core.delivery import DeliveryResult
from .core.game import GameResult
from .core.instance import IDDEInstance
from .core.objectives import Evaluation
from .core.profiles import AllocationProfile, DeliveryProfile
from .core.repair import repair_allocation
from .errors import ConfigurationError
from .obs.tracer import Tracer, ensure_tracer
from .rng import ensure_rng
from .sharding import ShardConfig, ShardedIddeG

__all__ = ["SOLUTION_SCHEMA", "Solution", "solve"]

SOLUTION_SCHEMA = "idde-solution/1"


def _json_scalarish(value: Any) -> bool:
    """True for values that serialise to JSON without coercion."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_json_scalarish(v) for v in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and _json_scalarish(v) for k, v in value.items()
        )
    return False


@dataclass(frozen=True)
class Solution:
    """One solver run on one instance, with every layer's result attached.

    ``game`` and ``delivery_result`` are populated for the two-phase
    IDDE-G solver and ``None`` for baselines that have no such phases;
    ``evaluation`` and the headline metrics are always present.
    """

    solver: str
    allocation: AllocationProfile
    delivery: DeliveryProfile
    evaluation: Evaluation
    wall_time_s: float
    config: dict[str, Any] = field(default_factory=dict)
    game: GameResult | None = None
    delivery_result: DeliveryResult | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def r_avg(self) -> float:
        """Objective #1: average data rate over all users (MB/s)."""
        return self.evaluation.r_avg

    @property
    def l_avg_ms(self) -> float:
        """Objective #2: request-weighted average retrieval latency (ms)."""
        return self.evaluation.l_avg_ms

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready ``idde-solution/1`` document.

        Surfaces every field reachable from the underlying results —
        including the ε-Nash certificate (``effective_epsilon``), the
        move-capped player list, and the kernel/schedule that produced the
        run — not just the headline metrics.
        """
        doc: dict[str, Any] = {
            "schema": SOLUTION_SCHEMA,
            "solver": self.solver,
            "r_avg": self.evaluation.r_avg,
            "l_avg_ms": self.evaluation.l_avg_ms,
            "wall_time_s": self.wall_time_s,
            "allocated_users": int(self.evaluation.allocated_users),
            "replicas": int(self.evaluation.replicas),
            "config": dict(self.config),
        }
        if self.game is not None:
            doc["game"] = {
                "rounds": self.game.rounds,
                "moves": self.game.moves,
                "converged": self.game.converged,
                "is_nash": self.game.is_nash,
                "effective_epsilon": self.game.effective_epsilon,
                "capped_users": list(self.game.capped_users),
                "move_count": len(self.game.move_log),
                "wall_time_s": self.game.wall_time_s,
            }
        else:
            doc["game"] = None
        if self.delivery_result is not None:
            doc["delivery"] = {
                "iterations": self.delivery_result.iterations,
                "placements": [list(p) for p in self.delivery_result.placements],
                "total_gain_s": self.delivery_result.total_gain_s,
                "wall_time_s": self.delivery_result.wall_time_s,
            }
        else:
            doc["delivery"] = None
        doc["extras"] = {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in self.extras.items()
            if _json_scalarish(v)
        }
        return doc

    def summary(self) -> str:
        """One human-readable line per run (the CLI table row source)."""
        parts = [
            f"{self.solver}: R_avg={self.r_avg:.2f} MB/s",
            f"L_avg={self.l_avg_ms:.2f} ms",
            f"t={self.wall_time_s:.3f}s",
            f"allocated={self.evaluation.allocated_users}",
            f"replicas={self.evaluation.replicas}",
        ]
        if self.game is not None:
            nash = "nash" if self.game.is_nash else "no-cert"
            parts.append(
                f"game={self.game.rounds}r/{self.game.moves}m ({nash}, "
                f"eps={self.game.effective_epsilon:.1e})"
            )
        return "  ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Solution({self.summary()})"


def solve(
    instance: IDDEInstance,
    solver: str = "idde-g",
    *,
    game_config: GameConfig | None = None,
    delivery_config: DeliveryConfig | None = None,
    sharding: ShardConfig | None = None,
    warm_start: "Solution | AllocationProfile | None" = None,
    active: np.ndarray | None = None,
    tracer: Tracer | None = None,
    rng: Any = None,
    ip_time_budget_s: float | None = None,
    validate: bool = True,
    solver_options: dict[str, Any] | None = None,
) -> Solution:
    """Solve one instance with a registry-named solver.

    Parameters
    ----------
    instance:
        The problem to solve.
    solver:
        Registry name (``"idde-g"``, ``"idde-ip"``, ``"saa"``, ``"cdp"``,
        ``"dup-g"``, ``"random"``, ``"nearest"``; case-insensitive).
        Unknown names raise :class:`~repro.errors.SolverLookupError` with a
        did-you-mean suggestion.
    game_config, delivery_config:
        Phase configs for the two-phase IDDE-G solver (e.g.
        ``GameConfig(kernel="batched")``).  Passing either for any other
        solver raises :class:`~repro.errors.ConfigurationError` — baselines
        have no such phases, and silently ignoring the configs would
        mislabel the run.
    sharding:
        Optional :class:`~repro.sharding.ShardConfig`: phase 1 then runs
        through the interference-domain decomposition solver
        (:class:`~repro.sharding.ShardedIddeG`) — shards solved
        concurrently, boundary users reconciled globally, certificate on
        the whole instance.  Only meaningful for ``"idde-g"``; any other
        solver raises :class:`~repro.errors.ConfigurationError`.
    warm_start:
        A prior :class:`Solution` (or bare
        :class:`~repro.core.profiles.AllocationProfile`) to re-enter the
        IDDE-U game from instead of cold-solving — the incremental
        re-solve path of the streaming engine.  The profile is first
        *repaired* against this instance
        (:func:`~repro.core.repair.repair_allocation`): users whose server
        no longer covers them, whose channel no longer exists, or who fell
        out of ``active`` are detached; the game then plays on from there
        and re-certifies ε-Nash on the full instance (the certificate is
        as strong as a cold solve's).  Composes with ``sharding``
        (shard-local warm starts, boundary carry-over) and any
        kernel/schedule.  Only meaningful for ``"idde-g"``.
    active:
        Optional boolean ``(M,)`` participant mask (churn): inactive users
        never allocate and never move in the game.  Only meaningful for
        ``"idde-g"``.
    tracer:
        Optional IDDE-Trace tracer threaded through every layer the run
        touches; defaults to the shared no-op.
    rng:
        Seed or generator for the solver's randomness (``repro.rng``
        discipline).
    ip_time_budget_s:
        Time cap for the ``"idde-ip"`` solver; ignored by every other
        solver (the experiment harness passes one bundle to all five).
    validate:
        Check the returned strategy against the instance constraints.
    solver_options:
        Extra keyword arguments for the solver's constructor.
    """
    tracer = ensure_tracer(tracer)
    name = resolve_solver_name(solver)
    opts = dict(solver_options or {})
    warm_detached: int | None = None
    if name == "idde-g":
        initial: AllocationProfile | None = None
        if warm_start is not None:
            prior = (
                warm_start.allocation
                if isinstance(warm_start, Solution)
                else warm_start
            )
            with tracer.span("api.warm_start") as span:
                initial, warm_detached = repair_allocation(instance, prior, active)
                span.set(
                    detached=warm_detached,
                    carried=int(initial.allocated.sum()),
                )
        if sharding is not None:
            s = ShardedIddeG(
                game_config,
                delivery_config,
                sharding=sharding,
                tracer=tracer,
                initial=initial,
                active=active,
                **opts,
            )
        else:
            s = IddeG(
                game_config,
                delivery_config,
                tracer=tracer,
                initial=initial,
                active=active,
                **opts,
            )
    else:
        if game_config is not None or delivery_config is not None:
            raise ConfigurationError(
                f"game_config/delivery_config apply only to 'idde-g'; "
                f"solver {name!r} has no game or greedy-delivery phase"
            )
        if sharding is not None:
            raise ConfigurationError(
                f"sharding applies only to 'idde-g'; solver {name!r} "
                f"has no game phase to decompose"
            )
        if warm_start is not None or active is not None:
            raise ConfigurationError(
                f"warm_start/active apply only to 'idde-g'; solver {name!r} "
                f"has no game to re-enter"
            )
        if name == "idde-ip" and ip_time_budget_s is not None:
            opts.setdefault("time_budget_s", ip_time_budget_s)
        s = solver_by_name(name, **opts)

    config: dict[str, Any] = {"solver": name}
    if name == "idde-g":
        gc, dc = s.game_cfg, s.delivery_cfg
        config.update(
            schedule=gc.schedule,
            kernel=gc.kernel,
            epsilon=gc.epsilon,
            max_rounds=gc.max_rounds,
            ratio_rule=dc.ratio_rule,
            delivery_kernel=dc.kernel,
        )
        if sharding is not None:
            config["shards"] = sharding.n_shards if sharding.n_shards else "auto"
        config["warm_start"] = warm_start is not None
        if active is not None:
            config["active_users"] = int(np.asarray(active, dtype=bool).sum())
    elif name == "idde-ip":
        config["time_budget_s"] = float(opts.get("time_budget_s", 10.0))

    rng = ensure_rng(rng)
    with tracer.span("api.solve", solver=s.name) as span:
        strategy = s.solve(instance, rng, validate=validate, tracer=tracer)
        span.set(r_avg=strategy.r_avg, l_avg_ms=strategy.l_avg_ms)

    extras = dict(strategy.extras)
    if warm_detached is not None:
        extras["warm_detached"] = warm_detached
    evaluation: Evaluation = strategy.evaluation
    game: GameResult | None = extras.pop("game_result", None)
    delivery_result: DeliveryResult | None = extras.pop("delivery_result", None)
    return Solution(
        solver=strategy.solver,
        allocation=strategy.allocation,
        delivery=strategy.delivery,
        evaluation=evaluation,
        wall_time_s=strategy.wall_time_s,
        config=config,
        game=game,
        delivery_result=delivery_result,
        extras=extras,
    )
