"""The public solving façade: :func:`solve` and the unified :class:`Solution`.

Every front-end — the ``idde`` CLI, the experiment harness, the streaming
replay loop, the IDDE-Serve daemon, notebook users — reaches the solvers
through one call, and one *object* describes the run everywhere: the
schema-versioned :class:`~repro.request.SolveRequest` (``idde-request/1``,
also the daemon's wire format)::

    from repro.api import solve
    from repro.request import SolveRequest

    sol = solve(instance, SolveRequest(solver="idde-g",
                game_config=GameConfig(kernel="batched"), rng=0))
    sol.to_dict()   # the schema-versioned ``idde-solution/2`` document

The classic keyword form still works and is bit-identical — it is a thin
shim that builds the same :class:`SolveRequest`::

    sol = solve(instance, "idde-g", game_config=GameConfig(kernel="batched"),
                tracer=RecordingTracer(), rng=0)

:class:`Solution` unifies what used to live in three places — the
:class:`~repro.core.game.GameResult` (rounds, moves, the ε-Nash
certificate), the :class:`~repro.core.delivery.DeliveryResult` (placements,
latency gain), and the joint :class:`~repro.core.objectives.Evaluation` —
without re-running any phase: the solver stashes the full result objects in
``extras`` and this module lifts them out.  Version 2 of the solution
document additionally embeds the request that produced it and the typed
``extras`` accessors (:attr:`Solution.sharding_stats`,
:attr:`Solution.delivery_kernel`, :attr:`Solution.warm_detached`) replace
dict-key spelunking; :func:`load_solution_document` reads both versions
(see docs/SERVING.md for the migration note).

Solver names resolve through the :mod:`repro.baselines` registry, so
unknown names fail with a did-you-mean
:class:`~repro.errors.SolverLookupError`, and tracing threads through every
layer via the shared :class:`~repro.obs.tracer.Tracer` (no-op by default —
observability is execution context, not part of the request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from .baselines import IddeG, resolve_solver_name, solver_by_name
from .config import DeliveryConfig, GameConfig
from .core.delivery import DeliveryResult
from .core.game import GameResult
from .core.instance import IDDEInstance
from .core.objectives import Evaluation
from .core.profiles import AllocationProfile, DeliveryProfile
from .core.repair import repair_allocation
from .errors import ConfigurationError
from .obs.tracer import Tracer, ensure_tracer
from .request import SolveRequest, json_scalarish
from .rng import ensure_rng
from .sharding import ShardConfig, ShardedIddeG

__all__ = [
    "SOLUTION_SCHEMA",
    "SOLUTION_SCHEMA_V1",
    "Solution",
    "execute",
    "load_solution_document",
    "solve",
]

SOLUTION_SCHEMA = "idde-solution/2"
SOLUTION_SCHEMA_V1 = "idde-solution/1"

#: Schema tags :func:`load_solution_document` accepts, oldest first.
SOLUTION_SCHEMAS = (SOLUTION_SCHEMA_V1, SOLUTION_SCHEMA)


@dataclass(frozen=True)
class Solution:
    """One solver run on one instance, with every layer's result attached.

    ``game`` and ``delivery_result`` are populated for the two-phase
    IDDE-G solver and ``None`` for baselines that have no such phases;
    ``evaluation`` and the headline metrics are always present.
    ``request`` is the :class:`~repro.request.SolveRequest` the façade
    executed (``None`` only for solutions built by hand).
    """

    solver: str
    allocation: AllocationProfile
    delivery: DeliveryProfile
    evaluation: Evaluation
    wall_time_s: float
    config: dict[str, Any] = field(default_factory=dict)
    game: GameResult | None = None
    delivery_result: DeliveryResult | None = None
    extras: dict[str, Any] = field(default_factory=dict)
    request: SolveRequest | None = None

    @property
    def r_avg(self) -> float:
        """Objective #1: average data rate over all users (MB/s)."""
        return self.evaluation.r_avg

    @property
    def l_avg_ms(self) -> float:
        """Objective #2: request-weighted average retrieval latency (ms)."""
        return self.evaluation.l_avg_ms

    # ------------------------------------------------------------------
    # typed extras accessors (the idde-solution/2 surface)
    # ------------------------------------------------------------------
    @property
    def sharding_stats(self) -> dict[str, Any] | None:
        """Decomposition statistics from a sharded solve, or ``None``.

        The dict the :class:`~repro.sharding.ShardedIddeG` solver stashes
        (shard count/sizes, boundary users, reconciliation rounds).
        """
        stats = self.extras.get("sharding")
        return dict(stats) if isinstance(stats, dict) else None

    @property
    def delivery_kernel(self) -> str | None:
        """Which Phase 2 placement kernel produced the delivery profile."""
        kernel = self.extras.get("delivery_kernel", self.config.get("delivery_kernel"))
        return str(kernel) if kernel is not None else None

    @property
    def warm_detached(self) -> int | None:
        """Users the warm-start repair detached, or ``None`` on cold solves."""
        detached = self.extras.get("warm_detached")
        return int(detached) if detached is not None else None

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready ``idde-solution/2`` document.

        Surfaces every field reachable from the underlying results —
        including the ε-Nash certificate (``effective_epsilon``), the
        move-capped player list, and the kernel/schedule that produced the
        run — plus the ``idde-request/1`` document of the request that
        produced it (serialised leniently: a live warm-start object
        degrades to its boolean presence, a live generator to a null
        seed).
        """
        doc: dict[str, Any] = {
            "schema": SOLUTION_SCHEMA,
            "solver": self.solver,
            "r_avg": self.evaluation.r_avg,
            "l_avg_ms": self.evaluation.l_avg_ms,
            "wall_time_s": self.wall_time_s,
            "allocated_users": int(self.evaluation.allocated_users),
            "replicas": int(self.evaluation.replicas),
            "config": dict(self.config),
            "request": (
                self.request.to_dict(lenient=True)
                if self.request is not None
                else None
            ),
        }
        if self.game is not None:
            doc["game"] = {
                "rounds": self.game.rounds,
                "moves": self.game.moves,
                "converged": self.game.converged,
                "is_nash": self.game.is_nash,
                "effective_epsilon": self.game.effective_epsilon,
                "capped_users": list(self.game.capped_users),
                "move_count": len(self.game.move_log),
                "wall_time_s": self.game.wall_time_s,
            }
        else:
            doc["game"] = None
        if self.delivery_result is not None:
            doc["delivery"] = {
                "iterations": self.delivery_result.iterations,
                "placements": [list(p) for p in self.delivery_result.placements],
                "total_gain_s": self.delivery_result.total_gain_s,
                "wall_time_s": self.delivery_result.wall_time_s,
            }
        else:
            doc["delivery"] = None
        doc["extras"] = {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in self.extras.items()
            if json_scalarish(v)
        }
        return doc

    def summary(self) -> str:
        """One human-readable line per run (the CLI table row source)."""
        parts = [
            f"{self.solver}: R_avg={self.r_avg:.2f} MB/s",
            f"L_avg={self.l_avg_ms:.2f} ms",
            f"t={self.wall_time_s:.3f}s",
            f"allocated={self.evaluation.allocated_users}",
            f"replicas={self.evaluation.replicas}",
        ]
        if self.game is not None:
            nash = "nash" if self.game.is_nash else "no-cert"
            parts.append(
                f"game={self.game.rounds}r/{self.game.moves}m ({nash}, "
                f"eps={self.game.effective_epsilon:.1e})"
            )
        return "  ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Solution({self.summary()})"


def load_solution_document(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a solution document and normalise it to ``idde-solution/2``.

    Accepts both schema versions: a v1 document (pre-IDDE-Serve) is
    upgraded in place — the tag is rewritten and the v2-only ``request``
    field is filled with ``None`` (v1 never recorded the producing
    request).  Anything else fails with
    :class:`~repro.errors.ConfigurationError`.  See docs/SERVING.md for
    the v1 → v2 migration note.
    """
    if not isinstance(doc, Mapping):
        raise ConfigurationError(
            f"solution document must be a JSON object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema not in SOLUTION_SCHEMAS:
        raise ConfigurationError(
            f"unsupported solution schema {schema!r}; this build reads "
            f"{list(SOLUTION_SCHEMAS)}"
        )
    missing = [
        key
        for key in ("solver", "r_avg", "l_avg_ms", "wall_time_s", "config")
        if key not in doc
    ]
    if missing:
        raise ConfigurationError(
            f"solution document is missing required key(s) {missing}"
        )
    out = dict(doc)
    if schema == SOLUTION_SCHEMA_V1:
        out["schema"] = SOLUTION_SCHEMA
        out.setdefault("request", None)
    return out


def execute(
    instance: IDDEInstance,
    request: SolveRequest,
    *,
    tracer: Tracer | None = None,
) -> Solution:
    """Execute one :class:`~repro.request.SolveRequest` on one instance.

    The core of the façade: :func:`solve` (both spellings) and the
    IDDE-Serve :class:`~repro.serve.SolverSession` all funnel through
    here.  ``tracer`` is execution context, not part of the request.
    """
    tracer = ensure_tracer(tracer)
    name = resolve_solver_name(request.solver)
    opts = dict(request.solver_options)
    warm_start = request.warm_start
    if warm_start is True:
        raise ConfigurationError(
            "warm_start=True is the wire sentinel for 'use the serving "
            "session's resident solution'; a direct solve needs the actual "
            "prior Solution or AllocationProfile"
        )
    active = request.active
    warm_detached: int | None = None
    if name == "idde-g":
        initial: AllocationProfile | None = None
        if warm_start is not None:
            prior = (
                warm_start.allocation
                if isinstance(warm_start, Solution)
                else warm_start
            )
            with tracer.span("api.warm_start") as span:
                initial, warm_detached = repair_allocation(instance, prior, active)
                span.set(
                    detached=warm_detached,
                    carried=int(initial.allocated.sum()),
                )
        if request.sharding is not None:
            s = ShardedIddeG(
                request.game_config,
                request.delivery_config,
                sharding=request.sharding,
                tracer=tracer,
                initial=initial,
                active=active,
                **opts,
            )
        else:
            s = IddeG(
                request.game_config,
                request.delivery_config,
                tracer=tracer,
                initial=initial,
                active=active,
                **opts,
            )
    else:
        if request.game_config is not None or request.delivery_config is not None:
            raise ConfigurationError(
                f"game_config/delivery_config apply only to 'idde-g'; "
                f"solver {name!r} has no game or greedy-delivery phase"
            )
        if request.sharding is not None:
            raise ConfigurationError(
                f"sharding applies only to 'idde-g'; solver {name!r} "
                f"has no game phase to decompose"
            )
        if warm_start is not None or active is not None:
            raise ConfigurationError(
                f"warm_start/active apply only to 'idde-g'; solver {name!r} "
                f"has no game to re-enter"
            )
        if name == "idde-ip" and request.ip_time_budget_s is not None:
            opts.setdefault("time_budget_s", request.ip_time_budget_s)
        s = solver_by_name(name, **opts)

    config: dict[str, Any] = {"solver": name}
    if name == "idde-g":
        gc, dc = s.game_cfg, s.delivery_cfg
        config.update(
            schedule=gc.schedule,
            kernel=gc.kernel,
            epsilon=gc.epsilon,
            max_rounds=gc.max_rounds,
            ratio_rule=dc.ratio_rule,
            delivery_kernel=dc.kernel,
        )
        if request.sharding is not None:
            config["shards"] = (
                request.sharding.n_shards if request.sharding.n_shards else "auto"
            )
        config["warm_start"] = warm_start is not None
        if active is not None:
            config["active_users"] = int(np.asarray(active, dtype=bool).sum())
    elif name == "idde-ip":
        config["time_budget_s"] = float(opts.get("time_budget_s", 10.0))

    rng = ensure_rng(request.rng)
    with tracer.span("api.solve", solver=s.name) as span:
        strategy = s.solve(instance, rng, validate=request.validate, tracer=tracer)
        span.set(r_avg=strategy.r_avg, l_avg_ms=strategy.l_avg_ms)

    extras = dict(strategy.extras)
    if warm_detached is not None:
        extras["warm_detached"] = warm_detached
    evaluation: Evaluation = strategy.evaluation
    game: GameResult | None = extras.pop("game_result", None)
    delivery_result: DeliveryResult | None = extras.pop("delivery_result", None)
    return Solution(
        solver=strategy.solver,
        allocation=strategy.allocation,
        delivery=strategy.delivery,
        evaluation=evaluation,
        wall_time_s=strategy.wall_time_s,
        config=config,
        game=game,
        delivery_result=delivery_result,
        extras=extras,
        request=request,
    )


def solve(
    instance: IDDEInstance,
    solver: "str | SolveRequest" = "idde-g",
    *,
    game_config: GameConfig | None = None,
    delivery_config: DeliveryConfig | None = None,
    sharding: ShardConfig | None = None,
    warm_start: "Solution | AllocationProfile | None" = None,
    active: np.ndarray | None = None,
    tracer: Tracer | None = None,
    rng: Any = None,
    ip_time_budget_s: float | None = None,
    validate: bool = True,
    solver_options: dict[str, Any] | None = None,
) -> Solution:
    """Solve one instance with a registry-named solver.

    Two spellings, bit-identical results:

    * ``solve(instance, SolveRequest(...), tracer=...)`` — the request
      object carries the whole run description (the recommended form; the
      same object is the daemon's ``idde-request/1`` wire format).
    * ``solve(instance, "idde-g", game_config=..., ...)`` — the classic
      keyword form, kept as a thin back-compat shim that constructs the
      identical :class:`~repro.request.SolveRequest` and executes it.

    Parameters
    ----------
    instance:
        The problem to solve.
    solver:
        Registry name (``"idde-g"``, ``"idde-ip"``, ``"saa"``, ``"cdp"``,
        ``"dup-g"``, ``"random"``, ``"nearest"``; case-insensitive) or a
        full :class:`~repro.request.SolveRequest`.  Unknown names raise
        :class:`~repro.errors.SolverLookupError` with a did-you-mean
        suggestion.  When a request object is passed, every other
        run-description keyword must stay at its default — the request is
        the single source of truth (``tracer`` is execution context and
        composes with both spellings).
    game_config, delivery_config:
        Phase configs for the two-phase IDDE-G solver (e.g.
        ``GameConfig(kernel="batched")``).  Passing either for any other
        solver raises :class:`~repro.errors.ConfigurationError` — baselines
        have no such phases, and silently ignoring the configs would
        mislabel the run.
    sharding:
        Optional :class:`~repro.sharding.ShardConfig`: phase 1 then runs
        through the interference-domain decomposition solver
        (:class:`~repro.sharding.ShardedIddeG`) — shards solved
        concurrently, boundary users reconciled globally, certificate on
        the whole instance.  Only meaningful for ``"idde-g"``; any other
        solver raises :class:`~repro.errors.ConfigurationError`.
    warm_start:
        A prior :class:`Solution` (or bare
        :class:`~repro.core.profiles.AllocationProfile`) to re-enter the
        IDDE-U game from instead of cold-solving — the incremental
        re-solve path of the streaming engine.  The profile is first
        *repaired* against this instance
        (:func:`~repro.core.repair.repair_allocation`): users whose server
        no longer covers them, whose channel no longer exists, or who fell
        out of ``active`` are detached; the game then plays on from there
        and re-certifies ε-Nash on the full instance (the certificate is
        as strong as a cold solve's).  Composes with ``sharding``
        (shard-local warm starts, boundary carry-over) and any
        kernel/schedule.  Only meaningful for ``"idde-g"``.
    active:
        Optional boolean ``(M,)`` participant mask (churn): inactive users
        never allocate and never move in the game.  Only meaningful for
        ``"idde-g"``.
    tracer:
        Optional IDDE-Trace tracer threaded through every layer the run
        touches; defaults to the shared no-op.
    rng:
        Seed or generator for the solver's randomness (``repro.rng``
        discipline).
    ip_time_budget_s:
        Time cap for the ``"idde-ip"`` solver; ignored by every other
        solver (the experiment harness passes one bundle to all five).
    validate:
        Check the returned strategy against the instance constraints.
    solver_options:
        Extra keyword arguments for the solver's constructor.
    """
    if isinstance(solver, SolveRequest):
        overrides = [
            name
            for name, value, default in (
                ("game_config", game_config, None),
                ("delivery_config", delivery_config, None),
                ("sharding", sharding, None),
                ("warm_start", warm_start, None),
                ("active", active, None),
                ("rng", rng, None),
                ("ip_time_budget_s", ip_time_budget_s, None),
                ("validate", validate, True),
                ("solver_options", solver_options, None),
            )
            if value is not default
        ]
        if overrides:
            raise ConfigurationError(
                f"solve() got both a SolveRequest and keyword override(s) "
                f"{overrides}; the request object is the single source of "
                "truth — use dataclasses.replace / SolveRequest.with_runtime"
            )
        return execute(instance, solver, tracer=tracer)
    request = SolveRequest(
        solver=solver,
        game_config=game_config,
        delivery_config=delivery_config,
        sharding=sharding,
        warm_start=warm_start,
        active=active,
        rng=rng,
        ip_time_budget_s=ip_time_budget_s,
        validate=validate,
        solver_options=dict(solver_options or {}),
    )
    return execute(instance, request, tracer=tracer)
