"""Configuration objects for every subsystem.

Each config is a frozen dataclass with validation in ``__post_init__`` so an
invalid configuration fails loudly at construction time, not deep inside a
vectorised kernel.  Defaults reproduce the experiment settings of Section 4.2
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .errors import ConfigurationError
from .units import dbm_to_watts

__all__ = [
    "RadioConfig",
    "TopologyConfig",
    "WorkloadConfig",
    "GameConfig",
    "DeliveryConfig",
    "ScenarioConfig",
    "DEFAULT_RADIO",
    "DEFAULT_TOPOLOGY",
    "DEFAULT_WORKLOAD",
    "DEFAULT_GAME",
    "DEFAULT_DELIVERY",
]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigurationError(msg)


@dataclass(frozen=True)
class RadioConfig:
    """Wireless last-mile model parameters (Section 2.2 / Section 4.2).

    Attributes
    ----------
    eta:
        Frequency-dependent factor ``η`` of the channel gain
        ``g = η · H^-loss`` (paper: 1).
    loss_exponent:
        Path-loss exponent ``loss`` (paper: 3).
    bandwidth:
        Per-channel bandwidth ``B`` in rate units; with the Shannon formula
        ``R = B log2(1+SINR)`` the reported rates come out in MB/s
        (paper: 200 per channel).
    noise_dbm:
        Additive white Gaussian noise floor ``ω`` in dBm (paper: −174).
    channels_per_server:
        Number of orthogonal channels per edge server (paper: 3).
    channel_range:
        Optional ``(lo, hi)`` for *heterogeneous* provisioning: when set,
        each server's channel count is drawn uniformly from the inclusive
        range and ``channels_per_server`` is ignored by the scenario
        sampler.  The engine handles ragged channel tables via its
        validity mask.
    min_distance:
        Lower clamp on user-server distance in metres before applying the
        power law, preventing a singular gain when a user sits exactly on
        a server site.
    """

    eta: float = 1.0
    loss_exponent: float = 3.0
    bandwidth: float = 200.0
    noise_dbm: float = -174.0
    channels_per_server: int = 3
    channel_range: tuple[int, int] | None = None
    min_distance: float = 1.0

    def __post_init__(self) -> None:
        _require(self.eta > 0, f"eta must be > 0, got {self.eta}")
        _require(
            self.loss_exponent > 0, f"loss_exponent must be > 0, got {self.loss_exponent}"
        )
        _require(self.bandwidth > 0, f"bandwidth must be > 0, got {self.bandwidth}")
        _require(
            self.channels_per_server >= 1,
            f"channels_per_server must be >= 1, got {self.channels_per_server}",
        )
        if self.channel_range is not None:
            lo, hi = self.channel_range
            _require(1 <= lo <= hi, f"bad channel_range {self.channel_range}")
        _require(self.min_distance > 0, f"min_distance must be > 0, got {self.min_distance}")

    def draw_channels(self, n: int, rng) -> "np.ndarray":  # noqa: F821
        """Per-server channel counts: fixed or heterogeneous."""
        import numpy as np

        if self.channel_range is None:
            return np.full(n, self.channels_per_server, dtype=np.int64)
        lo, hi = self.channel_range
        return rng.integers(lo, hi + 1, size=n).astype(np.int64)

    @property
    def noise_watts(self) -> float:
        """Noise floor converted to Watts."""
        return dbm_to_watts(self.noise_dbm)


@dataclass(frozen=True)
class TopologyConfig:
    """Edge-server graph parameters (Section 4.2/4.3).

    ``density · N`` undirected links are generated at random; pairs of
    servers left disconnected exchange data via the cloud path only.
    """

    edge_speed_range: tuple[float, float] = (2000.0, 6000.0)
    cloud_speed: float = 600.0
    allow_self_links: bool = False

    def __post_init__(self) -> None:
        lo, hi = self.edge_speed_range
        _require(0 < lo <= hi, f"bad edge_speed_range {self.edge_speed_range}")
        _require(self.cloud_speed > 0, f"cloud_speed must be > 0, got {self.cloud_speed}")


@dataclass(frozen=True)
class WorkloadConfig:
    """Data, storage, power and request-pattern parameters (Section 4.2)."""

    data_sizes: tuple[float, ...] = (30.0, 60.0, 90.0)
    storage_range: tuple[float, float] = (30.0, 300.0)
    power_range: tuple[float, float] = (1.0, 5.0)
    rmax_range: tuple[float, float] = (180.0, 220.0)
    requests_per_user: int = 1
    zipf_exponent: float = 0.8

    def __post_init__(self) -> None:
        _require(len(self.data_sizes) > 0, "data_sizes must be non-empty")
        _require(all(s > 0 for s in self.data_sizes), f"bad data_sizes {self.data_sizes}")
        for name in ("storage_range", "power_range", "rmax_range"):
            lo, hi = getattr(self, name)
            _require(0 < lo <= hi, f"bad {name} {(lo, hi)}")
        _require(
            self.requests_per_user >= 1,
            f"requests_per_user must be >= 1, got {self.requests_per_user}",
        )
        _require(self.zipf_exponent >= 0, f"zipf_exponent must be >= 0, got {self.zipf_exponent}")


@dataclass(frozen=True)
class GameConfig:
    """IDDE-U best-response dynamics parameters (Algorithm 1, Phase 1).

    Attributes
    ----------
    schedule:
        Update schedule.  ``"best-gain-winner"`` follows Algorithm 1: every
        user submits its best response and the single user with the largest
        benefit gain wins the round.  ``"random-winner"`` picks a uniformly
        random improving user (classic asynchronous better-response);
        ``"round-robin"`` sweeps users in index order applying every
        improving move within one sweep.
    kernel:
        Best-response evaluation kernel.  ``"reference"`` evaluates users
        one at a time through :meth:`SinrEngine.candidates`;
        ``"batched"`` evaluates all users' candidate grids in one einsum
        pass per round (:meth:`SinrEngine.batch_best_responses`).  The two
        are a verified pair: identical move sequences, identical equilibria
        (see ``repro.bench.parity`` and docs/BENCHMARKING.md).
    epsilon:
        Minimum relative benefit improvement for a move to count; guards
        against floating-point livelock near the equilibrium.
    max_rounds:
        Hard cap on update rounds (Theorem 4 guarantees finite convergence
        under the paper's homogeneous-gain assumption; the cap is a safety
        net, not the expected exit path).
    patience_moves:
        With fully heterogeneous gains the game is only *approximately* a
        potential game and best-response dynamics can cycle on rare
        instances.  After this many moves without convergence the epsilon
        threshold is escalated by ``epsilon_growth`` (up to
        ``epsilon_max``), damping cycles early.  ``0`` selects the
        automatic budget ``max(2·M, 200)`` — normal runs converge within
        about two moves per user, so escalation only fires on genuine
        cycles, and the first escalations are far below any physically
        meaningful tolerance anyway.  ``epsilon_max`` bounds only this
        patience-driven escalation; the cap-exhaustion escalation below
        may exceed it when a cycle survives the ceiling.
    max_moves_per_user:
        Cycle breaker: a user that has already moved this many times sits
        out until the sweep goes quiet.  At that point the run checks the
        frozen users — if none still has an ε-improving move the result
        is a certified ε-Nash; if one does, the threshold escalates by
        ``epsilon_growth`` (past ``epsilon_max`` if necessary — benefit
        ratios are bounded, so finitely many escalations silence any
        cycle) and every move budget is refreshed.  A run that reports
        ``converged=True`` therefore always carries an honest certificate
        at ``GameResult.effective_epsilon``.  Normal runs use ~2 moves per
        user, so the cap only binds on cycling instances.
    allow_unallocated:
        Whether users may remain unallocated when every candidate channel
        offers no positive benefit (the paper's ``α_j = (0,0)`` state).
    """

    schedule: str = "round-robin"
    kernel: str = "reference"
    epsilon: float = 1e-9
    max_rounds: int = 10_000
    patience_moves: int = 0
    epsilon_growth: float = 10.0
    epsilon_max: float = 1e-3
    max_moves_per_user: int = 25
    allow_unallocated: bool = False

    _SCHEDULES = ("best-gain-winner", "random-winner", "round-robin")
    _KERNELS = ("reference", "batched")

    def __post_init__(self) -> None:
        _require(
            self.schedule in self._SCHEDULES,
            f"schedule must be one of {self._SCHEDULES}, got {self.schedule!r}",
        )
        _require(
            self.kernel in self._KERNELS,
            f"kernel must be one of {self._KERNELS}, got {self.kernel!r}",
        )
        _require(self.epsilon >= 0, f"epsilon must be >= 0, got {self.epsilon}")
        _require(self.max_rounds >= 1, f"max_rounds must be >= 1, got {self.max_rounds}")
        _require(self.patience_moves >= 0, f"patience_moves must be >= 0, got {self.patience_moves}")
        _require(self.epsilon_growth > 1, f"epsilon_growth must be > 1, got {self.epsilon_growth}")
        _require(self.epsilon_max > 0, f"epsilon_max must be > 0, got {self.epsilon_max}")
        _require(
            self.max_moves_per_user >= 1,
            f"max_moves_per_user must be >= 1, got {self.max_moves_per_user}",
        )

    def patience_for(self, n_users: int) -> int:
        """The move budget before epsilon escalation kicks in."""
        if self.patience_moves > 0:
            return self.patience_moves
        return max(2 * n_users, 200)


@dataclass(frozen=True)
class DeliveryConfig:
    """Phase 2 greedy delivery parameters.

    ``ratio_rule=True`` is the paper's Eq. (17): pick the placement with the
    highest latency reduction *per megabyte*; ``False`` degrades to absolute
    latency reduction (the CDP-style rule, kept for ablation A1).

    The two rules score candidates in **different units**, so each has its
    own explicitly-suffixed stopping threshold (unit honesty, IDDE003/004):

    ``min_gain_s``
        Used when ``ratio_rule=False``: a placement must reduce total
        retrieval latency by more than this many **seconds** to be made.
    ``min_gain_s_per_mb``
        Used when ``ratio_rule=True``: a placement must save more than this
        many **seconds per megabyte** of storage it consumes.

    Both default to 0 — any strictly positive improvement is accepted, as
    in Algorithm 1 line 24.  (The old single ``min_gain`` field conflated
    the two units and was removed.)

    ``kernel``
        Placement-loop implementation.  ``"reference"`` sweeps all K items
        in Python each iteration (the literal Algorithm 1 transcription);
        ``"batched"`` maintains the full ``(K, N)`` gain table and updates
        it incrementally — only the placed item's row changes between
        iterations.  The two are a verified pair: identical placement
        sequence, gains, and threshold-reject counts, bit for bit (see
        ``repro.bench.delivery_parity`` and docs/BENCHMARKING.md).
    """

    ratio_rule: bool = True
    min_gain_s: float = 0.0
    min_gain_s_per_mb: float = 0.0
    kernel: str = "reference"

    _KERNELS = ("reference", "batched")

    def __post_init__(self) -> None:
        _require(self.min_gain_s >= 0, f"min_gain_s must be >= 0, got {self.min_gain_s}")
        _require(
            self.min_gain_s_per_mb >= 0,
            f"min_gain_s_per_mb must be >= 0, got {self.min_gain_s_per_mb}",
        )
        _require(
            self.kernel in self._KERNELS,
            f"kernel must be one of {self._KERNELS}, got {self.kernel!r}",
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """Bundle of all model configs describing one simulated environment."""

    radio: RadioConfig = field(default_factory=RadioConfig)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    def with_overrides(self, **kwargs: Mapping[str, Any]) -> "ScenarioConfig":
        """Return a copy with sub-configs replaced by keyword."""
        return replace(self, **kwargs)


DEFAULT_RADIO = RadioConfig()
DEFAULT_TOPOLOGY = TopologyConfig()
DEFAULT_WORKLOAD = WorkloadConfig()
DEFAULT_GAME = GameConfig()
DEFAULT_DELIVERY = DeliveryConfig()
