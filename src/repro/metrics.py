"""Quality-of-experience metrics beyond the paper's two averages.

The paper optimises the *average* data rate and latency; operators also
care about the distribution — a strategy that starves a few users can
still post a good mean.  These helpers quantify that:

* :func:`jain_index` — Jain's fairness index, 1/M (worst) .. 1 (equal);
* :func:`percentile_summary` — min/p10/median/p90/max of a metric;
* :func:`coverage_ratio` — fraction of users actually allocated;
* :func:`strategy_report` — the full per-strategy QoE bundle used by the
  examples and the fairness tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.instance import IDDEInstance
from .core.objectives import evaluate
from .core.profiles import AllocationProfile, DeliveryProfile

__all__ = [
    "jain_index",
    "percentile_summary",
    "coverage_ratio",
    "QoEReport",
    "strategy_report",
]


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)``.

    Equals 1 for perfectly equal allocations and ``1/n`` when one user
    takes everything.  All-zero input returns 1.0 (vacuously fair).
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("Jain's index is defined for non-negative values")
    total_sq = float(x.sum()) ** 2
    denom = x.size * float((x**2).sum())
    if denom == 0.0:
        return 1.0
    return total_sq / denom


def percentile_summary(values: np.ndarray) -> dict[str, float]:
    """min / p10 / median / p90 / max of a metric vector."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return {"min": 0.0, "p10": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0}
    return {
        "min": float(x.min()),
        "p10": float(np.percentile(x, 10)),
        "median": float(np.median(x)),
        "p90": float(np.percentile(x, 90)),
        "max": float(x.max()),
    }


def coverage_ratio(alloc: AllocationProfile) -> float:
    """Fraction of users allocated to some channel."""
    if alloc.n_users == 0:
        return 1.0
    return alloc.n_allocated / alloc.n_users


@dataclass(frozen=True)
class QoEReport:
    """Distributional quality-of-experience summary of one strategy."""

    r_avg: float
    l_avg_ms: float
    rate_fairness: float
    rate_percentiles: dict[str, float]
    latency_percentiles_ms: dict[str, float]
    allocated_ratio: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QoEReport(R_avg={self.r_avg:.1f}, L_avg={self.l_avg_ms:.1f} ms, "
            f"fairness={self.rate_fairness:.3f}, "
            f"allocated={self.allocated_ratio:.0%})"
        )


def strategy_report(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    delivery: DeliveryProfile,
) -> QoEReport:
    """Evaluate a strategy's full QoE distribution."""
    ev = evaluate(instance, alloc, delivery)
    return QoEReport(
        r_avg=ev.r_avg,
        l_avg_ms=ev.l_avg_ms,
        rate_fairness=jain_index(ev.rates),
        rate_percentiles=percentile_summary(ev.rates),
        latency_percentiles_ms=percentile_summary(ev.latencies_ms),
        allocated_ratio=coverage_ratio(alloc),
    )
