"""repro — Interference-aware Data Delivery in Edge Storage Systems.

A from-scratch reproduction of *"Formulating Interference-aware Data
Delivery Strategies in Edge Storage Systems"* (Xia et al., ICPP 2022):
the IDDE problem, the IDDE-G game-theoretic solver, the four benchmark
approaches, an EUA-style scenario generator, the wireless-interference and
edge-topology substrates, and the full Section 4 experiment harness.

Quickstart
----------
>>> from repro import IDDEInstance, solve
>>> instance = IDDEInstance.generate(n=10, m=40, k=4, density=1.5, seed=7)
>>> sol = solve(instance, "idde-g", rng=7)
>>> sol.r_avg > 0 and sol.l_avg_ms >= 0
True

:func:`repro.api.solve` is the public façade every front-end routes
through; solver classes (:class:`IddeG` etc.) remain importable for
direct construction.

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from .config import (
    DeliveryConfig,
    GameConfig,
    RadioConfig,
    ScenarioConfig,
    TopologyConfig,
    WorkloadConfig,
)
from .core import (
    AllocationProfile,
    DeliveryProfile,
    IDDEInstance,
    IDDEStrategy,
    IddeG,
    IddeUGame,
    average_data_rate,
    average_delivery_latency_ms,
    evaluate,
    greedy_delivery,
)
from .core.strategy import Solver
from .api import Solution, solve
from .request import SolveRequest
from .baselines import CDP, SAA, DupG, IddeIP, default_solvers, solver_by_name
from .datasets import EuaPool, sample_scenario, synthetic_eua
from .dynamics import DynamicSimulation, RandomWaypoint
from .errors import ReproError
from .metrics import jain_index, strategy_report
from .solvers import optimal_delivery_milp
from .topology import EdgeTopology, build_topology
from .types import DataItem, EdgeServer, Scenario, User

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # configuration
    "RadioConfig",
    "TopologyConfig",
    "WorkloadConfig",
    "GameConfig",
    "DeliveryConfig",
    "ScenarioConfig",
    # entities
    "Scenario",
    "EdgeServer",
    "User",
    "DataItem",
    # the public façade
    "solve",
    "Solution",
    "SolveRequest",
    # problem & solvers
    "IDDEInstance",
    "AllocationProfile",
    "DeliveryProfile",
    "IDDEStrategy",
    "Solver",
    "IddeG",
    "IddeUGame",
    "IddeIP",
    "SAA",
    "CDP",
    "DupG",
    "default_solvers",
    "solver_by_name",
    # objectives
    "average_data_rate",
    "average_delivery_latency_ms",
    "evaluate",
    "greedy_delivery",
    # datasets & topology
    "EuaPool",
    "synthetic_eua",
    "sample_scenario",
    "EdgeTopology",
    "build_topology",
    # extensions
    "DynamicSimulation",
    "RandomWaypoint",
    "optimal_delivery_milp",
    "jain_index",
    "strategy_report",
    # errors
    "ReproError",
]
