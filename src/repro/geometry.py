"""Planar geometry substrate: distances, coverage, and spatial sampling.

Edge servers and users live in a planar region measured in metres (the
EUA dataset's Melbourne CBD footprint is small enough that a local tangent
plane is exact for all practical purposes).  Everything here is vectorised:
the distance and coverage computations are the innermost kernels of the
radio model and are evaluated for every candidate scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ScenarioError

__all__ = [
    "Region",
    "pairwise_distances",
    "coverage_matrix",
    "covering_sets",
    "sample_points_uniform",
    "sample_points_in_coverage",
    "jittered_grid",
]


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangular region ``[x0, x1] × [y0, y1]`` in metres."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.x1 > self.x0 and self.y1 > self.y0):
            raise ScenarioError(
                f"degenerate region: ({self.x0}, {self.y0}) .. ({self.x1}, {self.y1})"
            )

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test for an ``(n, 2)`` array of points."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        return (
            (pts[:, 0] >= self.x0)
            & (pts[:, 0] <= self.x1)
            & (pts[:, 1] >= self.y0)
            & (pts[:, 1] <= self.y1)
        )


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between two point sets.

    Parameters
    ----------
    a : ``(n, 2)`` array
    b : ``(m, 2)`` array

    Returns
    -------
    ``(n, m)`` array of distances in the same unit as the inputs.

    Notes
    -----
    Uses the broadcasting identity rather than ``scipy.spatial.distance``
    so the hot path has no Python-level loop and no extra dependency; the
    subtraction form is numerically exact for the coordinate magnitudes
    used here (metres within a few km).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2 or b.ndim != 2 or b.shape[1] != 2:
        raise ScenarioError(
            f"expected (n, 2) point arrays, got shapes {a.shape} and {b.shape}"
        )
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("nmk,nmk->nm", diff, diff))


def coverage_matrix(
    server_xy: np.ndarray, radius: np.ndarray, user_xy: np.ndarray
) -> np.ndarray:
    """Boolean ``(N, M)`` matrix: server *i* covers user *j*.

    A user is covered when its distance to the server does not exceed the
    server's coverage radius (EUA convention).
    """
    dist = pairwise_distances(server_xy, user_xy)
    radius = np.asarray(radius, dtype=float)
    if radius.shape != (dist.shape[0],):
        raise ScenarioError(
            f"radius shape {radius.shape} does not match {dist.shape[0]} servers"
        )
    return dist <= radius[:, None]


def covering_sets(cover: np.ndarray) -> list[np.ndarray]:
    """Per-user arrays of covering-server indices (the paper's ``V_j``)."""
    cover = np.asarray(cover, dtype=bool)
    return [np.flatnonzero(cover[:, j]) for j in range(cover.shape[1])]


def sample_points_uniform(
    region: Region, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` points uniformly inside ``region``; returns ``(n, 2)``."""
    if n < 0:
        raise ScenarioError(f"cannot sample {n} points")
    xs = rng.uniform(region.x0, region.x1, size=n)
    ys = rng.uniform(region.y0, region.y1, size=n)
    return np.column_stack([xs, ys])


def sample_points_in_coverage(
    server_xy: np.ndarray,
    radius: np.ndarray,
    n: int,
    rng: np.random.Generator,
    *,
    max_attempts: int = 1000,
) -> np.ndarray:
    """Sample ``n`` points each covered by at least one server.

    Implements the EUA property that every user sits inside at least one
    server's coverage disc.  Points are drawn by picking a server
    proportional to its disc area and sampling uniformly inside that disc,
    which is an exact uniform sample over the (multi-)covered union up to
    overlap weighting — adequate for workload generation and far cheaper
    than rejection over the bounding box when coverage is sparse.
    """
    server_xy = np.asarray(server_xy, dtype=float)
    radius = np.asarray(radius, dtype=float)
    if server_xy.ndim != 2 or server_xy.shape[1] != 2:
        raise ScenarioError(f"server_xy must be (N, 2), got {server_xy.shape}")
    if len(server_xy) == 0:
        raise ScenarioError("cannot sample covered points with zero servers")
    if np.any(radius <= 0):
        raise ScenarioError("all coverage radii must be positive")
    del max_attempts  # kept for API stability; disc sampling never rejects
    weights = radius**2
    weights = weights / weights.sum()
    owners = rng.choice(len(server_xy), size=n, p=weights)
    # Uniform sample in a disc: r = R * sqrt(u), theta uniform.
    u = rng.random(n)
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    r = radius[owners] * np.sqrt(u)
    offsets = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
    return server_xy[owners] + offsets


def jittered_grid(
    region: Region,
    n: int,
    rng: np.random.Generator,
    *,
    jitter_frac: float = 0.35,
) -> np.ndarray:
    """Place ``n`` points on a jittered grid filling ``region``.

    Produces the roughly regular but non-uniform base-station layout seen
    in the EUA dataset: cells of a ``ceil(sqrt)`` grid are filled row-major
    and each point is jittered by ``jitter_frac`` of the cell pitch.
    """
    if n <= 0:
        raise ScenarioError(f"cannot place {n} grid points")
    cols = int(np.ceil(np.sqrt(n * region.width / region.height)))
    cols = max(cols, 1)
    rows = int(np.ceil(n / cols))
    pitch_x = region.width / cols
    pitch_y = region.height / rows
    idx = np.arange(n)
    cx = region.x0 + (idx % cols + 0.5) * pitch_x
    cy = region.y0 + (idx // cols + 0.5) * pitch_y
    jitter = rng.uniform(-jitter_frac, jitter_frac, size=(n, 2))
    pts = np.column_stack([cx, cy]) + jitter * np.array([pitch_x, pitch_y])
    pts[:, 0] = np.clip(pts[:, 0], region.x0, region.x1)
    pts[:, 1] = np.clip(pts[:, 1], region.y0, region.y1)
    return pts
