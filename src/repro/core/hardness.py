"""NP-hardness reduction gadgets (Theorem 1).

The paper proves the IDDE problem NP-hard by reducing the *minimum routing
cost spanning tree* (MRCS) problem to Objective #1 and appealing to
*weighted k-set packing* (WKSP) for Objective #2.  This module builds
concrete gadget instances for both directions so the hardness argument is
inspectable and testable, in the spirit of executable paper artefacts:

* :func:`wksp_gadget` — encodes a weighted set-packing input as a delivery
  subproblem: one "slot" server per packing slot whose storage admits at
  most one set (data item), with item demand encoding the set weight.
  Choosing the latency-optimal delivery profile = choosing the
  max-weight packing.
* :func:`interference_gadget` — the Objective #1 side: a chain of users
  with pairwise-overlapping coverage where maximising the average rate
  requires solving a graph colouring-flavoured channel assignment; used
  to exhibit instances where greedy channel choices are strictly
  suboptimal (the seed of the MRCS reduction's difficulty).

These are illustrative reductions for study and testing, not a formal
proof artifact — see the paper's Theorem 1 for the argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RadioConfig, TopologyConfig
from ..errors import ScenarioError
from ..topology.graph import EdgeTopology
from ..types import Scenario
from .instance import IDDEInstance

__all__ = ["WkspInput", "wksp_gadget", "interference_gadget"]


@dataclass(frozen=True)
class WkspInput:
    """A weighted set-packing instance: ``sets[i]`` is a tuple of element
    ids, ``weights[i]`` its value."""

    sets: tuple[tuple[int, ...], ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sets) != len(self.weights):
            raise ScenarioError("sets and weights must align")
        if any(w <= 0 for w in self.weights):
            raise ScenarioError("weights must be positive")
        if any(len(s) == 0 for s in self.sets):
            raise ScenarioError("empty sets are not allowed")


def wksp_gadget(wksp: WkspInput, *, item_size: float = 60.0) -> tuple[IDDEInstance, np.ndarray]:
    """Encode a WKSP input as an IDDE delivery subproblem.

    Construction: one *element server* per universe element with storage
    for exactly one item; one data item per set, requested (with weight
    many requesters) by users attached to each of the set's element
    servers.  A feasible delivery profile that places item ``i`` on every
    element server of set ``i`` "selects" the set; storage for one item
    per server enforces disjointness of selected sets element-wise.

    Returns the instance and the per-item weight vector (for scoring a
    selection).  Latency-minimising profiles correspond to high-weight
    packings: each placed replica converts its requesters from cloud
    fetches to local hits.
    """
    universe = sorted({e for s in wksp.sets for e in s})
    index = {e: i for i, e in enumerate(universe)}
    n = len(universe)
    k = len(wksp.sets)
    spacing = 10_000.0  # element servers are radio-isolated from each other

    server_xy = np.column_stack(
        [np.arange(n, dtype=float) * spacing, np.zeros(n)]
    )
    # Users: per set i, per element e in the set, `round(weight)` users
    # attached near element server index[e], all requesting item i.
    user_rows: list[tuple[float, float]] = []
    requests_rows: list[int] = []
    for i, (s, w) in enumerate(zip(wksp.sets, wksp.weights)):
        copies = max(1, int(round(w)))
        for e in s:
            base = server_xy[index[e]]
            for c in range(copies):
                user_rows.append((base[0] + 5.0 + c * 0.5, base[1] + 5.0))
                requests_rows.append(i)
    m = len(user_rows)
    requests = np.zeros((m, k), dtype=bool)
    requests[np.arange(m), requests_rows] = True

    scenario = Scenario(
        server_xy=server_xy,
        radius=np.full(n, 100.0),
        storage=np.full(n, item_size),  # exactly one item per server
        channels=np.full(n, 3, dtype=np.int64),
        user_xy=np.array(user_rows, dtype=float),
        power=np.full(m, 2.0),
        rmax=np.full(m, 200.0),
        sizes=np.full(k, item_size),
        requests=requests,
    )
    # No edge links: replicas only help locally, exactly the packing value.
    topology = EdgeTopology(
        n=n,
        links=np.empty((0, 2), dtype=np.int64),
        speeds=np.empty(0),
        cloud_speed=TopologyConfig().cloud_speed,
    )
    instance = IDDEInstance(scenario, topology, RadioConfig())
    return instance, np.array(wksp.weights, dtype=float)


def interference_gadget(chain_length: int = 4) -> IDDEInstance:
    """A coverage chain where channel assignment is a colouring problem.

    Servers sit on a line with radii that make consecutive servers'
    coverages overlap; one user sits in each overlap zone plus one at each
    end.  With a single channel per server, any two users sharing a
    covering server interfere, so maximising the average rate is a
    max-cut-flavoured assignment along the chain — the combinatorial core
    the MRCS reduction leans on.
    """
    if chain_length < 2:
        raise ScenarioError(f"chain needs >= 2 servers, got {chain_length}")
    spacing = 300.0
    n = chain_length
    server_xy = np.column_stack(
        [np.arange(n, dtype=float) * spacing, np.zeros(n)]
    )
    # Users in overlaps (between i and i+1) and at both ends.
    user_x = [0.0 - 50.0]
    user_x += [spacing * i + spacing / 2 for i in range(n - 1)]
    user_x += [(n - 1) * spacing + 50.0]
    user_xy = np.column_stack([np.array(user_x), np.zeros(len(user_x))])
    m = len(user_x)
    requests = np.zeros((m, 1), dtype=bool)
    requests[:, 0] = True
    scenario = Scenario(
        server_xy=server_xy,
        radius=np.full(n, 200.0),
        storage=np.full(n, 100.0),
        channels=np.full(n, 1, dtype=np.int64),
        user_xy=user_xy,
        power=np.full(m, 2.0),
        rmax=np.full(m, 200.0),
        sizes=np.array([60.0]),
        requests=requests,
    )
    links = np.column_stack([np.arange(n - 1), np.arange(1, n)])
    topology = EdgeTopology(
        n=n, links=links, speeds=np.full(n - 1, 3000.0), cloud_speed=600.0
    )
    return IDDEInstance(scenario, topology, RadioConfig(channels_per_server=1))
