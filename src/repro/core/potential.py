"""Potential functions for the IDDE-U game (Definition 4, Eq. 13).

Three related quantities are provided:

:func:`paper_potential`
    A literal transcription of the paper's Eq. (13), pairing benefit
    products over allocated users with the Lemma 2 penalty term for
    unallocated ones.  Used as a diagnostic; the paper proves it ordinal
    under the homogeneous-gain assumption of Theorem 3's proof.

:func:`congestion_potential`
    The exact Rosenthal-style potential of the *intra-cell* restriction of
    the game: resources are ``(server, channel)`` pairs, a player's cost is
    the total power load on its resource (own power included), and
    ``Φ = ½ (Σ_r L_r² + Σ_j p_j²)``.  Every strictly improving move of a
    player strictly decreases ``Φ`` when the game has a single server (or,
    more generally, negligible inter-cell coupling) — the property the
    tests assert.

:func:`global_channel_potential`
    The same construction over *global channel indices* (loads summed
    across servers), which is the exact potential in the fully-coupled
    homogeneous-gain case the paper's Theorem 3 proof analyses.

By convention all three are oriented so that the dynamics should (weakly)
*decrease* them; :class:`~repro.core.game.GameResult` traces use
:func:`interference_potential`, an alias of :func:`congestion_potential`.
"""

from __future__ import annotations

import numpy as np

from ..radio.sinr import UNALLOCATED, SinrEngine

__all__ = [
    "paper_potential",
    "congestion_potential",
    "global_channel_potential",
    "interference_potential",
    "lemma2_threshold",
]


def lemma2_threshold(engine: SinrEngine, j: int) -> float:
    """Lemma 2's interference ceiling ``T_j`` for user ``j``.

    ``T_j = g_{i,j} p_j / (2^{R_{j,min}/B} − 1) − ω`` where ``R_{j,min}``
    is the minimum candidate rate available to the user at the current
    profile and ``g`` is taken at the corresponding candidate.  Returns
    ``inf`` when the user has no covering server.
    """
    view = engine.candidates(j)
    if view.servers.size == 0:
        return float("inf")
    masked = np.where(view.valid, view.rate, np.inf)
    flat = int(np.argmin(masked))
    s, x = divmod(flat, masked.shape[1])
    r_min = float(masked[s, x])
    g = engine.gain[view.servers[s], j]
    denom = 2.0 ** (r_min / engine.bandwidth) - 1.0
    if denom <= 0.0:
        return float("inf")
    return float(g * engine.power[j] / denom - engine.noise)


def paper_potential(engine: SinrEngine) -> float:
    """Eq. (13), transcription: benefit-product pairs plus the Lemma 2
    penalty for unallocated users.

    ``π = Σ_j Σ_{q≠j} [ ½ I_j I_q β_j β_q − T_j I{α_j=(0,0)} β_q ]``
    """
    m = engine.scenario.n_users
    if m == 0:
        return 0.0
    beta = np.array([engine.user_benefit(j) for j in range(m)])
    allocated = engine.alloc_server != UNALLOCATED
    sum_beta = beta.sum()
    # Pairwise allocated-product term: ½ (S² − Σ β_j²) over allocated users.
    ba = np.where(allocated, beta, 0.0)
    pair_term = 0.5 * (ba.sum() ** 2 - (ba**2).sum())
    penalty = 0.0
    for j in np.flatnonzero(~allocated):
        t_j = lemma2_threshold(engine, j)
        if not np.isfinite(t_j):
            continue
        penalty += t_j * (sum_beta - beta[j])
    return float(pair_term - penalty)


def congestion_potential(engine: SinrEngine) -> float:
    """Rosenthal potential over ``(server, channel)`` resources.

    ``Φ = ½ (Σ_{i,x} P[i,x]² + Σ_{j allocated} p_j²)``.
    """
    loads = engine.channel_power
    allocated = engine.alloc_server != UNALLOCATED
    own = engine.power[allocated]
    return float(0.5 * ((loads**2).sum() + (own**2).sum()))


def global_channel_potential(engine: SinrEngine) -> float:
    """Rosenthal potential over global channel indices.

    ``Φ = ½ (Σ_x L_x² + Σ_{j allocated} p_j²)`` with
    ``L_x = Σ_i P[i, x]`` — exact for the fully-coupled homogeneous-gain
    game analysed in the paper's Theorem 3 proof.
    """
    loads = engine.channel_power.sum(axis=0)
    allocated = engine.alloc_server != UNALLOCATED
    own = engine.power[allocated]
    return float(0.5 * ((loads**2).sum() + (own**2).sum()))


#: Alias used by the game's ``track_potential`` trace.
interference_potential = congestion_potential
