"""Theoretical performance bounds (Section 3.2–3.3 of the paper).

These functions quantify, for a concrete instance and solver output, the
guarantees of:

* **Theorem 4** — an upper bound on the number of best-response iterations
  ``Y ≤ M (Q_max² − Q_min²) / (2 Q_min)`` with ``Q_j = g_j · p_j``;
* **Theorem 5** — the Price of Anarchy interval for the average data rate,
  ``R_min / R_max ≤ ρ ≤ 1``;
* **Theorems 6–7** — the greedy delivery's latency-reduction guarantee
  ``ΔL(σ) ≥ (1 − N·s_max/ΣA) · (e−1)/(2e) · ΔL(σ*)`` and the induced
  upper bound on the achieved average latency.

They are diagnostics: experiments report them alongside measured values so
the measured behaviour can be checked against theory (tests assert the
measured quantities respect each bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..units import seconds_to_ms
from .instance import IDDEInstance

__all__ = [
    "user_signal_strengths",
    "theorem4_iteration_bound",
    "theorem5_poa_interval",
    "greedy_approximation_factor",
    "theorem7_latency_upper_bound_ms",
    "cloud_only_latency_ms",
    "TheoryReport",
    "theory_report",
]


def user_signal_strengths(instance: IDDEInstance) -> np.ndarray:
    """``Q_j = max_{i ∈ V_j} g_{i,j} · p_j`` for every user (0 if uncovered)."""
    engine = instance.new_engine()
    g = np.where(instance.scenario.coverage, engine.gain, 0.0)
    return g.max(axis=0) * instance.scenario.power


def theorem4_iteration_bound(instance: IDDEInstance) -> float:
    """Theorem 4: ``Y ≤ M (Q_max² − Q_min²) / (2 Q_min)``.

    The paper's proof assumes the signal strengths ``Q_j`` are integers
    (each improving move raises the potential by at least ``Q_min``).  Our
    gains are fractional, so we apply the theorem in its normalised units:
    ``Q' = Q / Q_min`` (making ``Q'_min = 1``), giving
    ``Y ≤ M ((Q_max/Q_min)² − 1) / 2``, plus the ``M`` initial moves that
    bring every user in from the unallocated state (the paper's accounting
    starts from a fully allocated profile; ours starts empty, per
    Algorithm 1 line 2).

    Returns ``inf`` when some user is uncovered (``Q_min = 0``); the bound
    is vacuous there, matching the theorem's premise that every user can be
    allocated.
    """
    q = user_signal_strengths(instance)
    q = q[q > 0] if (q > 0).any() else q
    if len(q) == 0 or q.min() <= 0:
        return float("inf")
    m = instance.n_users
    ratio = float(q.max() / q.min())
    return m * (ratio**2 - 1.0) / 2.0 + m


def theorem5_poa_interval(
    instance: IDDEInstance, profile=None
) -> tuple[float, float]:
    """Theorem 5: ``(R_min/R_max, 1.0)`` for the average-rate PoA.

    ``R_min`` is the smallest candidate rate any user could be held to at
    the supplied allocation profile (the equilibrium, when certifying a
    game outcome; the interference-free empty profile when called a
    priori) and ``R_max`` the largest rate cap.  Any equilibrium's average
    rate ``R`` then satisfies ``R_min ≤ R ≤ R_opt ≤ R_max``, giving the
    stated PoA interval.
    """
    scenario = instance.scenario
    if scenario.n_users == 0:
        return (1.0, 1.0)
    engine = instance.new_engine()
    if profile is not None:
        engine.load_profile(profile.server, profile.channel)
    r_min = math.inf
    for j in range(scenario.n_users):
        view = engine.candidates(j)
        if view.servers.size == 0:
            continue
        worst = float(np.where(view.valid, view.rate, np.inf).min())
        r_min = min(r_min, worst)
    r_max = float(scenario.rmax.max())
    if not math.isfinite(r_min) or r_max <= 0:
        return (0.0, 1.0)
    return (max(0.0, min(1.0, r_min / r_max)), 1.0)


def greedy_approximation_factor(instance: IDDEInstance) -> float:
    """Theorems 6–7: ``(1 − N·s_max/ΣA) · (e−1)/(2e)``.

    The guaranteed fraction of the optimal latency *reduction* achieved by
    the Phase 2 greedy.  Clamped at 0 when the worst-case unplaceable mass
    ``N·s_max`` exceeds the total reserved storage (the bound is vacuous).
    """
    scenario = instance.scenario
    total = scenario.total_storage
    if total <= 0 or scenario.n_data == 0:
        return 0.0
    s_max = float(scenario.sizes.max())
    frac = 1.0 - instance.n_servers * s_max / total
    base = (math.e - 1.0) / (2.0 * math.e)
    return max(0.0, frac) * base


def cloud_only_latency_ms(instance: IDDEInstance) -> float:
    """``φ`` normalised per request: the average latency when every request
    is served from the cloud (the greedy's zero point), in ms."""
    zeta = instance.scenario.requests
    total = zeta.sum()
    if total == 0:
        return 0.0
    sizes = instance.scenario.sizes
    cloud = instance.latency_model.cloud_cost
    per_request = (zeta * (sizes[None, :] * cloud)).sum() / total
    return float(seconds_to_ms(per_request))


def theorem7_latency_upper_bound_ms(
    instance: IDDEInstance, l_opt_ms: float
) -> float:
    """Theorem 7's upper bound on the greedy's average latency, given the
    optimal profile's average latency ``l_opt_ms`` (both in ms)."""
    scenario = instance.scenario
    total = scenario.total_storage
    s_max = float(scenario.sizes.max()) if scenario.n_data else 0.0
    ratio = instance.n_servers * s_max / total if total > 0 else 1.0
    e = math.e
    phi = cloud_only_latency_ms(instance)
    return ((e + 1) / (2 * e) + (e - 1) / (2 * e) * ratio) * phi + max(
        0.0, 1.0 - ratio
    ) * (e - 1) / (2 * e) * l_opt_ms


@dataclass(frozen=True)
class TheoryReport:
    """All instance-level theoretical quantities in one bundle."""

    iteration_bound: float
    poa_interval: tuple[float, float]
    greedy_factor: float
    cloud_only_latency_ms: float


def theory_report(instance: IDDEInstance) -> TheoryReport:
    """Compute every theoretical diagnostic for an instance."""
    return TheoryReport(
        iteration_bound=theorem4_iteration_bound(instance),
        poa_interval=theorem5_poa_interval(instance),
        greedy_factor=greedy_approximation_factor(instance),
        cloud_only_latency_ms=cloud_only_latency_ms(instance),
    )
