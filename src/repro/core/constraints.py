"""Constraint checkers for the IDDE formulation (Eqs. 1, 6, 7, 8).

These are the invariants every solver's output must satisfy; the test
suite's property-based checks drive them over random instances and the
solvers call :func:`check_strategy` before returning.
"""

from __future__ import annotations

import numpy as np

from ..errors import DeliveryError
from .instance import IDDEInstance
from .objectives import per_user_latencies
from .profiles import AllocationProfile, DeliveryProfile

__all__ = [
    "check_allocation",
    "check_storage",
    "check_latency_constraint",
    "check_strategy",
]


def check_allocation(instance: IDDEInstance, alloc: AllocationProfile) -> None:
    """Eq. (1): allocations only to covering servers and real channels."""
    alloc.validate(instance.scenario)


def check_storage(instance: IDDEInstance, delivery: DeliveryProfile) -> None:
    """Eq. (6): no server stores more than its reserved capacity."""
    delivery.validate(instance.scenario)


def check_latency_constraint(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    delivery: DeliveryProfile,
    *,
    atol: float = 1e-9,
) -> None:
    """Eq. (8): no retrieval is slower than fetching from the cloud.

    Raises
    ------
    DeliveryError
        If any requested (user, item) pair pays more than the cloud fetch.
    """
    lat = per_user_latencies(instance, alloc, delivery)
    sizes = instance.scenario.sizes
    cloud = instance.latency_model.cloud_cost
    bound = sizes[None, :] * cloud + atol
    zeta = instance.scenario.requests
    violated = (lat > bound) & zeta
    if violated.any():
        j, k = map(int, np.argwhere(violated)[0])
        raise DeliveryError(
            f"user {j} retrieves item {k} in {lat[j, k]:.6f}s, slower than the "
            f"cloud bound {bound[j, k]:.6f}s"
        )


def check_strategy(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    delivery: DeliveryProfile,
) -> None:
    """All feasibility constraints of the IDDE formulation at once."""
    check_allocation(instance, alloc)
    check_storage(instance, delivery)
    check_latency_constraint(instance, alloc, delivery)
