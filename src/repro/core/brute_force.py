"""Exact reference solvers for tiny instances — the test oracles.

The IDDE problem is NP-hard (Theorem 1), so exhaustive search is only
feasible for toy sizes, but those toys are exactly what the integration
tests need: they certify that

* the Phase 2 greedy's latency is within its approximation bound of the
  true optimum (:func:`optimal_delivery`), and
* the Phase 1 equilibrium's average rate is within the PoA interval of the
  welfare optimum (:func:`optimal_allocation`).

Both searches enumerate the full decision space and are guarded against
accidental use on large instances.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..errors import SolverError
from .instance import IDDEInstance
from .objectives import average_data_rate, average_delivery_latency_ms
from .profiles import UNALLOCATED, AllocationProfile, DeliveryProfile

__all__ = ["optimal_delivery", "optimal_allocation", "enumerate_allocations"]

_MAX_DELIVERY_CELLS = 22
_MAX_ALLOC_SPACE = 300_000


def optimal_delivery(
    instance: IDDEInstance, alloc: AllocationProfile
) -> tuple[DeliveryProfile, float]:
    """Exhaustively find the latency-optimal feasible delivery profile.

    Returns ``(σ*, L_avg_ms)``.  Guarded to ``N·K ≤ 22`` cells.
    """
    n, k = instance.n_servers, instance.n_data
    cells = n * k
    if cells > _MAX_DELIVERY_CELLS:
        raise SolverError(
            f"optimal_delivery is exponential; refusing N·K = {cells} > {_MAX_DELIVERY_CELLS}"
        )
    sizes = instance.scenario.sizes
    storage = instance.scenario.storage
    best_profile: DeliveryProfile | None = None
    best_latency = float("inf")
    for bits in itertools.product((False, True), repeat=cells):
        placed = np.array(bits, dtype=bool).reshape(n, k)
        used = placed @ sizes
        if np.any(used > storage + 1e-9):
            continue
        profile = DeliveryProfile(placed)
        latency = average_delivery_latency_ms(instance, alloc, profile)
        if latency < best_latency - 1e-12:
            best_latency = latency
            best_profile = profile
    assert best_profile is not None  # the empty profile is always feasible
    return best_profile, best_latency


def enumerate_allocations(instance: IDDEInstance):
    """Yield every feasible :class:`AllocationProfile` (Eq. 1).

    Users with no covering server stay unallocated; all others take every
    covering ``(server, channel)`` combination.  Guarded by total space
    size ``≤ 300_000``.
    """
    scenario = instance.scenario
    options: list[list[tuple[int, int]]] = []
    for j in range(scenario.n_users):
        cands: list[tuple[int, int]] = []
        for i in scenario.covering_servers[j]:
            for x in range(int(scenario.channels[i])):
                cands.append((int(i), x))
        options.append(cands if cands else [(UNALLOCATED, UNALLOCATED)])
    space = 1
    for cands in options:
        space *= len(cands)
        if space > _MAX_ALLOC_SPACE:
            raise SolverError(
                f"enumerate_allocations is exponential; space exceeds {_MAX_ALLOC_SPACE}"
            )
    for combo in itertools.product(*options):
        server = np.array([c[0] for c in combo], dtype=np.int64)
        channel = np.array([c[1] for c in combo], dtype=np.int64)
        yield AllocationProfile(server, channel)


def optimal_allocation(instance: IDDEInstance) -> tuple[AllocationProfile, float]:
    """Exhaustively find the welfare-optimal allocation (max ``R_avg``)."""
    best_profile: AllocationProfile | None = None
    best_rate = -1.0
    for profile in enumerate_allocations(instance):
        rate = average_data_rate(instance, profile)
        if rate > best_rate + 1e-15:
            best_rate = rate
            best_profile = profile
    if best_profile is None:
        raise SolverError("no feasible allocation found")
    return best_profile, best_rate
