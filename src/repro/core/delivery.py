"""Phase 2 of IDDE-G: greedy data delivery (Algorithm 1, lines 22–26).

Each iteration places the replica ``σ_{i,k}`` with the highest ratio of
total latency reduction over consumed storage (Eq. 17), subject to the
per-server storage constraint (Eq. 6), stopping when no feasible placement
still reduces latency.

The marginal-gain evaluation runs entirely in *server space*: because the
retrieval latency of a (user, item) pair depends only on the user's attached
server, per-item request counts are aggregated per attached server once, and
each candidate's gain is a relu-ed ``(N × N) @ (N,)`` product — ``O(N²K)``
per iteration, independent of M.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import DeliveryConfig
from ..obs.tracer import Tracer, ensure_tracer
from .instance import IDDEInstance
from .profiles import UNALLOCATED, AllocationProfile, DeliveryProfile

__all__ = ["greedy_delivery", "DeliveryResult", "attached_request_counts"]


@dataclass
class DeliveryResult:
    """Outcome of the Phase 2 greedy placement.

    ``iterations`` counts *productive* loop iterations only — the terminal
    sweep that places nothing is excluded, so ``iterations ==
    len(placements)``.
    """

    profile: DeliveryProfile
    placements: list[tuple[int, int]] = field(default_factory=list)
    total_gain_s: float = 0.0
    iterations: int = 0
    wall_time_s: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeliveryResult(replicas={self.profile.n_replicas}, "
            f"gain={self.total_gain_s:.4f}s, iters={self.iterations})"
        )


def attached_request_counts(
    instance: IDDEInstance, alloc: AllocationProfile
) -> np.ndarray:
    """``(K, N)`` count of requests for item ``k`` by users attached to
    server ``i``.  Unallocated users are excluded (replicas cannot help
    them; they always fetch from the cloud)."""
    n, k = instance.n_servers, instance.n_data
    counts = np.zeros((k, n), dtype=np.int64)
    attached = alloc.server
    mask = attached != UNALLOCATED
    if mask.any():
        zeta = instance.scenario.requests[mask]  # (Ma, K)
        servers = attached[mask]
        np.add.at(counts.T, (servers,), zeta)
    return counts


def greedy_delivery(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    cfg: DeliveryConfig | None = None,
    *,
    weights: np.ndarray | None = None,
    tracer: Tracer | None = None,
) -> DeliveryResult:
    """Run Algorithm 1's Phase 2 and return the delivery profile.

    Parameters
    ----------
    instance, alloc:
        The problem and the Phase 1 allocation it conditions on.
    cfg:
        ``ratio_rule=True`` applies Eq. (17) (gain per MB, thresholded by
        ``min_gain_s_per_mb``); ``False`` selects by absolute gain in
        seconds (the ablation A1 variant, thresholded by ``min_gain_s``).
    weights:
        Optional ``(K, N)`` demand weights replacing the true attached
        request counts — used by baselines that work from aggregate
        popularity statistics instead of the real attachment (CDP).
    tracer:
        Optional IDDE-Trace tracer recording each accepted placement and
        the terminal sweep's threshold rejections; defaults to the no-op.
    """
    cfg = cfg or DeliveryConfig()
    tracer = ensure_tracer(tracer)
    t0 = time.perf_counter()
    n, k = instance.n_servers, instance.n_data
    sizes = instance.scenario.sizes
    pc = instance.latency_model.path_cost  # (N, N) seconds/MB, cloud-capped
    cloud = instance.latency_model.cloud_cost

    if weights is None:
        counts = attached_request_counts(instance, alloc).astype(float)  # (K, N)
    else:
        counts = np.asarray(weights, dtype=float)
        if counts.shape != (k, n):
            raise ValueError(f"weights must be (K, N) = {(k, n)}, got {counts.shape}")
    # best[k, i]: current cheapest retrieval (seconds) for item k at server i.
    best = np.tile(cloud * sizes[:, None], (1, n))
    residual = instance.scenario.storage.astype(float).copy()
    placed = np.zeros((n, k), dtype=bool)

    placements: list[tuple[int, int]] = []
    total_gain = 0.0
    iterations = 0
    # The two selection rules score in different units — seconds saved per
    # MB of storage under Eq. (17), plain seconds under the A1 ablation —
    # so each has its own explicitly-suffixed stopping threshold.
    stop_threshold = cfg.min_gain_s_per_mb if cfg.ratio_rule else cfg.min_gain_s

    with tracer.span(
        "delivery.greedy", servers=n, items=k, ratio_rule=cfg.ratio_rule
    ) as span:
        while True:
            best_score = stop_threshold
            best_pick: tuple[int, int] | None = None
            best_pick_gain = 0.0
            sweep_rejects = 0
            for kk in range(k):
                s_k = sizes[kk]
                feasible = (~placed[:, kk]) & (residual >= s_k)
                if not feasible.any():
                    continue
                # gain[i] = Σ_{i'} counts[kk, i'] · relu(best[kk, i'] − s_k·pc[i, i'])
                improvement = np.maximum(best[kk][None, :] - s_k * pc, 0.0)
                gains = improvement @ counts[kk]
                gains[~feasible] = -1.0
                scores = gains / s_k if cfg.ratio_rule else gains
                i = int(np.argmax(scores))
                if gains[i] > 0.0 and scores[i] > best_score:
                    best_score = float(scores[i])
                    best_pick = (i, kk)
                    best_pick_gain = float(gains[i])
                if tracer.enabled:
                    # Positive-gain candidates killed by the stopping
                    # threshold (not merely outscored within the sweep) —
                    # all of them, not just the item's argmax server.
                    # Infeasible servers carry gain = -1, so positivity
                    # implies feasibility.
                    sweep_rejects += int(
                        np.count_nonzero((gains > 0.0) & (scores <= stop_threshold))
                    )
            if best_pick is None:
                if tracer.enabled:
                    tracer.event(
                        "delivery.stop", rejected=sweep_rejects, iterations=iterations
                    )
                    tracer.count("delivery.threshold_rejects", sweep_rejects)
                break
            # Only productive iterations count: the terminal sweep that finds
            # nothing to place is not an iteration of Algorithm 1's loop, so
            # ``iterations == len(placements)`` always holds.
            iterations += 1
            i, kk = best_pick
            placed[i, kk] = True
            residual[i] -= sizes[kk]
            best[kk] = np.minimum(best[kk], sizes[kk] * pc[i, :])
            placements.append((i, kk))
            total_gain += best_pick_gain
            if tracer.enabled:
                tracer.event(
                    "delivery.place",
                    server=i,
                    item=kk,
                    gain_s=best_pick_gain,
                    score=best_score,
                )
                tracer.count("delivery.placements")
        span.set(placements=len(placements), total_gain_s=total_gain)

    return DeliveryResult(
        profile=DeliveryProfile(placed),
        placements=placements,
        total_gain_s=total_gain,
        iterations=iterations,
        wall_time_s=time.perf_counter() - t0,
    )
