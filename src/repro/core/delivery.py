"""Phase 2 of IDDE-G: greedy data delivery (Algorithm 1, lines 22–26).

Each iteration places the replica ``σ_{i,k}`` with the highest ratio of
total latency reduction over consumed storage (Eq. 17), subject to the
per-server storage constraint (Eq. 6), stopping when no feasible placement
still reduces latency.

The marginal-gain evaluation runs entirely in *server space*: because the
retrieval latency of a (user, item) pair depends only on the user's attached
server, per-item request counts are aggregated per attached server once, and
each candidate's gain is a relu-ed ``(N × N) @ (N,)`` product — ``O(N²K)``
per iteration, independent of M.

Two kernels implement the loop (``DeliveryConfig.kernel``):

``"reference"``
    The literal transcription above: every iteration re-sweeps all K items
    in Python and rebuilds each item's gain vector from scratch.
``"batched"``
    Builds the full ``(K, N)`` gain table up front (tiled over K-blocks so
    the ``(B, N, N)`` improvement tensor stays memory-bounded) and then
    maintains it *incrementally*: placing ``(i, k)`` changes only
    ``best[k]`` — so only row ``k`` is recomputed (``O(N²)``) — and server
    ``i``'s residual — so only column ``i`` of the feasibility mask is
    re-derived (``O(K)``).  Per-iteration cost drops by ~K× with no
    approximation: the pair is bit-for-bit identical, including argmax
    tie-breaks and the tracer's threshold-reject counts (see
    ``repro.bench.delivery_parity``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import DeliveryConfig
from ..obs.tracer import Tracer, ensure_tracer
from .instance import IDDEInstance
from .profiles import UNALLOCATED, AllocationProfile, DeliveryProfile

__all__ = ["greedy_delivery", "DeliveryResult", "attached_request_counts"]


@dataclass
class DeliveryResult:
    """Outcome of the Phase 2 greedy placement.

    ``iterations`` counts *productive* loop iterations only — the terminal
    sweep that places nothing is excluded, so ``iterations ==
    len(placements)``.
    """

    profile: DeliveryProfile
    placements: list[tuple[int, int]] = field(default_factory=list)
    total_gain_s: float = 0.0
    iterations: int = 0
    wall_time_s: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeliveryResult(replicas={self.profile.n_replicas}, "
            f"gain={self.total_gain_s:.4f}s, iters={self.iterations})"
        )


def attached_request_counts(
    instance: IDDEInstance, alloc: AllocationProfile
) -> np.ndarray:
    """``(K, N)`` float64 count of requests for item ``k`` by users attached
    to server ``i`` (whole numbers; float64 so callers feed it straight into
    the gain matvecs without a per-solve ``(K, N)`` cast).  Unallocated
    users are excluded (replicas cannot help them; they always fetch from
    the cloud)."""
    n, k = instance.n_servers, instance.n_data
    counts = np.zeros((k, n), dtype=np.float64)
    attached = alloc.server
    mask = attached != UNALLOCATED
    if mask.any():
        zeta = instance.scenario.requests[mask]  # (Ma, K)
        servers = attached[mask]
        np.add.at(counts.T, (servers,), zeta)
    return counts


#: Peak size in bytes of one ``(B, N, N)`` improvement-tensor tile in the
#: batched kernel's initial table build; the block height B is derived from
#: it, so metro-scale instances never materialise the full K·N² tensor.
_GAIN_TILE_BYTES = 32 << 20


class _GainTable:
    """The batched kernel's incrementally-maintained ``(K, N)`` gain table.

    ``gains[k, i] = Σ_{i'} counts[k, i'] · relu(best[k, i'] − sizes[k]·pc[i, i'])``

    Incremental-update invariant (the whole correctness argument of the
    batched kernel): a row depends only on ``best[k]``, ``sizes[k]``,
    ``pc`` and ``counts[k]`` — never on ``placed`` or ``residual``, which
    enter the selection through the feasibility mask alone.  Placing
    ``(i, k)`` mutates only ``best[k]``, so :meth:`refresh_row` on that one
    row restores the table to exactly what a from-scratch rebuild would
    produce, bit for bit.

    Bitwise parity with the reference sweep holds because both paths run
    the identical BLAS matvec per item: the tiled build uses a stacked
    3-D ``np.matmul`` (one gemv per block slice) and the row refresh is
    the reference expression verbatim.  A plain ``np.einsum`` contraction
    is *not* used — its sum order differs from gemv at the last ulp, which
    would flip argmax tie-breaks.
    """

    def __init__(
        self,
        best: np.ndarray,
        sizes: np.ndarray,
        pc: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        self._best = best
        self._sizes = sizes
        self._pc = pc
        self._counts = counts
        k, n = best.shape
        self.gains = np.empty((k, n))
        block = max(1, _GAIN_TILE_BYTES // max(n * n * 8, 1))
        for lo in range(0, k, block):
            blk = slice(lo, min(lo + block, k))
            imp = best[blk, None, :] - sizes[blk, None, None] * pc[None, :, :]
            np.maximum(imp, 0.0, out=imp)
            self.gains[blk] = np.matmul(imp, counts[blk, :, None])[..., 0]

    def refresh_row(self, kk: int) -> None:
        """Recompute row ``kk`` after a placement changed ``best[kk]`` — O(N²)."""
        improvement = np.maximum(
            self._best[kk][None, :] - self._sizes[kk] * self._pc, 0.0
        )
        self.gains[kk] = improvement @ self._counts[kk]


def _run_reference(
    cfg: DeliveryConfig,
    tracer: Tracer,
    sizes: np.ndarray,
    pc: np.ndarray,
    counts: np.ndarray,
    best: np.ndarray,
    residual: np.ndarray,
    placed: np.ndarray,
    stop_threshold: float,
) -> tuple[list[tuple[int, int]], float]:
    """The literal Algorithm 1 loop: full K-item Python sweep per iteration."""
    k = best.shape[0]
    placements: list[tuple[int, int]] = []
    total_gain = 0.0
    while True:
        best_score = stop_threshold
        best_pick: tuple[int, int] | None = None
        best_pick_gain = 0.0
        sweep_rejects = 0
        for kk in range(k):
            s_k = sizes[kk]
            feasible = (~placed[:, kk]) & (residual >= s_k)
            if not feasible.any():
                continue
            # gain[i] = Σ_{i'} counts[kk, i'] · relu(best[kk, i'] − s_k·pc[i, i'])
            improvement = np.maximum(best[kk][None, :] - s_k * pc, 0.0)
            gains = improvement @ counts[kk]
            gains[~feasible] = -1.0
            scores = gains / s_k if cfg.ratio_rule else gains
            i = int(np.argmax(scores))
            if gains[i] > 0.0 and scores[i] > best_score:
                best_score = float(scores[i])
                best_pick = (i, kk)
                best_pick_gain = float(gains[i])
            if tracer.enabled:
                # Positive-gain candidates killed by the stopping
                # threshold (not merely outscored within the sweep) —
                # all of them, not just the item's argmax server.
                # Infeasible servers carry gain = -1, so positivity
                # implies feasibility.
                sweep_rejects += int(
                    np.count_nonzero((gains > 0.0) & (scores <= stop_threshold))
                )
        if best_pick is None:
            if tracer.enabled:
                tracer.event(
                    "delivery.stop", rejected=sweep_rejects, iterations=len(placements)
                )
                tracer.count("delivery.threshold_rejects", sweep_rejects)
            break
        i, kk = best_pick
        placed[i, kk] = True
        residual[i] -= sizes[kk]
        best[kk] = np.minimum(best[kk], sizes[kk] * pc[i, :])
        placements.append((i, kk))
        total_gain += best_pick_gain
        if tracer.enabled:
            tracer.event(
                "delivery.place",
                server=i,
                item=kk,
                gain_s=best_pick_gain,
                score=best_score,
            )
            tracer.count("delivery.placements")
    return placements, total_gain


def _run_batched(
    cfg: DeliveryConfig,
    tracer: Tracer,
    sizes: np.ndarray,
    pc: np.ndarray,
    counts: np.ndarray,
    best: np.ndarray,
    residual: np.ndarray,
    placed: np.ndarray,
    stop_threshold: float,
) -> tuple[list[tuple[int, int]], float]:
    """Incremental table-driven loop, bit-identical to :func:`_run_reference`.

    Selection semantics replicated exactly: within an item, infeasible
    servers score ``-1`` so ``np.argmax`` picks the lowest-index winner on
    ties; across items, the reference's strict-``>`` scan keeps the *first*
    item attaining the maximum score, which is what row-major ``np.argmax``
    over the per-item winners returns.
    """
    k = best.shape[0]
    table = _GainTable(best, sizes, pc, counts)
    # feasible[k, i]: server i can still take item k (not placed, fits).
    feasible = (~placed.T) & (residual[None, :] >= sizes[:, None])
    rows = np.arange(k)
    placements: list[tuple[int, int]] = []
    total_gain = 0.0
    while True:
        # Masked (K, N) score table — items whose every server is
        # infeasible become all -1 rows, excluded exactly like the
        # reference's empty-feasibility ``continue``.
        eff = np.where(feasible, table.gains, -1.0)
        scores = eff / sizes[:, None] if cfg.ratio_rule else eff
        srv = np.argmax(scores, axis=1)
        top_gain = eff[rows, srv]
        top_score = scores[rows, srv]
        valid = (top_gain > 0.0) & (top_score > stop_threshold)
        if tracer.enabled:
            sweep_rejects = int(
                np.count_nonzero((eff > 0.0) & (scores <= stop_threshold))
            )
        if not valid.any():
            if tracer.enabled:
                tracer.event(
                    "delivery.stop", rejected=sweep_rejects, iterations=len(placements)
                )
                tracer.count("delivery.threshold_rejects", sweep_rejects)
            break
        kk = int(np.argmax(np.where(valid, top_score, -np.inf)))
        i = int(srv[kk])
        best_pick_gain = float(top_gain[kk])
        best_score = float(top_score[kk])
        placed[i, kk] = True
        residual[i] -= sizes[kk]
        best[kk] = np.minimum(best[kk], sizes[kk] * pc[i, :])
        placements.append((i, kk))
        total_gain += best_pick_gain
        # Incremental maintenance: the placement touched best[kk] (one row
        # of gains) and residual[i] (one column of feasibility) — nothing
        # else in the table moved.
        table.refresh_row(kk)
        feasible[:, i] = (~placed[i, :]) & (residual[i] >= sizes)
        if tracer.enabled:
            tracer.event(
                "delivery.place",
                server=i,
                item=kk,
                gain_s=best_pick_gain,
                score=best_score,
            )
            tracer.count("delivery.placements")
    return placements, total_gain


def greedy_delivery(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    cfg: DeliveryConfig | None = None,
    *,
    weights: np.ndarray | None = None,
    tracer: Tracer | None = None,
) -> DeliveryResult:
    """Run Algorithm 1's Phase 2 and return the delivery profile.

    Parameters
    ----------
    instance, alloc:
        The problem and the Phase 1 allocation it conditions on.
    cfg:
        ``ratio_rule=True`` applies Eq. (17) (gain per MB, thresholded by
        ``min_gain_s_per_mb``); ``False`` selects by absolute gain in
        seconds (the ablation A1 variant, thresholded by ``min_gain_s``).
        ``kernel`` picks the loop implementation (``"reference"`` or the
        incremental ``"batched"`` — a bit-for-bit verified pair).
    weights:
        Optional ``(K, N)`` demand weights replacing the true attached
        request counts — used by baselines that work from aggregate
        popularity statistics instead of the real attachment (CDP).
    tracer:
        Optional IDDE-Trace tracer recording each accepted placement and
        the terminal sweep's threshold rejections; defaults to the no-op.
    """
    cfg = cfg or DeliveryConfig()
    tracer = ensure_tracer(tracer)
    t0 = time.perf_counter()
    n, k = instance.n_servers, instance.n_data
    sizes = instance.scenario.sizes
    pc = instance.latency_model.path_cost  # (N, N) seconds/MB, cloud-capped
    cloud = instance.latency_model.cloud_cost

    if weights is None:
        counts = attached_request_counts(instance, alloc)  # (K, N) float64
    else:
        counts = np.asarray(weights, dtype=float)
        if counts.shape != (k, n):
            raise ValueError(f"weights must be (K, N) = {(k, n)}, got {counts.shape}")
    # best[k, i]: current cheapest retrieval (seconds) for item k at server i.
    best = np.tile(cloud * sizes[:, None], (1, n))
    residual = instance.scenario.storage.astype(float).copy()
    placed = np.zeros((n, k), dtype=bool)

    # The two selection rules score in different units — seconds saved per
    # MB of storage under Eq. (17), plain seconds under the A1 ablation —
    # so each has its own explicitly-suffixed stopping threshold.
    stop_threshold = cfg.min_gain_s_per_mb if cfg.ratio_rule else cfg.min_gain_s
    run = _run_batched if cfg.kernel == "batched" else _run_reference

    with tracer.span(
        "delivery.greedy",
        servers=n,
        items=k,
        ratio_rule=cfg.ratio_rule,
        kernel=cfg.kernel,
    ) as span:
        placements, total_gain = run(
            cfg, tracer, sizes, pc, counts, best, residual, placed, stop_threshold
        )
        span.set(placements=len(placements), total_gain_s=total_gain)

    return DeliveryResult(
        profile=DeliveryProfile(placed),
        placements=placements,
        total_gain_s=total_gain,
        # Only productive iterations count: the terminal sweep that finds
        # nothing to place is not an iteration of Algorithm 1's loop.
        iterations=len(placements),
        wall_time_s=time.perf_counter() - t0,
    )
