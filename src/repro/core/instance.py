"""The bound IDDE problem instance.

An :class:`IDDEInstance` couples a :class:`~repro.types.Scenario` with an
:class:`~repro.topology.EdgeTopology` and a :class:`~repro.config.RadioConfig`
and owns the derived structure every solver needs: the gain matrix (via a
fresh :class:`~repro.radio.SinrEngine` per solver), the delivery latency
model, and the request aggregation used by the latency objective.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..config import RadioConfig, ScenarioConfig, TopologyConfig, WorkloadConfig
from ..datasets.eua import EuaPool, sample_scenario, synthetic_eua
from ..errors import ScenarioError
from ..radio.sinr import SinrEngine
from ..rng import ensure_rng, spawn_rng
from ..topology.graph import EdgeTopology, build_topology
from ..topology.latency import DeliveryLatencyModel
from ..types import Scenario

__all__ = ["IDDEInstance"]


class IDDEInstance:
    """One concrete IDDE problem: entities + network + radio environment."""

    def __init__(
        self,
        scenario: Scenario,
        topology: EdgeTopology,
        radio: RadioConfig | None = None,
        *,
        gain_override: np.ndarray | None = None,
    ) -> None:
        if topology.n != scenario.n_servers:
            raise ScenarioError(
                f"topology has {topology.n} servers but scenario has {scenario.n_servers}"
            )
        self.scenario = scenario
        self.topology = topology
        self.radio = radio or RadioConfig()
        #: Optional (N, M) gain-matrix override (e.g. a shadowed model from
        #: :mod:`repro.radio.fading`) applied to every engine this instance
        #: creates — every solver then sees the same radio environment.
        self.gain_override = gain_override

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        n: int = 30,
        m: int = 200,
        k: int = 5,
        density: float = 1.0,
        seed: int = 0,
        *,
        pool: EuaPool | None = None,
        config: ScenarioConfig | None = None,
    ) -> "IDDEInstance":
        """Generate a full instance per the paper's Section 4.2/4.3 recipe.

        Deterministic in ``seed``.  The EUA-style pool is itself seeded from
        ``seed`` unless an explicit ``pool`` is supplied (experiment sweeps
        share one pool across trials, as the paper shares the EUA extract).
        """
        config = config or ScenarioConfig()
        if pool is None:
            pool = synthetic_eua(seed)
        scenario = sample_scenario(
            pool,
            n,
            m,
            k,
            spawn_rng(seed, "scenario"),
            workload=config.workload,
            radio=config.radio,
        )
        topology = build_topology(
            n, density, spawn_rng(seed, "topology"), config.topology
        )
        return cls(scenario, topology, config.radio)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @cached_property
    def latency_model(self) -> DeliveryLatencyModel:
        return DeliveryLatencyModel(self.topology)

    def new_engine(self) -> SinrEngine:
        """A fresh all-unallocated SINR engine over this instance."""
        return SinrEngine(self.scenario, self.radio, gain=self.gain_override)

    @cached_property
    def requests_per_item(self) -> np.ndarray:
        """``(K,)`` number of requests per data item (column sums of ζ)."""
        out = self.scenario.requests.sum(axis=0).astype(np.int64)
        out.setflags(write=False)
        return out

    @property
    def n_servers(self) -> int:
        return self.scenario.n_servers

    @property
    def n_users(self) -> int:
        return self.scenario.n_users

    @property
    def n_data(self) -> int:
        return self.scenario.n_data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IDDEInstance(N={self.n_servers}, M={self.n_users}, K={self.n_data}, "
            f"links={self.topology.n_links})"
        )
