"""Phase 1 of IDDE-G: the IDDE-U user-allocation game (Algorithm 1, lines
5–21).

The game starts from the all-unallocated profile and iterates best-response
updates driven by the benefit function of Eq. (12) until no user can improve
— a Nash equilibrium of the potential game (Theorem 3), reached in finitely
many iterations (Theorem 4).

Three update schedules are provided (:class:`~repro.config.GameConfig`):

``"best-gain-winner"``
    The literal Algorithm 1 loop: every user submits its best response as
    an update candidate and the single user with the largest benefit gain
    "wins" the round and applies its move.
``"random-winner"``
    A uniformly random improving user moves each round (the classic
    asynchronous better-response dynamic used to argue decentralised
    enforceability in the paper).
``"round-robin"``
    Users are swept in index order, each applying its best response
    immediately; a sweep with no move terminates.  This is the fastest
    schedule in practice and the package default.

All schedules converge to the same *kind* of profile (a pure Nash
equilibrium certified by :meth:`IddeUGame.is_nash`), though not necessarily
the same equilibrium.  On rare instances heterogeneous gains make the game
only approximately potential and the dynamics cycle; the run then escalates
the improvement threshold until the cycle dies (see
:class:`~repro.config.GameConfig`) and the certificate is an ε-Nash at
``GameResult.effective_epsilon`` — a ``converged=True`` result is never
returned without a certificate that holds.

Each schedule runs on one of two interchangeable evaluation kernels
(:class:`~repro.config.GameConfig` ``kernel``): the per-user ``"reference"``
loop, or the ``"batched"`` kernel that evaluates every user's candidate grid
in one einsum pass per round via
:meth:`~repro.radio.sinr.SinrEngine.batch_best_responses`.  The pair is
verified bit-for-bit — identical move sequences (``GameResult.move_log``),
identical equilibria, identical certificates — by ``repro.bench.parity`` and
``tests/core/test_game_kernels.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import GameConfig
from ..errors import ConvergenceError
from ..logging_util import get_logger
from ..obs.tracer import Tracer, ensure_tracer
from ..radio.sinr import UNALLOCATED, BatchBestResponse, SinrEngine
from ..rng import ensure_rng
from .instance import IDDEInstance
from .profiles import AllocationProfile

_log = get_logger("core.game")

__all__ = ["IddeUGame", "GameResult", "BestResponse"]


@dataclass(frozen=True)
class BestResponse:
    """One user's best candidate move and the gain it would realise."""

    user: int
    server: int
    channel: int
    benefit: float
    current_benefit: float

    @property
    def gain(self) -> float:
        return self.benefit - self.current_benefit


@dataclass
class GameResult:
    """Outcome of one IDDE-U run.

    ``effective_epsilon`` is the improvement threshold in force when the
    dynamics stopped; it equals the configured epsilon unless cycling
    forced an escalation (see :class:`~repro.config.GameConfig`), in which
    case the certificate is for an ε-Nash equilibrium at that tolerance.
    """

    profile: AllocationProfile
    rounds: int
    moves: int
    converged: bool
    is_nash: bool
    wall_time_s: float
    effective_epsilon: float = 0.0
    potential_trace: list[float] = field(default_factory=list)
    #: Every applied move in order, as ``(user, server, channel)`` — the
    #: observable the reference/batched kernel-parity harness compares.
    move_log: list[tuple[int, int, int]] = field(default_factory=list)
    #: Users whose per-run move budget (``max_moves_per_user``) was spent
    #: when the dynamics stopped — the players a quiescent sweep had to
    #: re-check before certifying (empty on a clean convergence).
    capped_users: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GameResult(rounds={self.rounds}, moves={self.moves}, "
            f"nash={self.is_nash}, t={self.wall_time_s:.3f}s)"
        )


class IddeUGame:
    """Best-response dynamics over a shared :class:`SinrEngine`."""

    def __init__(
        self,
        instance: IDDEInstance,
        cfg: GameConfig | None = None,
        *,
        track_potential: bool = False,
        tracer: Tracer | None = None,
    ) -> None:
        self.instance = instance
        self.cfg = cfg or GameConfig()
        self.track_potential = track_potential
        self.tracer = ensure_tracer(tracer)

    #: Participant mask for the current run (None = everyone plays).
    _active: np.ndarray | None = None

    def _players(self) -> np.ndarray:
        if self._active is None:
            return np.arange(self.instance.n_users)
        return np.flatnonzero(self._active)

    # ------------------------------------------------------------------
    # single-user best response
    # ------------------------------------------------------------------
    def best_response(self, engine: SinrEngine, j: int) -> BestResponse | None:
        """The benefit-maximising move for user ``j``, or ``None`` when the
        user has no covering server (it must stay at ``α_j = (0,0)``)."""
        view = engine.candidates(j)
        if view.servers.size == 0:
            return None
        server, channel, benefit = view.best("benefit")
        return BestResponse(
            user=j,
            server=server,
            channel=channel,
            benefit=benefit,
            current_benefit=engine.user_benefit(j),
        )

    def _improves(
        self, br: BestResponse | None, engine: SinrEngine, epsilon: float
    ) -> bool:
        if br is None:
            return False
        if engine.alloc_server[br.user] == UNALLOCATED:
            # Any positive benefit beats the unallocated state.
            return br.benefit > 0.0
        threshold = br.current_benefit * (1.0 + epsilon) + epsilon * 1e-30
        if (
            br.server == engine.alloc_server[br.user]
            and br.channel == engine.alloc_channel[br.user]
        ):
            return False
        return br.benefit > threshold

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator | int | None = None,
        *,
        initial: AllocationProfile | None = None,
        active: np.ndarray | None = None,
    ) -> GameResult:
        """Play the game to a Nash equilibrium.

        Parameters
        ----------
        rng:
            Only consulted by the ``"random-winner"`` schedule.
        initial:
            Optional warm-start profile; defaults to all-unallocated as in
            Algorithm 1 line 2.
        active:
            Optional boolean ``(M,)`` participant mask (used by the churn
            extension): inactive users never move and never allocate —
            they behave exactly like the paper's ``α_j = (0,0)`` users.
            A warm-start profile may not allocate inactive users.
        """
        engine = self.instance.new_engine()
        engine.set_tracer(self.tracer)
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if active.shape != (self.instance.n_users,):
                raise ConvergenceError(
                    f"active mask shape {active.shape} mismatches "
                    f"{self.instance.n_users} users"
                )
        # The mask must be cleared on *every* exit path — a raise during
        # warm-start validation or the dynamics must not poison the next
        # run()/is_nash() on this instance — so the whole body is guarded.
        self._active = active
        try:
            if initial is not None:
                initial.validate(self.instance.scenario)
                if active is not None and bool((initial.allocated & ~active).any()):
                    raise ConvergenceError(
                        "warm-start profile allocates inactive users"
                    )
                engine.load_profile(initial.server, initial.channel)
            rng = ensure_rng(rng)
            t0 = time.perf_counter()
            trace: list[float] = []
            log: list[tuple[int, int, int]] = []
            if self.track_potential:
                from .potential import interference_potential

                trace.append(interference_potential(engine))

            schedule = self.cfg.schedule
            batched = self.cfg.kernel == "batched"
            with self.tracer.span(
                "game.run",
                schedule=schedule,
                kernel=self.cfg.kernel,
                users=self.instance.n_users,
                warm_start=initial is not None,
            ) as span:
                if schedule == "round-robin":
                    sweep = (
                        self._run_round_robin_batched if batched else self._run_round_robin
                    )
                    rounds, moves, converged, eps, moves_of = sweep(engine, trace, log)
                else:
                    best_gain = schedule == "best-gain-winner"
                    winner = self._run_winner_batched if batched else self._run_winner
                    rounds, moves, converged, eps, moves_of = winner(
                        engine, trace, log, rng, best_gain=best_gain
                    )

                profile = AllocationProfile(engine.alloc_server, engine.alloc_channel)
                # If the dynamics truncated (max_rounds), the profile is
                # returned without a certificate: callers doing sweeps prefer
                # degraded output over an exception.
                nash = self.is_nash(profile, tol=eps) if converged else False
                capped = [
                    int(j)
                    for j in np.flatnonzero(moves_of >= self.cfg.max_moves_per_user)
                ]
                span.set(
                    rounds=rounds,
                    moves=moves,
                    converged=converged,
                    is_nash=nash,
                    effective_epsilon=eps,
                    capped_users=len(capped),
                )
        finally:
            self._active = None
        return GameResult(
            profile=profile,
            rounds=rounds,
            moves=moves,
            converged=converged,
            is_nash=nash,
            wall_time_s=time.perf_counter() - t0,
            effective_epsilon=eps,
            potential_trace=trace,
            move_log=log,
            capped_users=capped,
        )

    def _apply(
        self,
        engine: SinrEngine,
        br: BestResponse,
        trace: list[float],
        log: list[tuple[int, int, int]],
    ) -> None:
        engine.move(br.user, br.server, br.channel)
        log.append((br.user, br.server, br.channel))
        if self.tracer.enabled:
            self.tracer.event(
                "game.move",
                user=br.user,
                server=br.server,
                channel=br.channel,
                gain=br.gain,
            )
            self.tracer.count("game.moves")
        if self.track_potential:
            from .potential import interference_potential

            trace.append(interference_potential(engine))

    def _unfreeze_capped(
        self,
        engine: SinrEngine,
        players: np.ndarray,
        moves_of: np.ndarray,
        eps: float,
    ) -> float | None:
        """Escalated epsilon if a move-capped player still improves, else None.

        A quiescent sweep certifies an equilibrium only if every player
        truly had nothing to gain — but players frozen by
        ``max_moves_per_user`` never got a turn.  If one of them still has
        an ε-improving move the dynamics were cycling, so instead of
        returning a false certificate the threshold escalates (past
        ``epsilon_max``, which bounds only the patience-driven escalation)
        and every move budget is refreshed.  Benefit ratios are bounded, so
        the geometric escalation silences any cycle after finitely many
        refreshes and the eventual certificate is an honest ε-Nash at the
        returned tolerance.

        Shared verbatim by the reference and batched runners: the check is
        per-user (it is a rare, terminal-sweep-only path) so both kernels
        take bit-for-bit identical escalation decisions.
        """
        cap = self.cfg.max_moves_per_user
        capped = players[moves_of[players] >= cap]
        if self.tracer.enabled:
            self.tracer.count("game.quiescent_checks")
            self.tracer.count("game.quiescent_recheck_users", int(capped.size))
        for j in capped:
            j = int(j)
            if self._improves(self.best_response(engine, j), engine, eps):
                moves_of[players] = 0
                # A configured epsilon of exactly 0 must still escalate
                # off zero, hence the one-ulp floor.
                new_eps = max(
                    eps * self.cfg.epsilon_growth, float(np.finfo(np.float64).eps)
                )
                if self.tracer.enabled:
                    self.tracer.event(
                        "game.epsilon_escalation",
                        reason="move-cap",
                        epsilon=new_eps,
                        capped=int(capped.size),
                    )
                    self.tracer.count("game.escalations")
                return new_eps
        return None

    def _escalate_patience(self, eps: float, moves: int, label: str) -> float:
        """Patience-driven epsilon escalation, shared by all four runners."""
        new_eps = min(eps * self.cfg.epsilon_growth, self.cfg.epsilon_max)
        _log.debug(
            "%s cycling: escalated epsilon to %.1e after %d moves",
            label,
            new_eps,
            moves,
        )
        if self.tracer.enabled:
            self.tracer.event(
                "game.epsilon_escalation", reason="patience", epsilon=new_eps, moves=moves
            )
            self.tracer.count("game.escalations")
        return new_eps

    def _run_round_robin(
        self, engine: SinrEngine, trace: list[float], log: list[tuple[int, int, int]]
    ) -> tuple[int, int, bool, float, np.ndarray]:
        m = self.instance.n_users
        players = self._players()
        moves = 0
        eps = self.cfg.epsilon
        patience = self.cfg.patience_for(m)
        since_escalation = 0
        moves_of = np.zeros(m, dtype=np.int64)
        cap = self.cfg.max_moves_per_user
        for rounds in range(1, self.cfg.max_rounds + 1):
            moved = False
            for j in players:
                j = int(j)
                if moves_of[j] >= cap:
                    continue
                br = self.best_response(engine, j)
                if self._improves(br, engine, eps):
                    assert br is not None
                    self._apply(engine, br, trace, log)
                    moves += 1
                    moves_of[j] += 1
                    since_escalation += 1
                    moved = True
            if not moved:
                unfrozen = self._unfreeze_capped(engine, players, moves_of, eps)
                if unfrozen is None:
                    return rounds, moves, True, eps, moves_of
                eps = unfrozen
                since_escalation = 0
                _log.debug(
                    "capped users still deviate: escalated epsilon to %.1e "
                    "after %d moves",
                    eps,
                    moves,
                )
                continue
            if since_escalation >= patience and eps < self.cfg.epsilon_max:
                eps = self._escalate_patience(eps, moves, "round-robin")
                since_escalation = 0
        _log.info("round-robin truncated at max_rounds=%d", self.cfg.max_rounds)
        return self.cfg.max_rounds, moves, False, eps, moves_of

    def _run_round_robin_batched(
        self, engine: SinrEngine, trace: list[float], log: list[tuple[int, int, int]]
    ) -> tuple[int, int, bool, float, np.ndarray]:
        """Round-robin sweeps on the batched kernel.

        All users are evaluated in one einsum pass against the sweep-start
        state; within the sweep, a move at server ``i`` only perturbs the
        interference of users covered by ``i``, so exactly those users are
        marked stale and re-evaluated per-user at their turn.  Fresh batch
        entries and per-user fallbacks are bit-for-bit interchangeable
        (shared padded reduction), so the move sequence is identical to
        :meth:`_run_round_robin`.
        """
        m = self.instance.n_users
        players = self._players()
        coverage = self.instance.scenario.coverage
        moves = 0
        eps = self.cfg.epsilon
        patience = self.cfg.patience_for(m)
        since_escalation = 0
        moves_of = np.zeros(m, dtype=np.int64)
        cap = self.cfg.max_moves_per_user
        for rounds in range(1, self.cfg.max_rounds + 1):
            eligible = players[moves_of[players] < cap]
            batch = engine.batch_best_responses(eligible)
            stale = np.zeros(m, dtype=bool)
            moved = False
            for pos in range(eligible.shape[0]):
                j = int(eligible[pos])
                if stale[j]:
                    br = self.best_response(engine, j)
                elif batch.server[pos] == UNALLOCATED:
                    br = None
                else:
                    br = BestResponse(
                        user=j,
                        server=int(batch.server[pos]),
                        channel=int(batch.channel[pos]),
                        benefit=float(batch.benefit[pos]),
                        current_benefit=float(batch.current_benefit[pos]),
                    )
                if self._improves(br, engine, eps):
                    assert br is not None
                    old = int(engine.alloc_server[j])
                    self._apply(engine, br, trace, log)
                    moves += 1
                    moves_of[j] += 1
                    since_escalation += 1
                    moved = True
                    stale |= coverage[br.server]
                    if old != UNALLOCATED:
                        stale |= coverage[old]
            if not moved:
                unfrozen = self._unfreeze_capped(engine, players, moves_of, eps)
                if unfrozen is None:
                    return rounds, moves, True, eps, moves_of
                eps = unfrozen
                since_escalation = 0
                _log.debug(
                    "capped users still deviate: escalated epsilon to %.1e "
                    "after %d moves",
                    eps,
                    moves,
                )
                continue
            if since_escalation >= patience and eps < self.cfg.epsilon_max:
                eps = self._escalate_patience(eps, moves, "round-robin")
                since_escalation = 0
        _log.info("round-robin truncated at max_rounds=%d", self.cfg.max_rounds)
        return self.cfg.max_rounds, moves, False, eps, moves_of

    def _run_winner(
        self,
        engine: SinrEngine,
        trace: list[float],
        log: list[tuple[int, int, int]],
        rng: np.random.Generator,
        *,
        best_gain: bool,
    ) -> tuple[int, int, bool, float, np.ndarray]:
        m = self.instance.n_users
        players = self._players()
        moves = 0
        eps = self.cfg.epsilon
        patience = self.cfg.patience_for(m)
        since_escalation = 0
        moves_of = np.zeros(m, dtype=np.int64)
        cap = self.cfg.max_moves_per_user
        for rounds in range(1, self.cfg.max_rounds + 1):
            candidates: list[BestResponse] = []
            for j in players:
                j = int(j)
                if moves_of[j] >= cap:
                    continue
                br = self.best_response(engine, j)
                if self._improves(br, engine, eps):
                    assert br is not None
                    candidates.append(br)
            if not candidates:
                unfrozen = self._unfreeze_capped(engine, players, moves_of, eps)
                if unfrozen is None:
                    return rounds, moves, True, eps, moves_of
                eps = unfrozen
                since_escalation = 0
                _log.debug(
                    "capped users still deviate: escalated epsilon to %.1e "
                    "after %d moves",
                    eps,
                    moves,
                )
                continue
            if best_gain:
                winner = max(candidates, key=lambda b: (b.gain, -b.user))
            else:
                winner = candidates[int(rng.integers(0, len(candidates)))]
            self._apply(engine, winner, trace, log)
            moves += 1
            moves_of[winner.user] += 1
            since_escalation += 1
            if since_escalation >= patience and eps < self.cfg.epsilon_max:
                eps = self._escalate_patience(eps, moves, "winner schedule")
                since_escalation = 0
        _log.info("winner schedule truncated at max_rounds=%d", self.cfg.max_rounds)
        return self.cfg.max_rounds, moves, False, eps, moves_of

    def _run_winner_batched(
        self,
        engine: SinrEngine,
        trace: list[float],
        log: list[tuple[int, int, int]],
        rng: np.random.Generator,
        *,
        best_gain: bool,
    ) -> tuple[int, int, bool, float, np.ndarray]:
        """Winner schedules on the batched kernel.

        Each round evaluates every eligible user against the same fixed
        state — exactly what the per-user winner loop does — so one
        ``batch_best_responses`` pass replaces the whole candidate sweep.
        The winner choice preserves the reference tie-breaks: ``argmax``
        returns the lowest improving user among equal gains (the reference's
        ``(gain, -user)`` key), and the random winner draws the same index
        from the identical candidate list, keeping the rng stream aligned.
        """
        m = self.instance.n_users
        players = self._players()
        moves = 0
        eps = self.cfg.epsilon
        patience = self.cfg.patience_for(m)
        since_escalation = 0
        moves_of = np.zeros(m, dtype=np.int64)
        cap = self.cfg.max_moves_per_user
        for rounds in range(1, self.cfg.max_rounds + 1):
            eligible = players[moves_of[players] < cap]
            batch = engine.batch_best_responses(eligible)
            improving = self._improving_mask(engine, batch, eps)
            idx = np.flatnonzero(improving)
            if idx.size == 0:
                unfrozen = self._unfreeze_capped(engine, players, moves_of, eps)
                if unfrozen is None:
                    return rounds, moves, True, eps, moves_of
                eps = unfrozen
                since_escalation = 0
                _log.debug(
                    "capped users still deviate: escalated epsilon to %.1e "
                    "after %d moves",
                    eps,
                    moves,
                )
                continue
            if best_gain:
                gains = batch.benefit[idx] - batch.current_benefit[idx]
                pos = int(idx[int(np.argmax(gains))])
            else:
                pos = int(idx[int(rng.integers(0, idx.size))])
            winner = BestResponse(
                user=int(batch.users[pos]),
                server=int(batch.server[pos]),
                channel=int(batch.channel[pos]),
                benefit=float(batch.benefit[pos]),
                current_benefit=float(batch.current_benefit[pos]),
            )
            self._apply(engine, winner, trace, log)
            moves += 1
            moves_of[winner.user] += 1
            since_escalation += 1
            if since_escalation >= patience and eps < self.cfg.epsilon_max:
                eps = self._escalate_patience(eps, moves, "winner schedule")
                since_escalation = 0
        _log.info("winner schedule truncated at max_rounds=%d", self.cfg.max_rounds)
        return self.cfg.max_rounds, moves, False, eps, moves_of

    def _improving_mask(
        self, engine: SinrEngine, batch: BatchBestResponse, eps: float
    ) -> np.ndarray:
        """Vectorised :meth:`_improves` over a :class:`BatchBestResponse`."""
        users = batch.users
        has_candidate = batch.server != UNALLOCATED
        cur_server = engine.alloc_server[users]
        cur_channel = engine.alloc_channel[users]
        unallocated = cur_server == UNALLOCATED
        threshold = batch.current_benefit * (1.0 + eps) + eps * 1e-30
        same = (batch.server == cur_server) & (batch.channel == cur_channel)
        return has_candidate & np.where(
            unallocated,
            batch.benefit > 0.0,
            ~same & (batch.benefit > threshold),
        )

    # ------------------------------------------------------------------
    # certification
    # ------------------------------------------------------------------
    def is_nash(
        self,
        profile: AllocationProfile,
        *,
        tol: float | None = None,
        active: np.ndarray | None = None,
    ) -> bool:
        """Definition 3 certificate: no user has a profitable deviation.

        ``tol`` defaults to the configured epsilon; a deviation must beat
        the current benefit by more than ``tol`` (relative) to disprove
        equilibrium.  ``active`` restricts the player set (the churn
        extension): inactive users are not players, so their lack of an
        allocation never disproves equilibrium.
        """
        tol = self.cfg.epsilon if tol is None else tol
        engine = self.instance.new_engine()
        engine.load_profile(profile.server, profile.channel)
        if active is not None:
            players = np.flatnonzero(np.asarray(active, dtype=bool))
        else:
            players = self._players()
        if self.cfg.kernel == "batched":
            batch = engine.batch_best_responses(players)
            has_candidate = batch.server != UNALLOCATED
            unallocated = engine.alloc_server[players] == UNALLOCATED
            threshold = batch.current_benefit * (1.0 + tol) + tol * 1e-30
            deviates = has_candidate & np.where(
                unallocated, batch.benefit > 0.0, batch.benefit > threshold
            )
            return not bool(deviates.any())
        for j in players:
            j = int(j)
            br = self.best_response(engine, j)
            if br is None:
                continue
            current = engine.user_benefit(j)
            if engine.alloc_server[j] == UNALLOCATED:
                if br.benefit > 0.0:
                    return False
            elif br.benefit > current * (1.0 + tol) + tol * 1e-30:
                return False
        return True
