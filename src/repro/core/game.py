"""Phase 1 of IDDE-G: the IDDE-U user-allocation game (Algorithm 1, lines
5–21).

The game starts from the all-unallocated profile and iterates best-response
updates driven by the benefit function of Eq. (12) until no user can improve
— a Nash equilibrium of the potential game (Theorem 3), reached in finitely
many iterations (Theorem 4).

Three update schedules are provided (:class:`~repro.config.GameConfig`):

``"best-gain-winner"``
    The literal Algorithm 1 loop: every user submits its best response as
    an update candidate and the single user with the largest benefit gain
    "wins" the round and applies its move.
``"random-winner"``
    A uniformly random improving user moves each round (the classic
    asynchronous better-response dynamic used to argue decentralised
    enforceability in the paper).
``"round-robin"``
    Users are swept in index order, each applying its best response
    immediately; a sweep with no move terminates.  This is the fastest
    schedule in practice and the package default.

All schedules converge to the same *kind* of profile (a pure Nash
equilibrium certified by :meth:`IddeUGame.is_nash`), though not necessarily
the same equilibrium.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import GameConfig
from ..errors import ConvergenceError
from ..logging_util import get_logger
from ..radio.sinr import UNALLOCATED, SinrEngine
from ..rng import ensure_rng
from .instance import IDDEInstance
from .profiles import AllocationProfile

_log = get_logger("core.game")

__all__ = ["IddeUGame", "GameResult", "BestResponse"]


@dataclass(frozen=True)
class BestResponse:
    """One user's best candidate move and the gain it would realise."""

    user: int
    server: int
    channel: int
    benefit: float
    current_benefit: float

    @property
    def gain(self) -> float:
        return self.benefit - self.current_benefit


@dataclass
class GameResult:
    """Outcome of one IDDE-U run.

    ``effective_epsilon`` is the improvement threshold in force when the
    dynamics stopped; it equals the configured epsilon unless cycling
    forced an escalation (see :class:`~repro.config.GameConfig`), in which
    case the certificate is for an ε-Nash equilibrium at that tolerance.
    """

    profile: AllocationProfile
    rounds: int
    moves: int
    converged: bool
    is_nash: bool
    wall_time_s: float
    effective_epsilon: float = 0.0
    potential_trace: list[float] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GameResult(rounds={self.rounds}, moves={self.moves}, "
            f"nash={self.is_nash}, t={self.wall_time_s:.3f}s)"
        )


class IddeUGame:
    """Best-response dynamics over a shared :class:`SinrEngine`."""

    def __init__(
        self,
        instance: IDDEInstance,
        cfg: GameConfig | None = None,
        *,
        track_potential: bool = False,
    ) -> None:
        self.instance = instance
        self.cfg = cfg or GameConfig()
        self.track_potential = track_potential

    #: Participant mask for the current run (None = everyone plays).
    _active: np.ndarray | None = None

    def _players(self) -> np.ndarray:
        if self._active is None:
            return np.arange(self.instance.n_users)
        return np.flatnonzero(self._active)

    # ------------------------------------------------------------------
    # single-user best response
    # ------------------------------------------------------------------
    def best_response(self, engine: SinrEngine, j: int) -> BestResponse | None:
        """The benefit-maximising move for user ``j``, or ``None`` when the
        user has no covering server (it must stay at ``α_j = (0,0)``)."""
        view = engine.candidates(j)
        if view.servers.size == 0:
            return None
        server, channel, benefit = view.best("benefit")
        return BestResponse(
            user=j,
            server=server,
            channel=channel,
            benefit=benefit,
            current_benefit=engine.user_benefit(j),
        )

    def _improves(
        self, br: BestResponse | None, engine: SinrEngine, epsilon: float
    ) -> bool:
        if br is None:
            return False
        if engine.alloc_server[br.user] == UNALLOCATED:
            # Any positive benefit beats the unallocated state.
            return br.benefit > 0.0
        threshold = br.current_benefit * (1.0 + epsilon) + epsilon * 1e-30
        if (
            br.server == engine.alloc_server[br.user]
            and br.channel == engine.alloc_channel[br.user]
        ):
            return False
        return br.benefit > threshold

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator | int | None = None,
        *,
        initial: AllocationProfile | None = None,
        active: np.ndarray | None = None,
    ) -> GameResult:
        """Play the game to a Nash equilibrium.

        Parameters
        ----------
        rng:
            Only consulted by the ``"random-winner"`` schedule.
        initial:
            Optional warm-start profile; defaults to all-unallocated as in
            Algorithm 1 line 2.
        active:
            Optional boolean ``(M,)`` participant mask (used by the churn
            extension): inactive users never move and never allocate —
            they behave exactly like the paper's ``α_j = (0,0)`` users.
            A warm-start profile may not allocate inactive users.
        """
        engine = self.instance.new_engine()
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if active.shape != (self.instance.n_users,):
                raise ConvergenceError(
                    f"active mask shape {active.shape} mismatches "
                    f"{self.instance.n_users} users"
                )
        self._active = active
        if initial is not None:
            initial.validate(self.instance.scenario)
            if active is not None and bool((initial.allocated & ~active).any()):
                raise ConvergenceError(
                    "warm-start profile allocates inactive users"
                )
            engine.load_profile(initial.server, initial.channel)
        rng = ensure_rng(rng)
        t0 = time.perf_counter()
        trace: list[float] = []
        if self.track_potential:
            from .potential import interference_potential

            trace.append(interference_potential(engine))

        schedule = self.cfg.schedule
        if schedule == "round-robin":
            rounds, moves, converged, eps = self._run_round_robin(engine, trace)
        elif schedule == "best-gain-winner":
            rounds, moves, converged, eps = self._run_winner(
                engine, trace, rng, best_gain=True
            )
        else:  # random-winner
            rounds, moves, converged, eps = self._run_winner(
                engine, trace, rng, best_gain=False
            )

        profile = AllocationProfile(engine.alloc_server, engine.alloc_channel)
        # If the dynamics truncated (max_rounds), the profile is returned
        # without a certificate: callers doing sweeps prefer degraded
        # output over an exception.
        try:
            nash = self.is_nash(profile, tol=eps) if converged else False
        finally:
            self._active = None
        return GameResult(
            profile=profile,
            rounds=rounds,
            moves=moves,
            converged=converged,
            is_nash=nash,
            wall_time_s=time.perf_counter() - t0,
            effective_epsilon=eps,
            potential_trace=trace,
        )

    def _apply(self, engine: SinrEngine, br: BestResponse, trace: list[float]) -> None:
        engine.move(br.user, br.server, br.channel)
        if self.track_potential:
            from .potential import interference_potential

            trace.append(interference_potential(engine))

    def _run_round_robin(
        self, engine: SinrEngine, trace: list[float]
    ) -> tuple[int, int, bool, float]:
        m = self.instance.n_users
        players = self._players()
        moves = 0
        eps = self.cfg.epsilon
        patience = self.cfg.patience_for(m)
        since_escalation = 0
        moves_of = np.zeros(m, dtype=np.int64)
        cap = self.cfg.max_moves_per_user
        for rounds in range(1, self.cfg.max_rounds + 1):
            moved = False
            for j in players:
                j = int(j)
                if moves_of[j] >= cap:
                    continue
                br = self.best_response(engine, j)
                if self._improves(br, engine, eps):
                    assert br is not None
                    self._apply(engine, br, trace)
                    moves += 1
                    moves_of[j] += 1
                    since_escalation += 1
                    moved = True
            if not moved:
                return rounds, moves, True, eps
            if since_escalation >= patience and eps < self.cfg.epsilon_max:
                eps = min(eps * self.cfg.epsilon_growth, self.cfg.epsilon_max)
                since_escalation = 0
                _log.debug(
                    "round-robin cycling: escalated epsilon to %.1e after %d moves",
                    eps,
                    moves,
                )
        _log.info("round-robin truncated at max_rounds=%d", self.cfg.max_rounds)
        return self.cfg.max_rounds, moves, False, eps

    def _run_winner(
        self,
        engine: SinrEngine,
        trace: list[float],
        rng: np.random.Generator,
        *,
        best_gain: bool,
    ) -> tuple[int, int, bool, float]:
        m = self.instance.n_users
        players = self._players()
        moves = 0
        eps = self.cfg.epsilon
        patience = self.cfg.patience_for(m)
        since_escalation = 0
        moves_of = np.zeros(m, dtype=np.int64)
        cap = self.cfg.max_moves_per_user
        for rounds in range(1, self.cfg.max_rounds + 1):
            candidates: list[BestResponse] = []
            for j in players:
                j = int(j)
                if moves_of[j] >= cap:
                    continue
                br = self.best_response(engine, j)
                if self._improves(br, engine, eps):
                    assert br is not None
                    candidates.append(br)
            if not candidates:
                return rounds, moves, True, eps
            if best_gain:
                winner = max(candidates, key=lambda b: (b.gain, -b.user))
            else:
                winner = candidates[int(rng.integers(0, len(candidates)))]
            self._apply(engine, winner, trace)
            moves += 1
            moves_of[winner.user] += 1
            since_escalation += 1
            if since_escalation >= patience and eps < self.cfg.epsilon_max:
                eps = min(eps * self.cfg.epsilon_growth, self.cfg.epsilon_max)
                since_escalation = 0
                _log.debug(
                    "winner schedule cycling: escalated epsilon to %.1e after %d moves",
                    eps,
                    moves,
                )
        _log.info("winner schedule truncated at max_rounds=%d", self.cfg.max_rounds)
        return self.cfg.max_rounds, moves, False, eps

    # ------------------------------------------------------------------
    # certification
    # ------------------------------------------------------------------
    def is_nash(self, profile: AllocationProfile, *, tol: float | None = None) -> bool:
        """Definition 3 certificate: no user has a profitable deviation.

        ``tol`` defaults to the configured epsilon; a deviation must beat
        the current benefit by more than ``tol`` (relative) to disprove
        equilibrium.
        """
        tol = self.cfg.epsilon if tol is None else tol
        engine = self.instance.new_engine()
        engine.load_profile(profile.server, profile.channel)
        for j in self._players():
            j = int(j)
            br = self.best_response(engine, j)
            if br is None:
                continue
            current = engine.user_benefit(j)
            if engine.alloc_server[j] == UNALLOCATED:
                if br.benefit > 0.0:
                    return False
            elif br.benefit > current * (1.0 + tol) + tol * 1e-30:
                return False
        return True
