"""The two IDDE objectives: Eq. (5) average data rate and Eq. (9) average
data delivery latency.

The latency evaluation exploits a structural fact of the model: the latency
of user ``j`` retrieving item ``k`` depends only on the user's *attached
server* ``a_j`` and ``k`` (Eq. 8 minimises over replica origins to the
attached server).  All per-user work therefore collapses into server space:
one ``(N, K)`` table of best retrieval latencies is computed per profile and
users are a gather away.  This is also what makes the Phase 2 greedy's
marginal-gain evaluation ``O(N²K)`` instead of ``O(NMK)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import seconds_to_ms
from .instance import IDDEInstance
from .profiles import UNALLOCATED, AllocationProfile, DeliveryProfile

__all__ = [
    "retrieval_cost_table",
    "per_user_latencies",
    "average_delivery_latency_ms",
    "average_data_rate",
    "Evaluation",
    "evaluate",
]


def retrieval_cost_table(
    instance: IDDEInstance, delivery: DeliveryProfile
) -> np.ndarray:
    """``(N, K)`` seconds for a user attached to server ``i`` to retrieve
    item ``k`` under profile ``σ`` (Eq. 8, cloud included).

    Entries never exceed the cloud latency (the latency constraint).
    """
    lm = instance.latency_model
    pc = lm.path_cost  # (N, N) seconds/MB, already cloud-capped
    sizes = instance.scenario.sizes
    n, k = instance.n_servers, instance.n_data
    cost = np.empty((n, k))
    cloud = lm.cloud_cost
    for kk in range(k):
        origins = delivery.servers_holding(kk)
        if len(origins):
            per_mb = np.minimum(pc[origins, :].min(axis=0), cloud)
        else:
            per_mb = np.full(n, cloud)
        cost[:, kk] = sizes[kk] * per_mb
    return cost


def per_user_latencies(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    delivery: DeliveryProfile,
) -> np.ndarray:
    """``(M, K)`` seconds: ``L_{j,k}`` for every user and item.

    Entries for items the user does not request are still filled (they are
    masked by ``ζ`` in the averaging); unallocated users pay the cloud
    latency for everything.
    """
    table = retrieval_cost_table(instance, delivery)
    sizes = instance.scenario.sizes
    cloud = instance.latency_model.cloud_cost
    m = instance.n_users
    out = np.empty((m, instance.n_data))
    attached = alloc.server
    is_alloc = attached != UNALLOCATED
    if is_alloc.any():
        out[is_alloc] = table[attached[is_alloc]]
    if (~is_alloc).any():
        out[~is_alloc] = sizes * cloud
    return out


def average_delivery_latency_ms(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    delivery: DeliveryProfile,
) -> float:
    """Eq. (9): request-weighted mean delivery latency, in milliseconds."""
    zeta = instance.scenario.requests
    total = zeta.sum()
    if total == 0:
        return 0.0
    lat = per_user_latencies(instance, alloc, delivery)
    return seconds_to_ms(float((lat * zeta).sum() / total))


def average_data_rate(instance: IDDEInstance, alloc: AllocationProfile) -> float:
    """Eq. (5): mean data rate over all M users, in MB/s."""
    engine = instance.new_engine()
    engine.load_profile(alloc.server, alloc.channel)
    return engine.average_rate()


@dataclass(frozen=True)
class Evaluation:
    """Joint evaluation of one IDDE strategy on both objectives."""

    r_avg: float
    l_avg_ms: float
    rates: np.ndarray
    latencies_ms: np.ndarray
    allocated_users: int
    replicas: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Evaluation(R_avg={self.r_avg:.2f} MB/s, L_avg={self.l_avg_ms:.2f} ms, "
            f"allocated={self.allocated_users}, replicas={self.replicas})"
        )


def evaluate(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    delivery: DeliveryProfile,
) -> Evaluation:
    """Evaluate a full strategy: both objectives plus per-user detail."""
    engine = instance.new_engine()
    engine.load_profile(alloc.server, alloc.channel)
    rates = engine.rates()
    zeta = instance.scenario.requests
    lat = per_user_latencies(instance, alloc, delivery)
    total = zeta.sum()
    l_avg = seconds_to_ms(float((lat * zeta).sum() / total)) if total else 0.0
    per_user_ms = np.where(
        zeta.any(axis=1),
        seconds_to_ms((lat * zeta).sum(axis=1) / np.maximum(zeta.sum(axis=1), 1)),
        0.0,
    )
    return Evaluation(
        r_avg=float(rates.mean()) if len(rates) else 0.0,
        l_avg_ms=l_avg,
        rates=rates,
        latencies_ms=per_user_ms,
        allocated_users=alloc.n_allocated,
        replicas=delivery.n_replicas,
    )
