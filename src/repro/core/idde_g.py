"""IDDE-G: the paper's proposed two-phase solver (Algorithm 1).

Phase 1 plays the IDDE-U game to a Nash equilibrium (user allocation,
Objective #1); Phase 2 greedily places replicas by latency reduction per
megabyte (data delivery, Objective #2).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..config import DeliveryConfig, GameConfig
from ..obs.tracer import Tracer, ensure_tracer
from .delivery import greedy_delivery
from .game import IddeUGame
from .instance import IDDEInstance
from .profiles import AllocationProfile, DeliveryProfile
from .strategy import Solver

__all__ = ["IddeG"]


class IddeG(Solver):
    """The IDDE-G algorithm (game-based allocation + greedy delivery)."""

    name = "IDDE-G"

    def __init__(
        self,
        game: GameConfig | None = None,
        delivery: DeliveryConfig | None = None,
        *,
        track_potential: bool = False,
        tracer: Tracer | None = None,
        initial: AllocationProfile | None = None,
        active: np.ndarray | None = None,
    ) -> None:
        self.game_cfg = game or GameConfig()
        self.delivery_cfg = delivery or DeliveryConfig()
        self.track_potential = track_potential
        self.tracer = ensure_tracer(tracer)
        # Warm-start state for incremental re-solves: ``initial`` re-enters
        # the IDDE-U game from a prior equilibrium (repair it first — see
        # repro.core.repair), ``active`` masks out churned-away users.
        self.initial = initial
        self.active = active

    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        game = IddeUGame(
            instance,
            self.game_cfg,
            track_potential=self.track_potential,
            tracer=self.tracer,
        )
        result = game.run(rng, initial=self.initial, active=self.active)
        delivery = greedy_delivery(
            instance, result.profile, self.delivery_cfg, tracer=self.tracer
        )
        extras = {
            "game_rounds": result.rounds,
            "game_moves": result.moves,
            "game_converged": result.converged,
            "is_nash": result.is_nash,
            "effective_epsilon": result.effective_epsilon,
            "capped_users": list(result.capped_users),
            "schedule": self.game_cfg.schedule,
            "kernel": self.game_cfg.kernel,
            "delivery_kernel": self.delivery_cfg.kernel,
            "delivery_iterations": delivery.iterations,
            "replicas": delivery.profile.n_replicas,
            "delivery_gain_s": delivery.total_gain_s,
            # Full result objects so the repro.api façade can surface every
            # field in Solution without re-running either phase; popped
            # there, harmless (if bulky) for direct Solver users.
            "game_result": result,
            "delivery_result": delivery,
        }
        if self.track_potential:
            extras["potential_trace"] = result.potential_trace
        return result.profile, delivery.profile, extras
