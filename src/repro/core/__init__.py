"""The paper's primary contribution: the IDDE problem and the IDDE-G solver.

Modules
-------
``instance``
    :class:`~repro.core.instance.IDDEInstance` — a scenario bound to a
    topology and a radio configuration, with cached derived structure.
``profiles``
    The decision variables: :class:`~repro.core.profiles.AllocationProfile`
    (``α``) and :class:`~repro.core.profiles.DeliveryProfile` (``σ``).
``objectives``
    Eq. (5) average data rate and Eq. (9) average delivery latency.
``constraints``
    Checkers for Eqs. (1), (6), (7), (8).
``game``
    Phase 1 — the IDDE-U potential game and its best-response dynamics.
``potential``
    The potential function (Eq. 13) used for convergence diagnostics.
``delivery``
    Phase 2 — the greedy marginal-latency-per-byte placement (Eq. 17).
``idde_g``
    The composed IDDE-G solver.
``bounds``
    Theorems 4, 5 and 7: iteration bound, price of anarchy, approximation.
``brute_force``
    Exact reference solvers for tiny instances (test oracles).
"""

from .instance import IDDEInstance
from .profiles import AllocationProfile, DeliveryProfile
from .objectives import average_data_rate, average_delivery_latency_ms, evaluate
from .game import IddeUGame, GameResult
from .delivery import greedy_delivery, DeliveryResult
from .idde_g import IddeG
from .strategy import IDDEStrategy

__all__ = [
    "IDDEInstance",
    "AllocationProfile",
    "DeliveryProfile",
    "average_data_rate",
    "average_delivery_latency_ms",
    "evaluate",
    "IddeUGame",
    "GameResult",
    "greedy_delivery",
    "DeliveryResult",
    "IddeG",
    "IDDEStrategy",
]
