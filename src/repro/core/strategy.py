"""The IDDE strategy result object and the solver interface.

Every approach in this package — IDDE-G and all baselines — implements
:class:`Solver` and returns an :class:`IDDEStrategy`: the pair ``(α, σ)``
together with both objective values and timing metadata, already validated
against the instance constraints.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs.tracer import Tracer, ensure_tracer
from ..rng import ensure_rng
from .constraints import check_strategy
from .instance import IDDEInstance
from .objectives import evaluate
from .profiles import AllocationProfile, DeliveryProfile

__all__ = ["IDDEStrategy", "Solver"]


@dataclass(frozen=True)
class IDDEStrategy:
    """The output of one solver run on one instance."""

    solver: str
    allocation: AllocationProfile
    delivery: DeliveryProfile
    r_avg: float
    l_avg_ms: float
    wall_time_s: float
    extras: dict[str, Any] = field(default_factory=dict)
    #: The full joint Evaluation behind ``r_avg``/``l_avg_ms`` (per-user
    #: rates and latencies, allocated-user and replica counts).  ``None``
    #: only on strategies reloaded from disk, which persist metrics alone.
    evaluation: Any = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IDDEStrategy({self.solver}: R_avg={self.r_avg:.2f} MB/s, "
            f"L_avg={self.l_avg_ms:.2f} ms, t={self.wall_time_s:.3f}s)"
        )


class Solver(abc.ABC):
    """Abstract IDDE solver.

    Subclasses implement :meth:`_solve` returning the profile pair; the
    public :meth:`solve` wraps it with timing, validation and objective
    evaluation so every solver is measured identically (this is how the
    computation-time figure, Fig. 7, is produced).
    """

    #: Human-readable solver name used in reports and figures.
    name: str = "abstract"

    @abc.abstractmethod
    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        """Produce ``(α, σ, extras)`` for the instance."""

    def solve(
        self,
        instance: IDDEInstance,
        rng: np.random.Generator | int | None = None,
        *,
        validate: bool = True,
        tracer: Tracer | None = None,
    ) -> IDDEStrategy:
        """Run the solver, validate the result, and evaluate objectives.

        ``tracer`` scopes the spans this wrapper records; the timed
        ``wall_time_s`` region is :meth:`_solve` alone, exactly as before
        (validation and evaluation are outside it, in their own spans).
        """
        rng = ensure_rng(rng)
        tracer = ensure_tracer(tracer)
        t0 = time.perf_counter()
        with tracer.span("solver.solve", solver=self.name):
            alloc, delivery, extras = self._solve(instance, rng)
        wall = time.perf_counter() - t0
        if validate:
            with tracer.span("solver.validate"):
                check_strategy(instance, alloc, delivery)
        with tracer.span("solver.evaluate"):
            ev = evaluate(instance, alloc, delivery)
        return IDDEStrategy(
            solver=self.name,
            allocation=alloc,
            delivery=delivery,
            r_avg=ev.r_avg,
            l_avg_ms=ev.l_avg_ms,
            wall_time_s=wall,
            extras=extras,
            evaluation=ev,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
