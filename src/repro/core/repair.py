"""Allocation repair: detach users an instance delta invalidated.

When the scenario shifts under a standing allocation — users moved out of
coverage, churned out of the system, or the profile simply came from a
different (but same-shaped) instance — the profile must be *repaired*
before it can warm-start the IDDE-U game: every allocation must satisfy
Eq. (1) (a covering server, an existing channel) and inactive users must
sit at the paper's ``α_j = (0,0)`` state.

:func:`repair_allocation` is the per-epoch hot path of the streaming
engine, so it is fully vectorised: one gather over the coverage matrix and
one boolean mask, no per-user Python loop.  ``tests/core/test_repair.py``
pins it against the straightforward loop formulation.
"""

from __future__ import annotations

import numpy as np

from .instance import IDDEInstance
from .profiles import UNALLOCATED, AllocationProfile

__all__ = ["repair_allocation"]


def repair_allocation(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    active: np.ndarray | None = None,
) -> tuple[AllocationProfile, int]:
    """Detach users whose assigned server no longer covers them, whose
    channel no longer exists, or who churned out of the system.

    Parameters
    ----------
    instance:
        The (possibly rebuilt) instance the profile must be feasible for.
    alloc:
        The standing allocation; never mutated.
    active:
        Optional boolean ``(M,)`` participant mask — inactive users are
        detached regardless of coverage.

    Returns
    -------
    The repaired profile (a copy) and the number of detached users.
    """
    repaired = alloc.copy()
    idx = np.flatnonzero(repaired.allocated)
    if idx.size == 0:
        return repaired, 0
    scenario = instance.scenario
    servers = repaired.server[idx]
    bad = ~scenario.coverage[servers, idx]
    bad |= repaired.channel[idx] >= scenario.channels[servers]
    if active is not None:
        bad |= ~np.asarray(active, dtype=bool)[idx]
    drop = idx[bad]
    repaired.server[drop] = UNALLOCATED
    repaired.channel[drop] = UNALLOCATED
    return repaired, int(drop.size)
