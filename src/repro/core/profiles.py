"""The IDDE decision variables: allocation profile ``α`` and delivery
profile ``σ`` (Definitions 1 and 2).

Both profiles are thin, validated wrappers over NumPy arrays with value
semantics (:meth:`copy`) so solvers can mutate working copies freely and
return frozen results.
"""

from __future__ import annotations

import numpy as np

from ..errors import AllocationError, CoverageError, DeliveryError, StorageViolation
from ..types import Scenario

__all__ = ["AllocationProfile", "DeliveryProfile", "UNALLOCATED"]

UNALLOCATED = -1


class AllocationProfile:
    """Definition 1: per-user (server, channel) decisions.

    ``server[j] == channel[j] == -1`` encodes the paper's ``α_j = (0, 0)``
    (unallocated).
    """

    __slots__ = ("server", "channel")

    def __init__(self, server: np.ndarray, channel: np.ndarray) -> None:
        self.server = np.asarray(server, dtype=np.int64).copy()
        self.channel = np.asarray(channel, dtype=np.int64).copy()
        if self.server.shape != self.channel.shape or self.server.ndim != 1:
            raise AllocationError(
                f"server/channel shapes mismatch: {self.server.shape} vs {self.channel.shape}"
            )
        both = (self.server == UNALLOCATED) == (self.channel == UNALLOCATED)
        if not both.all():
            raise AllocationError("server and channel must be unallocated together")

    @classmethod
    def empty(cls, n_users: int) -> "AllocationProfile":
        """The all-unallocated profile (Algorithm 1's initial state)."""
        return cls(
            np.full(n_users, UNALLOCATED, dtype=np.int64),
            np.full(n_users, UNALLOCATED, dtype=np.int64),
        )

    @property
    def n_users(self) -> int:
        return len(self.server)

    @property
    def allocated(self) -> np.ndarray:
        """Boolean mask of allocated users."""
        return self.server != UNALLOCATED

    @property
    def n_allocated(self) -> int:
        return int(self.allocated.sum())

    def users_of_server(self, i: int) -> np.ndarray:
        """The paper's ``U_i(α)``: users allocated to server ``i``."""
        return np.flatnonzero(self.server == i)

    def users_of_channel(self, i: int, x: int) -> np.ndarray:
        """The paper's ``U_{i,x}(α)``: users allocated to channel ``x`` of
        server ``i``."""
        return np.flatnonzero((self.server == i) & (self.channel == x))

    def validate(self, scenario: Scenario) -> None:
        """Check Eq. (1): every allocation targets a covering server and an
        existing channel.

        Raises
        ------
        CoverageError / AllocationError on the first violation found.
        """
        if self.n_users != scenario.n_users:
            raise AllocationError(
                f"profile covers {self.n_users} users, scenario has {scenario.n_users}"
            )
        alloc = np.flatnonzero(self.allocated)
        if len(alloc) == 0:
            return
        servers = self.server[alloc]
        channels = self.channel[alloc]
        if servers.min() < 0 or servers.max() >= scenario.n_servers:
            raise AllocationError("allocated server index out of range")
        if not scenario.coverage[servers, alloc].all():
            bad = alloc[~scenario.coverage[servers, alloc]][0]
            raise CoverageError(
                f"user {bad} allocated to server {self.server[bad]} outside coverage"
            )
        if np.any(channels < 0) or np.any(channels >= scenario.channels[servers]):
            bad = alloc[(channels < 0) | (channels >= scenario.channels[servers])][0]
            raise AllocationError(
                f"user {bad} allocated to non-existent channel {self.channel[bad]}"
            )

    def copy(self) -> "AllocationProfile":
        return AllocationProfile(self.server, self.channel)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AllocationProfile):
            return NotImplemented
        return bool(
            np.array_equal(self.server, other.server)
            and np.array_equal(self.channel, other.channel)
        )

    def __hash__(self) -> int:  # profiles are mutable; identity hashing only
        raise TypeError("AllocationProfile is unhashable (mutable)")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AllocationProfile(M={self.n_users}, allocated={self.n_allocated})"


class DeliveryProfile:
    """Definition 2: the boolean placement matrix ``σ`` of shape (N, K).

    ``placed[i, k]`` — data ``k`` is delivered to (stored on) server ``i``.
    The cloud's copies (Eq. 7) are implicit: the latency objective always
    admits the cloud as an origin.
    """

    __slots__ = ("placed",)

    def __init__(self, placed: np.ndarray) -> None:
        self.placed = np.asarray(placed, dtype=bool).copy()
        if self.placed.ndim != 2:
            raise DeliveryError(f"placed must be 2-D (N, K), got shape {self.placed.shape}")

    @classmethod
    def empty(cls, n_servers: int, n_data: int) -> "DeliveryProfile":
        return cls(np.zeros((n_servers, n_data), dtype=bool))

    @property
    def n_servers(self) -> int:
        return self.placed.shape[0]

    @property
    def n_data(self) -> int:
        return self.placed.shape[1]

    @property
    def n_replicas(self) -> int:
        return int(self.placed.sum())

    def servers_holding(self, k: int) -> np.ndarray:
        """Servers on which data ``k`` is placed."""
        return np.flatnonzero(self.placed[:, k])

    def used_storage(self, sizes: np.ndarray) -> np.ndarray:
        """``(N,)`` MB of reserved storage consumed per server."""
        return self.placed @ np.asarray(sizes, dtype=float)

    def residual_storage(self, scenario: Scenario) -> np.ndarray:
        """``(N,)`` MB of storage still free per server."""
        return scenario.storage - self.used_storage(scenario.sizes)

    def validate(self, scenario: Scenario) -> None:
        """Check the storage constraint (Eq. 6) for every server."""
        if self.placed.shape != (scenario.n_servers, scenario.n_data):
            raise DeliveryError(
                f"placed shape {self.placed.shape} mismatches scenario "
                f"({scenario.n_servers}, {scenario.n_data})"
            )
        used = self.used_storage(scenario.sizes)
        over = used > scenario.storage + 1e-9
        if over.any():
            i = int(np.flatnonzero(over)[0])
            raise StorageViolation(
                f"server {i} stores {used[i]:.1f} MB > reserved {scenario.storage[i]:.1f} MB"
            )

    def copy(self) -> "DeliveryProfile":
        return DeliveryProfile(self.placed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeliveryProfile):
            return NotImplemented
        return bool(np.array_equal(self.placed, other.placed))

    def __hash__(self) -> int:
        raise TypeError("DeliveryProfile is unhashable (mutable)")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeliveryProfile(N={self.n_servers}, K={self.n_data}, "
            f"replicas={self.n_replicas})"
        )
