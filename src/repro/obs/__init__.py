"""IDDE-Trace: the observability layer (spans, counters, event log).

Execution through the :func:`repro.api.solve` façade — and every layer it
reaches: the IDDE-U game kernels, the Phase 2 greedy, the SINR engine, the
experiment sweeps — reports *what happened* through a :class:`Tracer`:
nested spans with monotonic durations, typed counters/gauges/histograms,
and a bounded structured event log (game moves, ε escalations,
quiescent-sweep re-checks, greedy accept/reject decisions, kernel
selections, sweep progress).

The default is the shared no-op :data:`NULL_TRACER`, whose overhead on the
hot paths is gated by the IDDE-Bench baseline comparison; pass a
:class:`RecordingTracer` (e.g. via ``idde solve --trace out.jsonl``) to
record, and serialise with :func:`save_trace` to the schema-versioned
``idde-trace/1`` JSONL document (``idde trace summarize`` renders it).

See docs/OBSERVABILITY.md for the span/event/counter model and schema.
"""

from .document import (
    SCHEMA,
    SpanNode,
    TraceDocument,
    load_trace,
    render_summary,
    save_trace,
    trace_records,
)
from .tracer import (
    NULL_TRACER,
    EventRecord,
    HistogramSummary,
    RecordingTracer,
    SpanRecord,
    Tracer,
    ensure_tracer,
)

__all__ = [
    "SCHEMA",
    "Tracer",
    "RecordingTracer",
    "NULL_TRACER",
    "ensure_tracer",
    "SpanRecord",
    "EventRecord",
    "HistogramSummary",
    "TraceDocument",
    "SpanNode",
    "trace_records",
    "save_trace",
    "load_trace",
    "render_summary",
]
