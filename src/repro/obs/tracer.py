"""IDDE-Trace core: tracers, spans, counters and the bounded event log.

This module is the dependency-free heart of the observability layer
(stdlib only — it sits at the very bottom of the import DAG, below even
``core/`` and ``radio/``, so every hot kernel may hold a tracer without
layering violations).

Two tracers implement one protocol:

* :class:`Tracer` — the **no-op** tracer.  Every hook is a constant-time
  no-op and the shared :data:`NULL_TRACER` singleton is the default
  everywhere, so instrumented hot paths cost one attribute load and a
  branch when tracing is off (the overhead is gated by the IDDE-Bench
  baseline comparison; see docs/OBSERVABILITY.md).  Hot loops should guard
  payload construction with ``if tracer.enabled:``.
* :class:`RecordingTracer` — records nested :meth:`~Tracer.span` regions
  (monotonic-clock durations, injectable clock exactly like
  :mod:`repro.bench.timer`), typed counters/gauges/histograms, and a
  bounded structured event log.  Once ``max_events`` events are held the
  log keeps its (deterministic) prefix and counts the overflow in
  ``dropped_events`` rather than growing without bound.

Serialisation to the ``idde-trace/1`` JSONL document lives in
:mod:`repro.obs.document`; the tracer itself is purely in-memory.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import TraceError

__all__ = [
    "Tracer",
    "RecordingTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "ensure_tracer",
    "SpanRecord",
    "EventRecord",
    "HistogramSummary",
]


class _NullSpan:
    """The do-nothing span handle returned by the no-op tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Attribute updates are discarded."""


NULL_SPAN = _NullSpan()


class Tracer:
    """The no-op tracer: the shared default for every instrumented path.

    All hooks return immediately; ``enabled`` is ``False`` so hot loops can
    skip building event payloads entirely.  Subclass and set ``enabled``
    to record (see :class:`RecordingTracer`).
    """

    #: Hot-loop guard: build event payloads only when this is True.
    enabled: bool = False

    def span(self, name: str, **attrs: Any) -> "_NullSpan | ActiveSpan":
        """A context manager timing a named region (no-op here)."""
        return NULL_SPAN

    def event(self, etype: str, **fields: Any) -> None:
        """Append one structured event to the bounded log (no-op here)."""

    def count(self, name: str, n: int = 1) -> None:
        """Increment a monotonic counter (no-op here)."""

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge (no-op here)."""

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into a histogram summary (no-op here)."""


#: The shared no-op tracer every ``tracer=None`` default resolves to.
NULL_TRACER = Tracer()


def ensure_tracer(tracer: Tracer | None) -> Tracer:
    """Normalise an optional tracer argument to a usable tracer."""
    return NULL_TRACER if tracer is None else tracer


@dataclass
class SpanRecord:
    """One (possibly still open) span: a named, attributed, timed region.

    Times are offsets in seconds from the owning tracer's birth on its
    monotonic clock — never wall-clock, so documents stay deterministic
    under a fake clock and never leak timestamps into decisions.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    end_s: float | None = None

    @property
    def duration_s(self) -> float | None:
        """Span duration, or ``None`` while the span is still open."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s


@dataclass(frozen=True)
class EventRecord:
    """One structured event, attributed to the span open at emission."""

    seq: int
    span_id: int | None
    t_s: float
    etype: str
    fields: dict[str, Any]


@dataclass
class HistogramSummary:
    """Constant-memory summary of observed samples (no raw retention)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """JSON-ready representation (schema in :mod:`repro.obs.document`)."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {"count": self.count, "total": self.total, "min": self.min, "max": self.max}


class ActiveSpan:
    """Live handle for one recording span (context manager)."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "RecordingTracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: Any) -> None:
        """Merge attributes into the span (e.g. results known at exit)."""
        with self._tracer._lock:
            self.record.attrs.update(attrs)

    def __enter__(self) -> "ActiveSpan":
        with self._tracer._lock:
            self._tracer._stack.append(self.record.span_id)
        return self

    def __exit__(self, exc_type: type | None, exc: object, tb: object) -> bool:
        tracer = self._tracer
        with tracer._lock:
            stack = tracer._stack
            if not stack or stack[-1] != self.record.span_id:
                raise TraceError(
                    f"span {self.record.name!r} (id {self.record.span_id}) closed "
                    "out of nesting order"
                )
            stack.pop()
            self.record.end_s = tracer._now()
            if exc_type is not None:
                self.record.attrs.setdefault("error", exc_type.__name__)
        return False


class RecordingTracer(Tracer):
    """A tracer that records spans, metrics and a bounded event log.

    Thread/task-safe: every mutation happens under an internal lock, and
    :meth:`metrics_snapshot` / :meth:`records_snapshot` hand concurrent
    readers self-consistent copies — the IDDE-Serve daemon serves
    ``/v1/metrics`` and ``/v1/trace`` from the event loop while the
    solver thread records (see docs/SERVING.md).  Span *nesting* remains
    single-threaded by design: spans from two threads would interleave one
    stack, so only the serialized solver loop opens spans.

    Parameters
    ----------
    max_events:
        Capacity of the structured event log.  The log keeps the *first*
        ``max_events`` events (a deterministic prefix) and counts the rest
        in :attr:`dropped_events` — sequence numbers keep counting, so a
        loaded document always reveals how much was dropped.
    clock:
        Injectable monotonic clock (the :mod:`repro.bench.timer` pattern);
        defaults to :func:`time.perf_counter`.  A backwards step raises
        :class:`~repro.errors.TraceError` rather than recording a negative
        offset.
    """

    enabled = True

    def __init__(
        self,
        *,
        max_events: int = 10_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_events < 0:
            raise TraceError(f"max_events must be >= 0, got {max_events}")
        self.max_events = max_events
        self._clock = clock
        self._epoch = clock()
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.dropped_events = 0
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}
        self._stack: list[int] = []
        self._seq = 0
        # Every mutation (span open/close, event append, metric update)
        # happens under this lock so a concurrent reader — the IDDE-Serve
        # /v1/metrics and /v1/trace endpoints polling mid-solve — can
        # never observe a torn event log or a half-applied counter.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def _now(self) -> float:
        t = self._clock() - self._epoch
        if t < 0:
            raise TraceError(
                f"clock went backwards ({t + self._epoch} < {self._epoch}); "
                "tracing requires a monotonic clock"
            )
        return t

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span, or ``None`` at the root."""
        return self._stack[-1] if self._stack else None

    def open_spans(self) -> int:
        """Number of spans entered but not yet exited."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # recording hooks
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> ActiveSpan:
        with self._lock:
            record = SpanRecord(
                span_id=len(self.spans),
                parent_id=self.current_span_id,
                name=str(name),
                start_s=self._now(),
                attrs=dict(attrs),
            )
            self.spans.append(record)
        return ActiveSpan(self, record)

    def event(self, etype: str, **fields: Any) -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return
            self.events.append(
                EventRecord(
                    seq=seq,
                    span_id=self.current_span_id,
                    t_s=self._now(),
                    etype=str(etype),
                    fields=fields,
                )
            )

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramSummary()
            hist.observe(value)

    # ------------------------------------------------------------------
    # consistent snapshots for concurrent readers
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict[str, Any]:
        """A self-consistent copy of every metric, safe to read mid-solve.

        The IDDE-Serve ``/v1/metrics`` endpoint calls this from the event
        loop while the solver thread mutates the tracer; the lock
        guarantees the returned counters/gauges/histograms all belong to
        one instant.
        """
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self.histograms.items()
                },
                "spans": len(self.spans),
                "open_spans": len(self._stack),
                "events": len(self.events),
                "dropped_events": self.dropped_events,
            }

    def records_snapshot(self) -> tuple[list[SpanRecord], list[EventRecord], int]:
        """Consistent shallow copies of the span/event logs.

        Serialisation (:func:`repro.obs.document.trace_records`) iterates
        these instead of the live lists so a concurrent solve can never
        resize them mid-iteration.  Span records are re-materialised with
        copied ``attrs`` dicts — a later :meth:`ActiveSpan.set` on a
        still-open span mutates only the live record, never the snapshot.
        """
        with self._lock:
            spans = [
                SpanRecord(
                    span_id=s.span_id,
                    parent_id=s.parent_id,
                    name=s.name,
                    start_s=s.start_s,
                    attrs=dict(s.attrs),
                    end_s=s.end_s,
                )
                for s in self.spans
            ]
            return spans, list(self.events), self.dropped_events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecordingTracer(spans={len(self.spans)}, events={len(self.events)}"
            f"+{self.dropped_events} dropped, counters={len(self.counters)})"
        )
