"""The ``idde-trace/1`` JSONL document: serialise, load, reconstruct, render.

One :class:`~repro.obs.tracer.RecordingTracer` serialises to one JSON-Lines
document — line-oriented so a trace from a long sweep streams through
standard tooling (``jq``, ``grep``) without loading everything.

Schema ``idde-trace/1`` (one JSON object per line, ``kind``-discriminated)::

    {"kind": "header", "schema": "idde-trace/1", "meta": {...},
     "n_spans": int, "n_events": int, "dropped_events": int}
    {"kind": "span", "id": int, "parent": int|null, "name": str,
     "start_s": float, "end_s": float|null, "attrs": {...}}
    {"kind": "event", "seq": int, "span": int|null, "t_s": float,
     "type": str, "fields": {...}}
    {"kind": "metrics", "counters": {...}, "gauges": {...},
     "histograms": {name: {"count", "total", "min", "max"}, ...}}

The header is always the first line; the single metrics record is always
the last.  All times are monotonic offsets from the tracer's birth (see
:class:`~repro.obs.tracer.SpanRecord`) — a document carries no wall-clock
reads of its own; provenance belongs in ``meta``.

:func:`load_trace` validates the schema and reconstructs the span tree
(:meth:`TraceDocument.span_tree`); :func:`render_summary` is the
``idde trace summarize`` renderer — an indented span tree with durations
plus the top counters, gauges and histogram summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import TraceError
from ..units import seconds_to_ms
from .tracer import EventRecord, RecordingTracer, SpanRecord

__all__ = [
    "SCHEMA",
    "trace_records",
    "save_trace",
    "load_trace",
    "TraceDocument",
    "SpanNode",
    "render_summary",
]

SCHEMA = "idde-trace/1"

_KINDS = ("header", "span", "event", "metrics")


def _jsonify(value: Any) -> Any:
    """Coerce attribute/field values to JSON-ready types.

    Kept dependency-free: numpy scalars are handled through their
    ``item()`` duck-type, unknown objects degrade to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonify(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def trace_records(tracer: RecordingTracer, *, meta: dict | None = None) -> list[dict]:
    """The full ``idde-trace/1`` record list for one tracer.

    Serialises from a locked snapshot
    (:meth:`~repro.obs.tracer.RecordingTracer.records_snapshot`), so it is
    safe to call while another thread is still recording — the IDDE-Serve
    ``/v1/trace`` endpoint streams mid-solve.
    """
    spans, events, dropped = tracer.records_snapshot()
    records: list[dict] = [
        {
            "kind": "header",
            "schema": SCHEMA,
            "meta": _jsonify(dict(meta or {})),
            "n_spans": len(spans),
            "n_events": len(events),
            "dropped_events": dropped,
        }
    ]
    for s in spans:
        records.append(
            {
                "kind": "span",
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "start_s": s.start_s,
                "end_s": s.end_s,
                "attrs": _jsonify(s.attrs),
            }
        )
    for e in events:
        records.append(
            {
                "kind": "event",
                "seq": e.seq,
                "span": e.span_id,
                "t_s": e.t_s,
                "type": e.etype,
                "fields": _jsonify(e.fields),
            }
        )
    metrics = tracer.metrics_snapshot()
    records.append(
        {
            "kind": "metrics",
            "counters": metrics["counters"],
            "gauges": metrics["gauges"],
            "histograms": metrics["histograms"],
        }
    )
    return records


def save_trace(
    tracer: RecordingTracer, path: str | Path, *, meta: dict | None = None
) -> Path:
    """Serialise a tracer to an ``idde-trace/1`` JSONL file."""
    # Imported lazily: repro.io reaches up into core/topology for the .npz
    # round-trips, and core holds tracers — a module-level import here
    # would close that cycle during package init.
    from ..io import save_jsonl

    return save_jsonl(trace_records(tracer, meta=meta), path)


@dataclass(frozen=True)
class SpanNode:
    """One node of the reconstructed span tree."""

    span: SpanRecord
    children: tuple["SpanNode", ...]

    def walk(self) -> list[tuple[int, SpanRecord]]:
        """Depth-first ``(depth, span)`` traversal from this node."""
        out: list[tuple[int, SpanRecord]] = []
        stack: list[tuple[int, SpanNode]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            out.append((depth, node.span))
            for child in reversed(node.children):
                stack.append((depth + 1, child))
        return out


@dataclass
class TraceDocument:
    """A loaded ``idde-trace/1`` document."""

    meta: dict[str, Any]
    spans: list[SpanRecord]
    events: list[EventRecord]
    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, dict]
    dropped_events: int = 0

    def span_tree(self) -> list[SpanNode]:
        """Reconstruct the forest of root spans (document order)."""
        children: dict[int | None, list[SpanRecord]] = {}
        by_id = {s.span_id: s for s in self.spans}
        for s in self.spans:
            parent = s.parent_id if s.parent_id in by_id else None
            children.setdefault(parent, []).append(s)

        def build(record: SpanRecord) -> SpanNode:
            kids = tuple(build(c) for c in children.get(record.span_id, []))
            return SpanNode(span=record, children=kids)

        return [build(root) for root in children.get(None, [])]

    def events_of_type(self, etype: str) -> list[EventRecord]:
        return [e for e in self.events if e.etype == etype]

    def summary_dict(self) -> dict:
        """Aggregate view used by ``idde trace summarize --format json``."""
        event_types: dict[str, int] = {}
        for e in self.events:
            event_types[e.etype] = event_types.get(e.etype, 0) + 1
        return {
            "schema": SCHEMA,
            "meta": dict(self.meta),
            "n_spans": len(self.spans),
            "n_events": len(self.events),
            "dropped_events": self.dropped_events,
            "event_types": event_types,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": dict(self.histograms),
        }


def _require(record: dict, keys: tuple[str, ...], lineno: int) -> None:
    missing = [k for k in keys if k not in record]
    if missing:
        raise TraceError(f"trace line {lineno} ({record.get('kind')!r}) lacks keys {missing}")


def load_trace(path: str | Path) -> TraceDocument:
    """Load and validate an ``idde-trace/1`` JSONL document.

    Raises :class:`~repro.errors.TraceError` with a line-level message on
    any schema violation so a truncated or foreign file fails loudly.
    """
    from ..io import load_jsonl  # lazy: see save_trace

    records = load_jsonl(path)
    if not records:
        raise TraceError(f"{path} is empty; not an {SCHEMA} document")
    header = records[0]
    if header.get("kind") != "header":
        raise TraceError(f"{path} does not start with a header record")
    if header.get("schema") != SCHEMA:
        raise TraceError(
            f"unsupported trace schema {header.get('schema')!r}; this build reads {SCHEMA!r}"
        )
    _require(header, ("meta", "n_spans", "n_events", "dropped_events"), 1)

    spans: list[SpanRecord] = []
    events: list[EventRecord] = []
    metrics: dict | None = None
    for lineno, record in enumerate(records[1:], start=2):
        kind = record.get("kind")
        if kind == "span":
            _require(record, ("id", "parent", "name", "start_s", "end_s", "attrs"), lineno)
            spans.append(
                SpanRecord(
                    span_id=int(record["id"]),
                    parent_id=None if record["parent"] is None else int(record["parent"]),
                    name=str(record["name"]),
                    start_s=float(record["start_s"]),
                    attrs=dict(record["attrs"]),
                    end_s=None if record["end_s"] is None else float(record["end_s"]),
                )
            )
        elif kind == "event":
            _require(record, ("seq", "span", "t_s", "type", "fields"), lineno)
            events.append(
                EventRecord(
                    seq=int(record["seq"]),
                    span_id=None if record["span"] is None else int(record["span"]),
                    t_s=float(record["t_s"]),
                    etype=str(record["type"]),
                    fields=dict(record["fields"]),
                )
            )
        elif kind == "metrics":
            if metrics is not None:
                raise TraceError(f"trace line {lineno}: duplicate metrics record")
            _require(record, ("counters", "gauges", "histograms"), lineno)
            metrics = record
        elif kind == "header":
            raise TraceError(f"trace line {lineno}: duplicate header record")
        else:
            raise TraceError(f"trace line {lineno}: unknown record kind {kind!r}")
    if metrics is None:
        raise TraceError(f"{path} lacks the terminal metrics record (truncated?)")
    if len(spans) != int(header["n_spans"]) or len(events) != int(header["n_events"]):
        raise TraceError(
            f"{path} header counts ({header['n_spans']} spans, {header['n_events']} "
            f"events) mismatch the records ({len(spans)} spans, {len(events)} events)"
        )
    return TraceDocument(
        meta=dict(header["meta"]),
        spans=spans,
        events=events,
        counters={str(k): int(v) for k, v in metrics["counters"].items()},
        gauges={str(k): float(v) for k, v in metrics["gauges"].items()},
        histograms=dict(metrics["histograms"]),
        dropped_events=int(header["dropped_events"]),
    )


def _format_ms(seconds: float | None) -> str:
    if seconds is None:
        return "   (open)"
    return f"{seconds_to_ms(seconds):9.3f}"


def render_summary(
    doc: TraceDocument, *, max_counters: int = 15, max_depth: int = 12
) -> str:
    """Human-readable span tree + top counters for ``idde trace summarize``."""
    lines = [f"IDDE-Trace  {SCHEMA}"]
    if doc.meta:
        meta = "  ".join(f"{k}={v}" for k, v in sorted(doc.meta.items()))
        lines.append(f"meta: {meta}")
    lines.append(
        f"{len(doc.spans)} span(s), {len(doc.events)} event(s)"
        + (f" (+{doc.dropped_events} dropped)" if doc.dropped_events else "")
    )

    lines.append("")
    lines.append(f"{'duration ms':>11} | span tree")
    lines.append(f"{'-' * 11}-+-{'-' * 48}")
    for root in doc.span_tree():
        for depth, span in root.walk():
            if depth > max_depth:
                continue
            attrs = "  ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            label = f"{'  ' * depth}{span.name}" + (f"  [{attrs}]" if attrs else "")
            lines.append(f"{_format_ms(span.duration_s):>11} | {label}")

    if doc.counters:
        lines.append("")
        lines.append(f"{'count':>11} | counter")
        lines.append(f"{'-' * 11}-+-{'-' * 32}")
        top = sorted(doc.counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, value in top[:max_counters]:
            lines.append(f"{value:>11} | {name}")
        if len(top) > max_counters:
            lines.append(f"{'...':>11} | ({len(top) - max_counters} more)")

    if doc.gauges:
        lines.append("")
        for name, value in sorted(doc.gauges.items()):
            lines.append(f"gauge {name} = {value:g}")

    if doc.histograms:
        lines.append("")
        for name, h in sorted(doc.histograms.items()):
            count = int(h.get("count", 0))
            if count:
                mean = float(h.get("total", 0.0)) / count
                lines.append(
                    f"hist {name}: n={count} mean={mean:g} "
                    f"min={h.get('min', 0.0):g} max={h.get('max', 0.0):g}"
                )
            else:
                lines.append(f"hist {name}: n=0")

    event_types: dict[str, int] = {}
    for e in doc.events:
        event_types[e.etype] = event_types.get(e.etype, 0) + 1
    if event_types:
        lines.append("")
        events = "  ".join(
            f"{name}×{n}" for name, n in sorted(event_types.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        lines.append(f"events: {events}")
    return "\n".join(lines)
