"""The :class:`Finding` record emitted by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Findings sort by ``(path, line, col, code)`` so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching.

        Uses the stripped source line rather than the line number so a
        grandfathered finding survives unrelated edits above it.
        """
        return f"{self.path}::{self.code}::{self.snippet}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
