"""Lint engine: file discovery, parsing, suppression, caching, baselines.

The engine is deliberately dependency-free (stdlib ``ast`` only) so it can
run in CI images that install nothing beyond the package itself.

Two rule passes run per lint (see :mod:`repro.analysis.registry`): the
per-file pass hands each parsed file to every ``scope="file"`` rule, then
the project pass builds one :class:`~repro.analysis.semantic.project.
Project` (symbol table + call graph) over *all* parsed files and hands it
to every ``scope="project"`` rule.  Findings from both passes respect
``# idde: noqa[...]`` comments anywhere on the owning *statement's* line
span — a suppression on the closing line of a wrapped call works — and
can be served from the on-disk incremental cache
(:mod:`repro.analysis.semantic.cache`) when file contents are unchanged.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .baseline import Baseline
from .findings import Finding
from .registry import RULES, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .semantic.cache import LintCache

__all__ = ["FileContext", "iter_python_files", "lint_paths", "lint_source"]

#: ``# idde: noqa`` or ``# idde: noqa[IDDE001, IDDE002]``
_NOQA_RE = re.compile(r"#\s*idde:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")

#: Suppress-everything sentinel stored in the per-line noqa map.
_ALL = "*"


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _stmt_spans: list[tuple[int, int]] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    # ------------------------------------------------------------------
    # location within the repro package
    # ------------------------------------------------------------------
    @property
    def repro_parts(self) -> tuple[str, ...]:
        """Path parts after the last ``repro`` anchor, e.g. ``("core",
        "game.py")``; empty when the file is not under a ``repro`` dir."""
        parts = Path(self.path).parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return tuple(parts[i + 1 :])
        return ()

    @property
    def layer(self) -> str | None:
        """First repro-relative segment: ``core``, ``radio``, ``viz``...

        For top-level modules (``repro/viz.py``) the segment is the module
        name without extension.  ``None`` outside the package.
        """
        parts = self.repro_parts
        if not parts:
            return None
        head = parts[0]
        return head[:-3] if head.endswith(".py") and len(parts) == 1 else head

    @property
    def module_parts(self) -> tuple[str, ...]:
        """Dotted-module parts relative to ``repro`` (no extension), with
        ``__init__`` dropped — ``repro/core/game.py`` -> ``("core", "game")``."""
        parts = [p[:-3] if p.endswith(".py") else p for p in self.repro_parts]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return tuple(parts)

    def in_layer(self, *layers: str) -> bool:
        return self.layer in layers

    # ------------------------------------------------------------------
    # findings
    # ------------------------------------------------------------------
    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            path=self.path, line=line, col=col, code=code, message=message, snippet=snippet
        )

    # ------------------------------------------------------------------
    # suppression spans
    # ------------------------------------------------------------------
    def _effective_span(self, stmt: ast.stmt) -> tuple[int, int]:
        """The line range a noqa comment for this statement may live on.

        Simple statements span all their physical lines.  Compound
        statements (defs, ifs, loops...) span only their *header* — from
        the keyword line to the line before the first body statement — so
        a noqa inside a function body never suppresses a finding on the
        ``def`` line itself.
        """
        start = stmt.lineno
        end = getattr(stmt, "end_lineno", None) or start
        body = getattr(stmt, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            first = body[0].lineno
            end = first - 1 if first > start else start
        return start, max(start, end)

    def suppression_span(self, line: int) -> tuple[int, int]:
        """Line span of the innermost statement containing ``line``."""
        if self._stmt_spans is None:
            self._stmt_spans = [
                self._effective_span(node)
                for node in ast.walk(self.tree)
                if isinstance(node, ast.stmt)
            ]
        best: tuple[int, int] | None = None
        for start, end in self._stmt_spans:
            if start <= line <= end:
                if best is None or (end - start) < (best[1] - best[0]):
                    best = (start, end)
        return best if best is not None else (line, line)


def parse_noqa(lines: Sequence[str]) -> dict[int, set[str]]:
    """Per-line suppression map: line number -> codes (or ``{"*"}``)."""
    out: dict[int, set[str]] = {}
    for i, text in enumerate(lines, start=1):
        if "idde" not in text:  # cheap pre-filter
            continue
        m = _NOQA_RE.search(text)
        if not m:
            continue
        raw = m.group("codes")
        if raw is None:
            out[i] = {_ALL}
        else:
            out[i] = {c.strip().upper() for c in raw.split(",") if c.strip()}
    return out


def _suppressed(finding: Finding, noqa: dict[int, set[str]], ctx: FileContext) -> bool:
    """Whether a noqa comment on the owning statement covers this finding.

    Matches against every line of the innermost enclosing statement's
    span, so a comment on the closing line of a wrapped call/def works.
    """
    if not noqa:
        return False
    start, end = ctx.suppression_span(finding.line)
    for line in range(start, end + 1):
        codes = noqa.get(line)
        if codes and (_ALL in codes or finding.code in codes):
            return True
    return False


def _selected_rules(rules: Iterable[str] | None) -> list[Rule]:
    return list(RULES.values()) if rules is None else [RULES[name] for name in rules]


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=exc.lineno or 1,
        col=exc.offset or 0,
        code="IDDE000",
        message=f"syntax error prevents analysis: {exc.msg}",
    )


def _run_file_rules(
    ctx: FileContext, rules: list[Rule], noqa: dict[int, set[str]]
) -> list[Finding]:
    found: list[Finding] = []
    for r in rules:
        for f in r.func(ctx):
            if not _suppressed(f, noqa, ctx):
                found.append(f)
    return found


def _run_project_rules(
    contexts: list[FileContext],
    rules: list[Rule],
    noqa_maps: dict[str, dict[int, set[str]]],
) -> list[Finding]:
    if not rules or not contexts:
        return []
    from .semantic.project import Project

    project = Project.build(contexts)
    by_path = {ctx.path: ctx for ctx in contexts}
    found: list[Finding] = []
    for r in rules:
        for f in r.func(project):
            ctx = by_path.get(f.path)
            noqa = noqa_maps.get(f.path, {})
            if ctx is None or not _suppressed(f, noqa, ctx):
                found.append(f)
    return found


def lint_source(
    source: str,
    path: str = "<memory>",
    *,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one source string; ``path`` drives layer-scoped rules.

    Both rule scopes run: project rules see a single-module project, so
    purely-local interprocedural violations (a module-global generator, a
    frozen instance aliased into a mutating function in the same file)
    are still caught.  Syntax errors are reported as an ``IDDE000``
    finding rather than raised, so a broken file cannot crash a whole-tree
    lint.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [_syntax_finding(path, exc)]
    ctx = FileContext(path=path, source=source, tree=tree)
    selected = _selected_rules(rules)
    noqa = parse_noqa(ctx.lines)
    found = _run_file_rules(ctx, [r for r in selected if r.scope == "file"], noqa)
    found.extend(
        _run_project_rules(
            [ctx], [r for r in selected if r.scope == "project"], {ctx.path: noqa}
        )
    )
    return sorted(found)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through, dirs recurse).

    Hidden directories and ``__pycache__`` are skipped; each file is
    yielded once even when given paths overlap; order is sorted per root
    for reproducible reports.
    """
    seen: set[Path] = set()
    for root in paths:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py" and root.resolve() not in seen:
                seen.add(root.resolve())
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"lint path does not exist: {root}")
        for p in sorted(root.rglob("*.py")):
            rel = p.relative_to(root)
            if any(part.startswith(".") or part == "__pycache__" for part in rel.parts):
                continue
            if p.resolve() in seen:
                continue
            seen.add(p.resolve())
            yield p


def _display_path(p: Path) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    try:
        rel = p.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return p.as_posix()


def lint_paths(
    paths: Iterable[str | Path],
    *,
    baseline: Baseline | None = None,
    rules: Iterable[str] | None = None,
    cache: "LintCache | str | Path | None" = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``, returning new findings.

    Findings matching ``baseline`` (by fingerprint, count-aware) are
    filtered out; the remainder is sorted by location.  With ``cache``
    (a path or a loaded :class:`~repro.analysis.semantic.cache.LintCache`),
    unchanged files reuse their per-file findings and an unchanged *tree*
    reuses the whole interprocedural pass; the updated cache document is
    written back afterwards.  Restricting ``rules`` bypasses the cache —
    cached findings always reflect the full rule set.
    """
    from .semantic.cache import LintCache, content_hash

    if cache is not None and not isinstance(cache, LintCache):
        cache = LintCache.load(cache)
    use_cache = cache if rules is None else None

    sources: list[tuple[str, str]] = []
    for file in iter_python_files(paths):
        sources.append((_display_path(file), file.read_text(encoding="utf-8")))

    selected = _selected_rules(rules)
    file_rules = [r for r in selected if r.scope == "file"]
    project_rules = [r for r in selected if r.scope == "project"]

    digests = {path: content_hash(src) for path, src in sources}
    tree_digest = LintCache.tree_hash(digests)
    project_cached = use_cache.get_project(tree_digest) if use_cache else None

    found: list[Finding] = []
    contexts: list[FileContext] = []
    noqa_maps: dict[str, dict[int, set[str]]] = {}
    need_project = project_cached is None and bool(project_rules)

    for path, source in sources:
        cached = use_cache.get_file(path, digests[path]) if use_cache else None
        if cached is not None and not need_project:
            found.extend(cached)
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            file_found = [_syntax_finding(path, exc)]
            found.extend(file_found)
            if use_cache:
                use_cache.put_file(path, digests[path], file_found)
            continue
        ctx = FileContext(path=path, source=source, tree=tree)
        contexts.append(ctx)
        noqa_maps[path] = parse_noqa(ctx.lines)
        if cached is not None:
            found.extend(cached)
            continue
        file_found = _run_file_rules(ctx, file_rules, noqa_maps[path])
        found.extend(file_found)
        if use_cache:
            use_cache.put_file(path, digests[path], file_found)

    if project_cached is not None:
        found.extend(project_cached)
    elif project_rules:
        project_found = _run_project_rules(contexts, project_rules, noqa_maps)
        found.extend(project_found)
        if use_cache:
            use_cache.put_project(tree_digest, project_found)

    if use_cache:
        use_cache.prune(set(digests))
        use_cache.save()

    if baseline is not None:
        found = baseline.filter(found)
    return sorted(found)
