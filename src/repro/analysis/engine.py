"""Lint engine: file discovery, parsing, suppression, baseline filtering.

The engine is deliberately dependency-free (stdlib ``ast`` only) so it can
run in CI images that install nothing beyond the package itself.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .baseline import Baseline
from .findings import Finding
from .registry import RULES

__all__ = ["FileContext", "iter_python_files", "lint_paths", "lint_source"]

#: ``# idde: noqa`` or ``# idde: noqa[IDDE001, IDDE002]``
_NOQA_RE = re.compile(r"#\s*idde:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")

#: Suppress-everything sentinel stored in the per-line noqa map.
_ALL = "*"


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    # ------------------------------------------------------------------
    # location within the repro package
    # ------------------------------------------------------------------
    @property
    def repro_parts(self) -> tuple[str, ...]:
        """Path parts after the last ``repro`` anchor, e.g. ``("core",
        "game.py")``; empty when the file is not under a ``repro`` dir."""
        parts = Path(self.path).parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return tuple(parts[i + 1 :])
        return ()

    @property
    def layer(self) -> str | None:
        """First repro-relative segment: ``core``, ``radio``, ``viz``...

        For top-level modules (``repro/viz.py``) the segment is the module
        name without extension.  ``None`` outside the package.
        """
        parts = self.repro_parts
        if not parts:
            return None
        head = parts[0]
        return head[:-3] if head.endswith(".py") and len(parts) == 1 else head

    @property
    def module_parts(self) -> tuple[str, ...]:
        """Dotted-module parts relative to ``repro`` (no extension), with
        ``__init__`` dropped — ``repro/core/game.py`` -> ``("core", "game")``."""
        parts = [p[:-3] if p.endswith(".py") else p for p in self.repro_parts]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return tuple(parts)

    def in_layer(self, *layers: str) -> bool:
        return self.layer in layers

    # ------------------------------------------------------------------
    # findings
    # ------------------------------------------------------------------
    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            path=self.path, line=line, col=col, code=code, message=message, snippet=snippet
        )


def parse_noqa(lines: Sequence[str]) -> dict[int, set[str]]:
    """Per-line suppression map: line number -> codes (or ``{"*"}``)."""
    out: dict[int, set[str]] = {}
    for i, text in enumerate(lines, start=1):
        if "idde" not in text:  # cheap pre-filter
            continue
        m = _NOQA_RE.search(text)
        if not m:
            continue
        raw = m.group("codes")
        if raw is None:
            out[i] = {_ALL}
        else:
            out[i] = {c.strip().upper() for c in raw.split(",") if c.strip()}
    return out


def _suppressed(finding: Finding, noqa: dict[int, set[str]]) -> bool:
    codes = noqa.get(finding.line)
    if not codes:
        return False
    return _ALL in codes or finding.code in codes


def lint_source(
    source: str,
    path: str = "<memory>",
    *,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one source string; ``path`` drives layer-scoped rules.

    ``rules`` optionally restricts the run to the named rules.  Syntax
    errors are reported as an ``IDDE000`` finding rather than raised, so a
    broken file cannot crash a whole-tree lint.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="IDDE000",
                message=f"syntax error prevents analysis: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree)
    selected = RULES.values() if rules is None else [RULES[name] for name in rules]
    noqa = parse_noqa(ctx.lines)
    found: list[Finding] = []
    for r in selected:
        for f in r.func(ctx):
            if not _suppressed(f, noqa):
                found.append(f)
    return sorted(found)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through, dirs recurse).

    Hidden directories and ``__pycache__`` are skipped; each file is
    yielded once even when given paths overlap; order is sorted per root
    for reproducible reports.
    """
    seen: set[Path] = set()
    for root in paths:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py" and root.resolve() not in seen:
                seen.add(root.resolve())
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"lint path does not exist: {root}")
        for p in sorted(root.rglob("*.py")):
            rel = p.relative_to(root)
            if any(part.startswith(".") or part == "__pycache__" for part in rel.parts):
                continue
            if p.resolve() in seen:
                continue
            seen.add(p.resolve())
            yield p


def _display_path(p: Path) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    try:
        rel = p.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return p.as_posix()


def lint_paths(
    paths: Iterable[str | Path],
    *,
    baseline: Baseline | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``, returning new findings.

    Findings matching ``baseline`` (by fingerprint, count-aware) are
    filtered out; the remainder is sorted by location.
    """
    found: list[Finding] = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        found.extend(lint_source(source, path=_display_path(file), rules=rules))
    if baseline is not None:
        found = baseline.filter(found)
    return sorted(found)
