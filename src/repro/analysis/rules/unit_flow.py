"""IDDE011 — unit dataflow.

The per-file IDDE003/IDDE004 checks catch magic literals and one-line
suffix mismatches; this rule *infers* unit tags (``s``, ``ms``, ``MB``,
``B``, ``MB/s``, ``W``, ``dBm``) and propagates them through assignments,
branches, returns and call boundaries using the dataflow interpreter over
the project call graph.  Tags come from three sources, all declared in
:mod:`repro.units`: parameter/variable name suffixes (``UNIT_SUFFIXES``),
the converter signatures (``CONVERTER_UNITS``), and callee return
summaries computed to fixpoint.  Flagged are:

* **cross-unit arithmetic/comparison**: ``deadline_s - elapsed_ms``,
  ``if latency_ms > timeout_s`` — adding or ordering values whose
  inferred tags cannot agree;
* **mis-tagged call arguments**: passing an ``s``-tagged value to a
  parameter declared ``*_ms`` of a project function, or feeding a
  converter a value already carrying its *output* unit
  (``seconds_to_ms(x_ms)``);
* **tag-dishonest returns**: a function whose name promises one unit
  (``def latency_ms``) returning a value tagged with a conflicting one.

Multiplication/division intentionally clear tags (unit algebra such as
``MB / MBps -> s`` is out of scope), so rate conversions never false-fire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.units import CONVERTER_UNITS, unit_for_name

from ..findings import Finding
from ..registry import rule
from ..semantic.dataflow import NO_TAGS, TagInterpreter, fixpoint_summaries
from ..semantic.project import Project
from ..semantic.symbols import FunctionInfo

#: Modules whose whole business is crossing units.
_EXEMPT_MODULES = {"repro.units"}


def _fmt(tags: frozenset) -> str:
    return "/".join(sorted(tags))


def _conflict(a: frozenset, b: frozenset) -> bool:
    return bool(a) and bool(b) and not (a & b)


def _name_tags(name: str) -> frozenset:
    tag = unit_for_name(name)
    return frozenset({tag}) if tag else NO_TAGS


class _UnitInterp(TagInterpreter):
    """One function's unit-tag interpretation.

    With ``report=None`` the run only computes the return-tag summary (the
    fixpoint phase); with a list it also appends ``(node, message)`` pairs
    for every conflict observed (the reporting phase).
    """

    def __init__(
        self,
        fn: FunctionInfo,
        project: Project,
        summaries: dict[str, frozenset],
        report: list | None = None,
    ) -> None:
        super().__init__(fn)
        self.project = project
        self.summaries = summaries
        self.report = report
        self.sites = {id(s.node): s for s in project.graph.sites_in(fn.qname)}

    def _emit(self, node: ast.AST, message: str) -> None:
        if self.report is not None:
            self.report.append((node, message))

    # ------------------------------------------------------------------
    def initial_env(self) -> dict[str, frozenset]:
        return {p: _name_tags(p) for p in self.fn.params if unit_for_name(p)}

    def eval_expr(self, node: ast.expr, env: dict[str, frozenset]) -> frozenset:
        if isinstance(node, ast.Name):
            return env[node.id] if node.id in env else _name_tags(node.id)
        if isinstance(node, ast.Attribute):
            self.eval_expr(node.value, env)
            return _name_tags(node.attr)
        if isinstance(node, ast.Constant):
            return NO_TAGS
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.Compare):
            tags = [self.eval_expr(node.left, env)]
            tags.extend(self.eval_expr(c, env) for c in node.comparators)
            for a, b in zip(tags, tags[1:]):
                if _conflict(a, b):
                    self._emit(
                        node,
                        f"comparison mixes units: {_fmt(a)} vs {_fmt(b)}; "
                        "convert via repro.units first",
                    )
            return NO_TAGS
        if isinstance(node, ast.BoolOp):
            out = NO_TAGS
            for v in node.values:
                out = out | self.eval_expr(v, env)
            return out
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test, env)
            return self.eval_expr(node.body, env) | self.eval_expr(node.orelse, env)
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand, env)
        if isinstance(node, (ast.NamedExpr,)):
            tags = self.eval_expr(node.value, env)
            self._bind(node.target, tags, env)
            return tags
        # anything else: walk children so nested calls are still checked
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child, env)
        return NO_TAGS

    # ------------------------------------------------------------------
    def _eval_binop(self, node: ast.BinOp, env: dict) -> frozenset:
        left = self.eval_expr(node.left, env)
        right = self.eval_expr(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if _conflict(left, right):
                self._emit(
                    node,
                    f"arithmetic mixes units: {_fmt(left)} "
                    f"{'+' if isinstance(node.op, ast.Add) else '-'} "
                    f"{_fmt(right)}; convert via repro.units first",
                )
                return NO_TAGS
            return left | right
        return NO_TAGS  # *, /, ... change dimensions; out of scope

    def _eval_call(self, node: ast.Call, env: dict) -> frozenset:
        evaluated: dict[int, frozenset] = {}
        for arg in node.args:
            if not isinstance(arg, ast.Starred):
                evaluated[id(arg)] = self.eval_expr(arg, env)
        for kw in node.keywords:
            evaluated[id(kw.value)] = self.eval_expr(kw.value, env)

        site = self.sites.get(id(node))
        callee = site.callee if site is not None else ""
        base = callee.rsplit(".", 1)[-1]

        if base in CONVERTER_UNITS:
            inp, outp = CONVERTER_UNITS[base]
            if node.args and not isinstance(node.args[0], ast.Starred):
                got = evaluated.get(id(node.args[0]), NO_TAGS)
                if _conflict(got, frozenset({inp})):
                    self._emit(
                        node,
                        f"{base}() expects a {inp}-tagged value but receives "
                        f"{_fmt(got)}",
                    )
            return frozenset({outp})

        if site is not None and site.resolved:
            info = self.project.symbols.function(site.callee)
            if info is not None:
                for pname, arg in info.bind_args(node).items():
                    want = _name_tags(pname)
                    got = evaluated.get(id(arg), NO_TAGS)
                    if _conflict(got, want):
                        self._emit(
                            arg,
                            f"argument tagged {_fmt(got)} bound to parameter "
                            f"'{pname}' of {info.name}() which declares "
                            f"{_fmt(want)}",
                        )
                return self.summaries.get(site.callee, NO_TAGS)

        return _name_tags(base)

    # ------------------------------------------------------------------
    def on_return(self, node: ast.Return, tags: frozenset, env: dict) -> None:
        want = _name_tags(self.fn.name)
        if _conflict(tags, want):
            self._emit(
                node,
                f"'{self.fn.name}' promises {_fmt(want)} by name but returns "
                f"a {_fmt(tags)}-tagged value",
            )


def _return_summaries(project: Project) -> dict[str, frozenset]:
    functions = {fn.qname: fn for fn in project.functions()}

    def analyze(fn: FunctionInfo, summaries: dict[str, frozenset]) -> frozenset:
        tags = _UnitInterp(fn, project, summaries).run()
        return tags if tags else _name_tags(fn.name)

    return project.shared(
        "unit_flow.summaries",
        lambda: fixpoint_summaries(
            functions, project.graph, analyze, initial=lambda fn: _name_tags(fn.name)
        ),
    )  # type: ignore[return-value]


@rule(
    "unit-flow",
    ["IDDE011"],
    "inferred s/ms/MB/MB-per-s tags must agree across arithmetic, "
    "call boundaries and returns",
    scope="project",
    explain={
        "IDDE011": (
            "Unit tags are inferred from name suffixes (repro.units."
            "UNIT_SUFFIXES), converter signatures (CONVERTER_UNITS) and "
            "callee return summaries, then propagated through assignments, "
            "branches and the call graph to fixpoint. Adding/subtracting/"
            "comparing values with disagreeing tags, binding a mis-tagged "
            "argument to a unit-suffixed parameter, feeding a converter the "
            "wrong unit, or returning a tag that contradicts the function's "
            "own name suffix are all flagged. Multiplication and division "
            "clear tags, so rate algebra (size_mb / rate_mbps) is exempt."
        )
    },
)
def check_unit_flow(project: Project) -> Iterator[Finding]:
    summaries = _return_summaries(project)
    for fn in project.functions():
        if fn.module in _EXEMPT_MODULES:
            continue
        report: list = []
        _UnitInterp(fn, project, summaries, report=report).run()
        for node, message in report:
            yield project.finding(fn.path, node, "IDDE011", message)
