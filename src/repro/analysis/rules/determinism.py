"""IDDE007/IDDE008 — determinism hazards in algorithm bodies.

Nash-equilibrium convergence results are only comparable across runs when
the dynamics in ``core/`` and ``baselines/`` are bit-deterministic given
``(instance, seed)``:

* **IDDE007** — iteration over a freshly-built ``set`` (set literal, set
  comprehension, ``set(...)`` call, including via ``list``/``tuple``/
  ``enumerate`` wrappers).  Python set iteration order depends on insertion
  history and hash salting of contained objects; wrap in ``sorted(...)``.
* **IDDE008** — wall-clock reads (``time.time``, ``datetime.now``, ...)
  inside algorithm modules.  ``time.perf_counter`` is allowed: it only
  feeds the reported ``wall_time_s``, never a decision.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..findings import Finding
from ..registry import rule
from ._ast_util import dotted_name

_LAYERS = ("core", "baselines")

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.today",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "date.today",
    "datetime.date.today",
}

#: Wrappers through which unordered set iteration still leaks.
_ORDER_LEAKING_WRAPPERS = {"list", "tuple", "enumerate", "iter", "reversed"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name == "set" or name == "frozenset":
            return True
        if name in _ORDER_LEAKING_WRAPPERS and node.args:
            return _is_set_expr(node.args[0])
    return False


@rule(
    "determinism",
    ["IDDE007", "IDDE008"],
    "no unordered set iteration or wall-clock reads in core/, baselines/",
)
def check_determinism(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.in_layer(*_LAYERS):
        return

    for node in ast.walk(ctx.tree):
        # --- IDDE007: iteration order over sets -------------------------
        iters: list[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                yield ctx.finding(
                    it,
                    "IDDE007",
                    "iteration over a set has salted, insertion-dependent order; "
                    "wrap in sorted(...) to keep the dynamics deterministic",
                )

        # --- IDDE008: wall-clock reads ----------------------------------
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _CLOCK_CALLS:
                yield ctx.finding(
                    node,
                    "IDDE008",
                    f"wall-clock call {name}() in an algorithm module; inject "
                    "timestamps, or use time.perf_counter for reporting only",
                )
