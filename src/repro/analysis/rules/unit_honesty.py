"""IDDE003/IDDE004 — unit honesty.

The conventions of :mod:`repro.units` (metres, MB, MB/s, ms only at the
reporting boundary) are enforced two ways:

* **IDDE003** — magic conversion literals in arithmetic: ``x * 1e6`` /
  ``1_000_000`` where ``units.MB`` belongs, ``x * 1000.0`` / ``1e3`` where
  ``units.MS_PER_S`` / ``seconds_to_ms`` belongs.  Integer ``1000`` alone is
  *not* flagged (it is a common count); only float-typed ``1000.0`` and any
  spelling of one million in a multiply/divide are.
* **IDDE004** — mismatched unit-suffix assignments: a ``*_ms`` name bound
  from an expression mentioning ``*_s`` names without ``seconds_to_ms``
  (and the ``*_s`` from ``*_ms`` converse without ``ms_to_seconds``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..findings import Finding
from ..registry import rule
from ._ast_util import dotted_name

_MILLION = 1_000_000.0
_THOUSAND = 1000.0


def _is_seconds_name(name: str) -> bool:
    return name.endswith("_s") and not name.endswith("_ms")


def _names_and_calls(expr: ast.AST) -> tuple[set[str], set[str]]:
    """All identifier leaves and called-function base names in ``expr``."""
    names: set[str] = set()
    calls: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Call):
            dn = dotted_name(node.func)
            if dn:
                calls.add(dn.split(".")[-1])
    return names, calls


@rule(
    "unit-honesty",
    ["IDDE003", "IDDE004"],
    "use repro.units constants/converters; no magic factors or suffix mismatches",
)
def check_unit_honesty(ctx: FileContext) -> Iterator[Finding]:
    if ctx.module_parts == ("units",):
        return  # the one module allowed to define the conversion constants

    # --- IDDE003: magic conversion literals in arithmetic ---------------
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.BinOp) or not isinstance(
            node.op, (ast.Mult, ast.Div)
        ):
            continue
        for side in (node.left, node.right):
            if not isinstance(side, ast.Constant):
                continue
            v = side.value
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            if float(v) == _MILLION:
                yield ctx.finding(
                    side,
                    "IDDE003",
                    "magic literal 1e6 in arithmetic; use units.MB / "
                    "units.mb_to_bytes for MB<->bytes conversions",
                )
            elif isinstance(v, float) and v == _THOUSAND:
                yield ctx.finding(
                    side,
                    "IDDE003",
                    "magic literal 1000.0 in arithmetic; use units.MS_PER_S / "
                    "units.seconds_to_ms at the reporting boundary",
                )

    # --- IDDE004: suffix-mismatched assignments -------------------------
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        names, calls = _names_and_calls(value)
        if target.id.endswith("_ms"):
            seconds = sorted(n for n in names if _is_seconds_name(n))
            if seconds and "seconds_to_ms" not in calls:
                yield ctx.finding(
                    node,
                    "IDDE004",
                    f"'{target.id}' assigned from seconds-suffixed {seconds} "
                    "without units.seconds_to_ms",
                )
        elif _is_seconds_name(target.id):
            millis = sorted(n for n in names if n.endswith("_ms"))
            if millis and "ms_to_seconds" not in calls:
                yield ctx.finding(
                    node,
                    "IDDE004",
                    f"'{target.id}' assigned from ms-suffixed {millis} "
                    "without units.ms_to_seconds",
                )
