"""IDDE010 — interprocedural RNG stream flow.

The per-file IDDE001/IDDE002 checks see one function at a time; this rule
follows generators *across* functions using the project call graph and the
stochastic/spawning summaries computed to fixpoint over it.  Four shapes
are flagged, all of which silently break per-trial stream independence:

* a **module-global generator** (``_RNG = spawn_rng(...)`` at module
  scope): every caller shares one stream, so trial results depend on
  call order;
* **re-seeding mid-call-chain**: a function that already receives an
  ``rng``/``seed`` parameter but builds a *constant-seeded* stream inside
  (``spawn_rng(42, ...)``), discarding the caller's provenance;
* **spawn-free stochastic fan-out**: a callable handed to
  ``parallel_map`` whose transitive closure draws randomness without ever
  spawning a per-item stream (``spawn_rng(spec.seed, ...)``-style) and
  without accepting an rng/seed parameter — worker processes then draw
  from OS entropy and runs are unrepeatable;
* an **unthreaded stream**: a function holding an ``rng`` parameter calls
  a callee that accepts one (defaulting to ``None``) without passing it,
  so the callee falls back to fresh entropy mid-chain.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.parallel.pool import PARALLEL_ENTRY_POINTS

from ..findings import Finding
from ..registry import rule
from ..semantic.callgraph import own_body, resolve_callable_ref
from ..semantic.dataflow import fixpoint_summaries
from ..semantic.project import Project
from ..semantic.symbols import FunctionInfo
from ._ast_util import dotted_name

#: repro.rng helpers that *derive* a child stream from explicit provenance.
_SPAWN_HELPERS = {"spawn_rng", "split_rngs", "spawn_seedsequence", "seeds_for"}

#: All repro.rng helpers plus the raw numpy factory.
_RNG_FACTORIES = _SPAWN_HELPERS | {"ensure_rng", "default_rng"}

#: Parameter names (or suffixes) that mark a caller-controlled stream.
_RNG_PARAMS = ("rng", "seed")

#: Summary tags for the stochastic fixpoint.
_STOCHASTIC = "stochastic"
_SPAWNS = "spawns"


def _base(qname: str) -> str:
    return qname.rsplit(".", 1)[-1]


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    a = node.args
    return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


def _rng_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    return [
        name
        for name in _param_names(node)
        if name in _RNG_PARAMS or name.endswith(("_rng", "_seed"))
    ]


def _param_default(
    node: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> ast.expr | None:
    """The default expression for parameter ``name``, or ``None``."""
    a = node.args
    pos = [*a.posonlyargs, *a.args]
    offset = len(pos) - len(a.defaults)
    for i, p in enumerate(pos):
        if p.arg == name and i >= offset:
            return a.defaults[i - offset]
    for p, d in zip(a.kwonlyargs, a.kw_defaults):
        if p.arg == name:
            return d
    return None


def _rng_locals(fn: FunctionInfo) -> set[str]:
    """Names in ``fn`` that (syntactically) hold a Generator."""
    names = {p for p in fn.params if p == "rng" or p.endswith("_rng")}
    for node in own_body(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _base(dotted_name(node.value.func) or "") in _RNG_FACTORIES:
                names.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
    return names


def _stochastic_summaries(project: Project) -> dict[str, frozenset[str]]:
    """Per-function ``{stochastic, spawns}`` tags, transitive over calls."""
    functions = {fn.qname: fn for fn in project.functions()}

    def analyze(
        fn: FunctionInfo, summaries: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        tags: set[str] = set()
        rng_names = _rng_locals(fn)
        for site in project.graph.sites_in(fn.qname):
            base = _base(site.callee)
            if base in _SPAWN_HELPERS:
                tags |= {_STOCHASTIC, _SPAWNS}
            elif base in ("ensure_rng", "default_rng"):
                tags.add(_STOCHASTIC)
            elif site.resolved and site.callee in summaries:
                tags |= summaries[site.callee]
            elif site.receiver is not None and site.receiver in rng_names:
                tags.add(_STOCHASTIC)  # rng.normal(...) and friends
        return frozenset(tags)

    return project.shared(
        "rng_flow.summaries",
        lambda: fixpoint_summaries(
            functions, project.graph, analyze, initial=lambda fn: frozenset()
        ),
    )  # type: ignore[return-value]


def _check_module_globals(project: Project) -> Iterator[Finding]:
    for mod in project.symbols.modules.values():
        if mod.name == "repro.rng":
            continue
        for name, expr in sorted(mod.assigns.items()):
            if not isinstance(expr, ast.Call):
                continue
            base = _base(dotted_name(expr.func) or "")
            if base in _RNG_FACTORIES:
                yield project.finding(
                    mod.path,
                    expr,
                    "IDDE010",
                    f"module-global generator '{name}' shares one stream across "
                    "every caller; spawn per-use streams inside functions "
                    "taking an rng/seed parameter",
                )


def _check_constant_reseed(project: Project) -> Iterator[Finding]:
    for fn in project.functions():
        if fn.module == "repro.rng" or not _rng_params(fn.node):
            continue
        for site in project.graph.sites_in(fn.qname):
            base = _base(site.callee)
            if base not in _SPAWN_HELPERS and base != "ensure_rng":
                continue
            args = site.node.args
            if args and isinstance(args[0], ast.Constant) and isinstance(
                args[0].value, (int, float)
            ):
                yield project.finding(
                    fn.path,
                    site.node,
                    "IDDE010",
                    f"'{fn.name}' receives an rng/seed parameter but re-seeds "
                    f"with the constant {args[0].value!r} via {base}(); derive "
                    "the stream from the caller-provided seed instead",
                )


def _check_fanout(project: Project) -> Iterator[Finding]:
    summaries = _stochastic_summaries(project)
    for site in project.graph.sites:
        idx = PARALLEL_ENTRY_POINTS.get(_base(site.callee))
        if idx is None or len(site.node.args) <= idx:
            continue
        caller = project.symbols.function(site.caller)
        if caller is None:
            continue
        worker_q = resolve_callable_ref(caller, project.symbols, site.node.args[idx])
        worker = project.symbols.function(worker_q)
        if worker is None:
            continue
        tags = summaries.get(worker.qname, frozenset())
        if _STOCHASTIC in tags and _SPAWNS not in tags and not _rng_params(worker.node):
            yield project.finding(
                site.path,
                site.node,
                "IDDE010",
                f"worker '{worker.name}' fanned out via {_base(site.callee)}() "
                "draws randomness without spawning a per-item stream "
                "(spawn_rng(item.seed, ...)); runs will not be reproducible",
            )


def _check_unthreaded(project: Project) -> Iterator[Finding]:
    for fn in project.functions():
        caller_rng = [p for p in _rng_params(fn.node) if p == "rng"]
        if not caller_rng or fn.module == "repro.rng":
            continue
        for site in project.graph.sites_in(fn.qname):
            if not site.resolved:
                continue
            callee = project.symbols.function(site.callee)
            if callee is None or callee.module == "repro.rng":
                continue
            targets = _rng_params(callee.node)
            if not targets:
                continue
            bound = callee.bind_args(site.node)
            if any(t in bound for t in targets):
                continue
            if _rng_flows_through_args(fn, site.node):
                # The stream rides inside an argument expression — e.g.
                # solve(instance, request.with_runtime(rng=rng)): the
                # SolveRequest carries the generator, so the callee never
                # falls back to fresh entropy.
                continue
            # only flag when omission means fresh entropy: the rng-ish
            # parameter is required or explicitly defaults to None
            required = False
            for t in targets:
                d = _param_default(callee.node, t)
                has_default = d is not None or _has_any_default(callee.node, t)
                if not has_default or (
                    isinstance(d, ast.Constant) and d.value is None
                ):
                    required = True
            if required:
                yield project.finding(
                    fn.path,
                    site.node,
                    "IDDE010",
                    f"'{fn.name}' holds 'rng' but calls '{callee.name}' without "
                    f"passing a stream ({'/'.join(targets)}); the callee will "
                    "fall back to a fresh, untracked generator",
                )


def _rng_flows_through_args(fn: FunctionInfo, call: ast.Call) -> bool:
    """True when an rng-holding local appears inside any argument expression.

    Covers streams threaded through carrier objects rather than a direct
    keyword — the ``idde-request/1`` pattern, where the generator enters
    the callee as ``SolveRequest.rng`` built inline at the call site.
    """
    rng_names = _rng_locals(fn)
    for arg in (*call.args, *(kw.value for kw in call.keywords)):
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in rng_names:
                return True
    return False


def _has_any_default(
    node: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> bool:
    a = node.args
    pos = [*a.posonlyargs, *a.args]
    offset = len(pos) - len(a.defaults)
    for i, p in enumerate(pos):
        if p.arg == name:
            return i >= offset
    for p, d in zip(a.kwonlyargs, a.kw_defaults):
        if p.arg == name:
            return d is not None
    return False


@rule(
    "rng-flow",
    ["IDDE010"],
    "generators/seeds must flow through parameters: no module globals, "
    "constant re-seeds, or spawn-free parallel fan-out",
    scope="project",
    explain={
        "IDDE010": (
            "Interprocedural RNG discipline, enforced over the project call "
            "graph. A generator must enter a function as a parameter and "
            "leave as an argument: module-global generators, constant "
            "re-seeds inside functions that already receive a stream, "
            "parallel_map workers that draw randomness without spawning a "
            "per-item stream, and callers that hold 'rng' but do not thread "
            "it into an rng-accepting callee are all flagged. Fix by "
            "deriving every stream from explicit provenance — "
            "spawn_rng(seed, *keys) at the top, parameters below."
        )
    },
)
def check_rng_flow(project: Project) -> Iterator[Finding]:
    yield from _check_module_globals(project)
    yield from _check_constant_reseed(project)
    yield from _check_fanout(project)
    yield from _check_unthreaded(project)
