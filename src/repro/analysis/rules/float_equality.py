"""IDDE006 — float equality in the numeric layers.

In ``core/``, ``radio/`` and ``solvers/`` an ``==`` / ``!=`` against a
float-typed expression is almost always a latent nondeterminism bug: the
potential-game convergence certificates compare benefits that differ by
ULPs across BLAS builds.  Use ``math.isclose`` / ``numpy.isclose`` with an
explicit tolerance, or restructure around integer/boolean state.

Detection is conservative: a comparison is flagged only when one side is
an explicit float literal (``0.0``, ``1.5``), a ``float(...)`` call, a
``math.*`` call, or a division — expressions whose float-ness is certain
without type inference.  Integer sentinels (``x == -1``) never trip it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..findings import Finding
from ..registry import rule
from ._ast_util import dotted_name

_LAYERS = ("core", "radio", "solvers")


def _certainly_float(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name == "float" or (name or "").startswith("math.")
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _certainly_float(node.left) or _certainly_float(node.right)
    if isinstance(node, ast.UnaryOp):
        return _certainly_float(node.operand)
    return False


@rule(
    "float-equality",
    ["IDDE006"],
    "no ==/!= against float expressions in core/, radio/, solvers/",
)
def check_float_equality(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.in_layer(*_LAYERS):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _certainly_float(left) or _certainly_float(right):
                yield ctx.finding(
                    node,
                    "IDDE006",
                    "float equality comparison is build-dependent; use "
                    "math.isclose/np.isclose with an explicit tolerance",
                )
                break
