"""Shared AST helpers for the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted_name",
    "iter_function_defs",
    "numpy_aliases",
    "module_aliases",
    "imported_names",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_aliases(tree: ast.AST, module: str) -> set[str]:
    """Local names bound to ``import module`` / ``import module as x``."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    out.add(alias.asname or module.split(".")[0])
    return out


def numpy_aliases(tree: ast.AST) -> set[str]:
    """Names that refer to the numpy top-level module (``np``, ``numpy``)."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    out.add(alias.asname or "numpy")
                elif alias.name.startswith("numpy.") and alias.asname is None:
                    out.add("numpy")
    return out


def imported_names(tree: ast.AST, module_suffix: str) -> dict[str, str]:
    """Local name -> original name for ``from <...module_suffix> import x``.

    ``module_suffix`` matches the end of the dotted module path so both
    absolute (``repro.rng``) and relative (``..rng``) imports resolve.
    """
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            mod = node.module
            if mod == module_suffix or mod.endswith("." + module_suffix):
                for alias in node.names:
                    out[alias.asname or alias.name] = alias.name
    return out
