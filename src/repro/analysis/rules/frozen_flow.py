"""IDDE013 — interprocedural escape of frozen value objects.

The per-file IDDE005 check flags mutation of a frozen instance *where the
instance is visibly frozen* (constructed in the same function from a known
frozen class).  The blind spot is aliasing: pass that instance into a
helper whose parameter is untyped and the helper's ``item.attr = ...``
looks like an innocent mutation of some mutable record.  This rule closes
the gap at the *call site*: for every function whose body assigns to an
attribute of one of its parameters (outside ``__post_init__``), every
project-wide call that binds a known-frozen instance to that parameter is
flagged.  The mutation itself would raise ``FrozenInstanceError`` at
runtime — the lint catches it before an experiment burns minutes getting
there.

Frozen-ness comes from the symbol table (``@dataclass(frozen=True)``
anywhere in the linted tree); argument types come from constructor
assignments and annotations in the caller.  The blessed alternative is for
the callee to return a new instance built with ``dataclasses.replace``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import rule
from ..semantic.callgraph import local_types, own_body
from ..semantic.project import Project
from ..semantic.symbols import FunctionInfo
from ._ast_util import dotted_name


def _mutated_params(fn: FunctionInfo) -> set[str]:
    """Parameters of ``fn`` that its own body mutates via attribute store."""
    if fn.name == "__post_init__":
        return set()
    params = {p for p in fn.params if p not in ("self", "cls")}
    out: set[str] = set()
    for node in own_body(fn.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for t in targets:
            if (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id in params
            ):
                out.add(t.value.id)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("setattr", "object.__setattr__") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id in params:
                    out.add(first.id)
    return out


@rule(
    "frozen-flow",
    ["IDDE013"],
    "frozen dataclass instances must not be aliased into callees that "
    "mutate the bound parameter",
    scope="project",
    explain={
        "IDDE013": (
            "An interprocedural escape check for frozen value objects. For "
            "every function that assigns to an attribute of one of its "
            "parameters (or setattr's it) outside __post_init__, each call "
            "site in the project that binds a known-frozen dataclass "
            "instance to that parameter is flagged — the mutation would "
            "raise FrozenInstanceError at runtime, typically deep inside an "
            "experiment. Argument types are inferred from constructor "
            "assignments and annotations in the caller; unresolvable types "
            "are ignored. Have the callee build and return a new instance "
            "with dataclasses.replace instead."
        )
    },
)
def check_frozen_flow(project: Project) -> Iterator[Finding]:
    frozen = set(project.symbols.frozen_classes())
    if not frozen:
        return
    mutated_cache: dict[str, set[str]] = {}

    for fn in project.functions():
        types = None  # computed lazily: most functions have no such call
        for site in project.graph.sites_in(fn.qname):
            if not site.resolved:
                continue
            callee = project.symbols.function(site.callee)
            if callee is None:
                continue
            if callee.qname not in mutated_cache:
                mutated_cache[callee.qname] = _mutated_params(callee)
            mutated = mutated_cache[callee.qname]
            if not mutated:
                continue
            if types is None:
                types = local_types(fn, project.symbols)
            for pname, arg in callee.bind_args(site.node).items():
                if pname not in mutated or not isinstance(arg, ast.Name):
                    continue
                cls_q = types.get(arg.id)
                if cls_q in frozen:
                    cls_name = cls_q.rsplit(".", 1)[-1]
                    yield project.finding(
                        site.path,
                        site.node,
                        "IDDE013",
                        f"frozen '{cls_name}' instance '{arg.id}' aliased into "
                        f"'{callee.name}', which assigns to parameter "
                        f"'{pname}'; this raises FrozenInstanceError at "
                        "runtime — return a dataclasses.replace copy instead",
                    )
