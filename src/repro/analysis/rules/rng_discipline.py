"""IDDE001/IDDE002 — RNG discipline.

Every stochastic draw must flow through :mod:`repro.rng` seed-spawning so
trials are reproducible across worker processes:

* **IDDE001** — direct use of the stdlib ``random`` module or of
  ``numpy.random`` factories/samplers (``default_rng``, ``seed``, legacy
  ``np.random.uniform``...) anywhere outside ``repro/rng.py``.  Call sites
  must take a :class:`numpy.random.Generator` (annotations referencing
  ``np.random.Generator`` are fine — only *calls* are flagged).
* **IDDE002** — a function that *consumes* the :mod:`repro.rng` helpers
  (``ensure_rng``/``spawn_rng``/...) without accepting an explicit
  ``rng``/``seed`` parameter: such a function is a stochastic entry point
  whose caller cannot control the stream.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..findings import Finding
from ..registry import rule
from ._ast_util import dotted_name, imported_names, iter_function_defs, numpy_aliases

#: Helpers whose presence marks a function as a stochastic entry point.
_RNG_HELPERS = {"ensure_rng", "spawn_rng", "split_rngs", "spawn_seedsequence", "seeds_for"}

#: Parameter names (or suffixes) that satisfy IDDE002.
_RNG_PARAMS = ("rng", "seed")


def _params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    a = fn.args
    return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


def _accepts_rng(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for name in _params(fn):
        if name in _RNG_PARAMS or name.endswith(("_rng", "_seed")):
            return True
    return False


def _has_seed_provenance(call: ast.Call) -> bool:
    """True when the helper call's arguments carry an explicit seed/rng —
    e.g. ``spawn_rng(spec.seed, ...)`` where the seed rides a picklable
    spec object rather than a bare parameter."""
    for arg in call.args:
        for node in ast.walk(arg):
            if isinstance(node, ast.Attribute) and (
                node.attr in _RNG_PARAMS or node.attr.endswith(("_rng", "_seed"))
            ):
                return True
    return False


def _walk_own_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function defs,
    so a closure's rng handling is attributed to the closure, not ``fn``."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@rule(
    "rng-discipline",
    ["IDDE001", "IDDE002"],
    "stochastic draws must flow through repro.rng with explicit rng/seed params",
)
def check_rng_discipline(ctx: FileContext) -> Iterator[Finding]:
    if ctx.module_parts == ("rng",):
        return  # repro/rng.py is the one place allowed to touch numpy.random

    np_names = numpy_aliases(ctx.tree)

    # --- IDDE001: imports of the stdlib random module -------------------
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield ctx.finding(
                        node,
                        "IDDE001",
                        "stdlib 'random' is seedless across processes; "
                        "use repro.rng.spawn_rng/ensure_rng instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if node.level == 0 and (mod == "random" or mod.startswith("random.")):
                yield ctx.finding(
                    node,
                    "IDDE001",
                    "import from stdlib 'random'; use repro.rng helpers instead",
                )
            if node.level == 0 and (mod == "numpy.random" or mod.startswith("numpy.random.")):
                yield ctx.finding(
                    node,
                    "IDDE001",
                    "import from numpy.random outside repro/rng.py; "
                    "accept a Generator or use repro.rng helpers",
                )

    # --- IDDE001: calls into numpy.random.* -----------------------------
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) >= 3 and parts[0] in np_names and parts[1] == "random":
            yield ctx.finding(
                node,
                "IDDE001",
                f"direct call to {name}() outside repro/rng.py breaks seed-spawning "
                "reproducibility; use repro.rng.ensure_rng/spawn_rng",
            )

    # --- IDDE002: stochastic entry points must take rng/seed ------------
    rng_imports = set(imported_names(ctx.tree, "rng")) | set(
        imported_names(ctx.tree, "repro.rng")
    )
    helper_names = rng_imports & _RNG_HELPERS
    for fn in iter_function_defs(ctx.tree):
        if _accepts_rng(fn):
            continue
        for node in _walk_own_body(fn):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            base = name.split(".")[-1] if name else None
            if (
                base in _RNG_HELPERS
                and (base in helper_names or "." in (name or ""))
                and not _has_seed_provenance(node)
            ):
                yield ctx.finding(
                    node,
                    "IDDE002",
                    f"function '{fn.name}' draws randomness via {base}() but has no "
                    "explicit rng/seed parameter; callers cannot control the stream",
                )
                break  # one finding per function is enough
