"""Built-in lint rules.  Importing this package registers every rule with
:mod:`repro.analysis.registry`; add new rule modules to the import list
below and document their codes in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    determinism,
    float_equality,
    frozen_mutation,
    layering,
    rng_discipline,
    unit_honesty,
)

__all__ = [
    "determinism",
    "float_equality",
    "frozen_mutation",
    "layering",
    "rng_discipline",
    "unit_honesty",
]
