"""Built-in lint rules.  Importing this package registers every rule with
:mod:`repro.analysis.registry`; add new rule modules to the import list
below and document their codes in ``docs/STATIC_ANALYSIS.md``.

The first six modules are per-file (``scope="file"``); the last four are
the interprocedural families built on :mod:`repro.analysis.semantic`
(``scope="project"``).
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    determinism,
    float_equality,
    frozen_flow,
    frozen_mutation,
    layering,
    parallel_safety,
    rng_discipline,
    rng_flow,
    unit_flow,
    unit_honesty,
)

__all__ = [
    "determinism",
    "float_equality",
    "frozen_flow",
    "frozen_mutation",
    "layering",
    "parallel_safety",
    "rng_discipline",
    "rng_flow",
    "unit_flow",
    "unit_honesty",
]
