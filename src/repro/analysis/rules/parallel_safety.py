"""IDDE012 — parallel-safety of fan-out workers.

``parallel_map`` may cross a process boundary: the worker callable is
pickled, runs in a child, and any state it mutates dies with that child.
This rule resolves the worker argument of every fan-out call site
(:data:`repro.parallel.pool.PARALLEL_ENTRY_POINTS`) through the symbol
table and flags:

* **unpicklable workers** — lambdas and nested (closure) functions cannot
  cross a process boundary at all;
* **module-state writes** — a worker using ``global`` to rebind, or
  mutating a module-level container (``RESULTS.append(...)``,
  ``CACHE[k] = v``): the write lands in the child's copy and silently
  vanishes from the parent;
* **captured tracers** — a worker touching a module-level tracer/observer
  instance: events recorded in the child never reach the parent's sink.

Workers that only *read* module constants, or that communicate purely via
arguments and return values, pass.  Unresolvable worker references (e.g.
a callable parameter) are conservatively ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.parallel.pool import PARALLEL_ENTRY_POINTS

from ..findings import Finding
from ..registry import rule
from ..semantic.project import Project
from ..semantic.symbols import LOCALS_MARK, FunctionInfo, ModuleInfo
from ._ast_util import dotted_name

#: Container methods that mutate the receiver in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
}

#: Constructors whose module-level result is an observer/tracer handle.
_TRACER_FACTORIES = {"ensure_tracer", "Tracer", "JsonlTracer", "start_tracer"}


def _module_mutables(mod: ModuleInfo) -> set[str]:
    """Module-level names bound to (likely) mutable containers."""
    out: set[str] = set()
    for name, expr in mod.assigns.items():
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)):
            out.add(name)
        elif isinstance(expr, ast.Call):
            base = (dotted_name(expr.func) or "").rsplit(".", 1)[-1]
            if base in {"list", "dict", "set", "defaultdict", "deque", "Counter"}:
                out.add(name)
    return out


def _module_tracers(mod: ModuleInfo) -> set[str]:
    out: set[str] = set()
    for name, expr in mod.assigns.items():
        if isinstance(expr, ast.Call):
            base = (dotted_name(expr.func) or "").rsplit(".", 1)[-1]
            if base in _TRACER_FACTORIES:
                out.add(name)
    return out


def _local_names(fn: FunctionInfo) -> set[str]:
    """Names shadowed inside the worker (params + local bindings)."""
    names = set(fn.params)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif isinstance(node, ast.Global):
            names.difference_update(node.names)  # explicitly module-scoped
    return names


def _worker_findings(
    project: Project, worker: FunctionInfo
) -> Iterator[tuple[ast.AST, str]]:
    mod = project.symbols.modules.get(worker.module)
    if mod is None:
        return
    mutables = _module_mutables(mod)
    tracers = _module_tracers(mod)
    locals_ = _local_names(worker)
    globals_declared: set[str] = set()

    for node in ast.walk(worker.node):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)

    for node in ast.walk(worker.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Name) and t.id in globals_declared:
                    yield (
                        node,
                        f"worker '{worker.name}' rebinds module-global "
                        f"'{t.id}'; the write stays in the child process",
                    )
                elif (
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id in mutables
                    and t.value.id not in locals_
                ):
                    yield (
                        node,
                        f"worker '{worker.name}' stores into captured "
                        f"module-level container '{t.value.id}'; results "
                        "must travel via return values",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if (
                isinstance(recv, ast.Name)
                and recv.id not in locals_
                and node.func.attr in _MUTATORS
                and recv.id in mutables
            ):
                yield (
                    node,
                    f"worker '{worker.name}' mutates captured module-level "
                    f"container '{recv.id}.{node.func.attr}(...)'; the "
                    "mutation is lost when the child exits",
                )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in tracers and node.id not in locals_:
                yield (
                    node,
                    f"worker '{worker.name}' captures module-level tracer "
                    f"'{node.id}'; events recorded in a child process never "
                    "reach the parent's sink",
                )


@rule(
    "parallel-safety",
    ["IDDE012"],
    "parallel_map workers must be picklable and must not write captured "
    "module state or tracers",
    scope="project",
    explain={
        "IDDE012": (
            "Callables fanned out via repro.parallel.parallel_map may run "
            "in worker processes: they are pickled by reference, so lambdas "
            "and nested functions fail outright, and any module state they "
            "mutate is a child-process copy whose changes are silently "
            "discarded. Flagged are unpicklable worker references, 'global' "
            "rebinding or container mutation of captured module-level "
            "names, and capture of module-level tracer handles. Communicate "
            "through arguments and return values only — parallel_map "
            "preserves result order for exactly this reason."
        )
    },
)
def check_parallel_safety(project: Project) -> Iterator[Finding]:
    from ..semantic.callgraph import resolve_callable_ref

    seen_workers: set[str] = set()
    for site in project.graph.sites:
        idx = PARALLEL_ENTRY_POINTS.get(site.callee.rsplit(".", 1)[-1])
        if idx is None or len(site.node.args) <= idx:
            continue
        ref = site.node.args[idx]
        if isinstance(ref, ast.Lambda):
            yield project.finding(
                site.path,
                ref,
                "IDDE012",
                "lambda passed to a parallel entry point cannot be pickled "
                "for process fan-out; define a module-level function",
            )
            continue
        caller = project.symbols.function(site.caller)
        if caller is None:
            continue
        worker_q = resolve_callable_ref(caller, project.symbols, ref)
        if worker_q is None:
            continue
        if LOCALS_MARK in worker_q:
            name = worker_q.rsplit(".", 1)[-1]
            yield project.finding(
                site.path,
                ref,
                "IDDE012",
                f"nested function '{name}' passed to a parallel entry point "
                "captures its closure and cannot be pickled; hoist it to "
                "module level",
            )
            continue
        worker = project.symbols.function(worker_q)
        if worker is None or worker.qname in seen_workers:
            continue
        seen_workers.add(worker.qname)
        for node, message in _worker_findings(project, worker):
            yield project.finding(worker.path, node, "IDDE012", message)
