"""IDDE009 — the import DAG between package layers.

The architecture keeps the numeric heart of the reproduction free of
presentation and harness concerns, and the scenario builders free of
solution methods:

* ``core/`` and ``radio/`` must not import ``experiments``, ``viz``, ``cli``
  (model code never reaches up into the harness);
* ``datasets/`` and ``topology/`` must not import ``solvers``, ``baselines``
  (instance generation is solver-agnostic so new solvers cannot bias it);
* ``bench/`` must not import ``experiments``, ``viz``, ``cli`` (the
  measurement substrate times kernels, never the reporting harness that
  wraps them);
* ``sharding/`` must not import ``experiments``, ``viz``, ``cli``,
  ``bench`` (the decomposition solver is model code: the harness and the
  benchmarks drive it, never the other way around);
* ``serve/`` must not import ``experiments``, ``viz``, ``cli``, ``bench``,
  ``analysis`` (the daemon wraps the façade and the workload fold; the
  CLI boots it and the benchmarks time it, never the reverse);
* ``obs/`` must not import any domain layer — ``core``, ``radio``,
  ``solvers``, ``baselines``, ``datasets``, ``topology``, ``bench``,
  ``experiments``, ``viz``, ``cli`` (the tracing substrate sits below
  everything it observes; only ``io``/``units``/``errors`` are beneath it);
* ``analysis/`` must not import any domain layer either — the linter
  reasons *about* the codebase syntactically and must never execute it;
  only the convention modules (``units``, ``parallel``) and ``errors``
  are fair game.

Both absolute (``repro.experiments``) and relative (``..experiments``)
imports are resolved before checking.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..findings import Finding
from ..registry import rule

#: source layer -> repro top-level segments it must not import.
FORBIDDEN: dict[str, frozenset[str]] = {
    "core": frozenset({"experiments", "viz", "cli"}),
    "radio": frozenset({"experiments", "viz", "cli"}),
    "datasets": frozenset({"solvers", "baselines"}),
    "topology": frozenset({"solvers", "baselines"}),
    "bench": frozenset({"experiments", "viz", "cli"}),
    "workload": frozenset({"experiments", "viz", "cli", "bench"}),
    "sharding": frozenset({"experiments", "viz", "cli", "bench"}),
    "serve": frozenset({"experiments", "viz", "cli", "bench", "analysis"}),
    "obs": frozenset(
        {
            "core",
            "radio",
            "solvers",
            "baselines",
            "datasets",
            "topology",
            "bench",
            "experiments",
            "viz",
            "cli",
        }
    ),
    "analysis": frozenset(
        {
            "core",
            "radio",
            "solvers",
            "baselines",
            "datasets",
            "topology",
            "bench",
            "experiments",
            "viz",
            "cli",
            "dynamics",
            "obs",
        }
    ),
}


def _package_parts(ctx: FileContext) -> tuple[str, ...]:
    """Dotted package containing this module: ("repro", "core") for
    ``repro/core/game.py`` and for ``repro/core/__init__.py``."""
    parts = ("repro", *ctx.module_parts)
    filename = ctx.repro_parts[-1] if ctx.repro_parts else ""
    if filename != "__init__.py" and len(parts) > 1:
        parts = parts[:-1]
    return parts


def _resolve_target(ctx: FileContext, node: ast.ImportFrom | ast.Import) -> list[str]:
    """The repro top-level segment(s) an import statement reaches."""
    segments: list[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                segments.append(parts[1])
        return segments
    # ImportFrom: resolve relative levels against the enclosing package.
    if node.level == 0:
        parts = (node.module or "").split(".")
        if parts and parts[0] == "repro" and len(parts) > 1:
            segments.append(parts[1])
        return segments
    package = _package_parts(ctx)
    if node.level - 1 > len(package):
        return segments  # beyond the package root; not ours to judge
    base = package[: len(package) - (node.level - 1)]
    mod_parts = (node.module or "").split(".") if node.module else []
    resolved = [*base, *mod_parts]
    if resolved and resolved[0] == "repro":
        if len(resolved) > 1:
            segments.append(resolved[1])
        else:
            # ``from .. import x`` at repro top level: each name is a segment.
            segments.extend(alias.name for alias in node.names)
    return segments


@rule(
    "layering",
    ["IDDE009"],
    "enforce the import DAG: core/radio below experiments/viz/cli; "
    "datasets/topology below solvers/baselines",
)
def check_layering(ctx: FileContext) -> Iterator[Finding]:
    forbidden = FORBIDDEN.get(ctx.layer or "")
    if not forbidden:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for segment in _resolve_target(ctx, node):
            seg = segment[:-3] if segment.endswith(".py") else segment
            if seg in forbidden:
                yield ctx.finding(
                    node,
                    "IDDE009",
                    f"layer '{ctx.layer}' must not import repro.{seg} "
                    "(see the import DAG in docs/STATIC_ANALYSIS.md)",
                )
