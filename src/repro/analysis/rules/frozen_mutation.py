"""IDDE005 — mutation of frozen value types.

The per-entity views in :mod:`repro.types` (``EdgeServer``, ``User``,
``DataItem``) and the frozen result/config dataclasses throughout the
package are value objects: mutating one (via ``object.__setattr__`` or a
tracked instance attribute assignment) silently desynchronises it from the
arrays-first :class:`~repro.types.Scenario` state.  The blessed escape
hatches are ``dataclasses.replace`` and ``__post_init__``.

Detection is intentionally conservative (no type inference): flagged are

* ``object.__setattr__(...)`` anywhere outside a ``__post_init__`` body;
* attribute assignment on a local variable that was bound from a call to a
  known frozen class — classes defined frozen in the linted file itself,
  or imported from :mod:`repro.types`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..findings import Finding
from ..registry import rule
from ._ast_util import dotted_name, imported_names, iter_function_defs

#: Frozen dataclasses living in repro.types (the per-entity views).
_TYPES_FROZEN = {"EdgeServer", "User", "DataItem"}


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call) and (dotted_name(dec.func) or "").endswith(
            "dataclass"
        ):
            for kw in dec.keywords:
                if (
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def _local_frozen_classes(tree: ast.AST) -> set[str]:
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node)
    }


@rule(
    "frozen-mutation",
    ["IDDE005"],
    "no attribute assignment on frozen value types outside __post_init__/replace",
)
def check_frozen_mutation(ctx: FileContext) -> Iterator[Finding]:
    frozen = set(_local_frozen_classes(ctx.tree))
    imported = imported_names(ctx.tree, "types")
    frozen.update(
        local for local, orig in imported.items() if orig in _TYPES_FROZEN
    )

    # --- object.__setattr__ outside __post_init__ -----------------------
    post_init_nodes: set[int] = set()
    for fn in iter_function_defs(ctx.tree):
        if fn.name == "__post_init__":
            post_init_nodes.update(id(n) for n in ast.walk(fn))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or id(node) in post_init_nodes:
            continue
        if dotted_name(node.func) == "object.__setattr__":
            yield ctx.finding(
                node,
                "IDDE005",
                "object.__setattr__ outside __post_init__ mutates a frozen "
                "instance; build a new one with dataclasses.replace",
            )

    # --- attribute assignment on tracked frozen instances ---------------
    for fn in iter_function_defs(ctx.tree):
        bound: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and (dotted_name(value.func) or "").split(".")[-1] in frozen
                ):
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            bound.add(t.id)
                    continue
                for t in node.targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id in bound
                    ):
                        yield ctx.finding(
                            node,
                            "IDDE005",
                            f"attribute assignment on frozen instance "
                            f"'{t.value.id}.{t.attr}'; use dataclasses.replace",
                        )
                    elif isinstance(t, ast.Name) and t.id in bound:
                        bound.discard(t.id)  # rebound to something else
