"""Rule registry: every lint rule registers itself via the :func:`rule`
decorator so the engine, the CLI ``--list-rules`` output and the docs test
all see one authoritative table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import FileContext
    from .findings import Finding

RuleFunc = Callable[["FileContext"], Iterator["Finding"]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: a check function plus the codes it may emit."""

    name: str
    codes: tuple[str, ...]
    summary: str
    func: RuleFunc = field(repr=False)


#: Registry of all rules, keyed by rule name, in registration order.
RULES: dict[str, Rule] = {}


def rule(name: str, codes: Iterable[str], summary: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register a rule function under ``name`` emitting ``codes``.

    Codes must be globally unique across rules (``IDDE001``-style) — the
    suppression and baseline machinery is code-keyed.
    """

    def decorate(func: RuleFunc) -> RuleFunc:
        codes_t = tuple(codes)
        if name in RULES:
            raise ValueError(f"duplicate rule name {name!r}")
        taken = {c for r in RULES.values() for c in r.codes}
        dup = taken.intersection(codes_t)
        if dup:
            raise ValueError(f"rule {name!r} reuses codes {sorted(dup)}")
        RULES[name] = Rule(name=name, codes=codes_t, summary=summary, func=func)
        return func

    return decorate


def all_codes() -> list[str]:
    """Every registered rule code, sorted."""
    return sorted(c for r in RULES.values() for c in r.codes)
