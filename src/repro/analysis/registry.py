"""Rule registry: every lint rule registers itself via the :func:`rule`
decorator so the engine, the CLI ``--list-rules``/``--explain`` output and
the docs drift test all see one authoritative table.

Rules come in two scopes:

* ``"file"`` — the function receives one :class:`~repro.analysis.engine.
  FileContext` and is called once per linted file (IDDE001–IDDE009);
* ``"project"`` — the function receives one :class:`~repro.analysis.
  semantic.project.Project` built over *every* linted file and is called
  once per run (the interprocedural families IDDE010–IDDE013).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import FileContext
    from .findings import Finding
    from .semantic.project import Project

FileRuleFunc = Callable[["FileContext"], Iterator["Finding"]]
ProjectRuleFunc = Callable[["Project"], Iterator["Finding"]]
RuleFunc = FileRuleFunc  # backwards-compatible alias

SCOPES = ("file", "project")

_EMPTY_EXPLAIN: Mapping[str, str] = MappingProxyType({})


@dataclass(frozen=True)
class Rule:
    """One registered rule: a check function plus the codes it may emit."""

    name: str
    codes: tuple[str, ...]
    summary: str
    func: Callable = field(repr=False)
    scope: str = "file"
    #: optional per-code long-form documentation for ``--explain``
    explain: Mapping[str, str] = field(
        default_factory=lambda: _EMPTY_EXPLAIN, repr=False
    )


#: Registry of all rules, keyed by rule name, in registration order.
RULES: dict[str, Rule] = {}


def rule(
    name: str,
    codes: Iterable[str],
    summary: str,
    *,
    scope: str = "file",
    explain: Mapping[str, str] | None = None,
) -> Callable[[Callable], Callable]:
    """Register a rule function under ``name`` emitting ``codes``.

    Codes must be globally unique across rules (``IDDE001``-style) — the
    suppression and baseline machinery is code-keyed.  ``scope`` selects
    the engine pass the rule runs in; ``explain`` optionally maps each
    code to the long-form text ``idde lint --explain CODE`` prints (the
    rule module's docstring is the fallback).
    """
    if scope not in SCOPES:
        raise ValueError(f"rule {name!r} has unknown scope {scope!r}; use one of {SCOPES}")

    def decorate(func: Callable) -> Callable:
        codes_t = tuple(codes)
        if name in RULES:
            raise ValueError(f"duplicate rule name {name!r}")
        taken = {c for r in RULES.values() for c in r.codes}
        dup = taken.intersection(codes_t)
        if dup:
            raise ValueError(f"rule {name!r} reuses codes {sorted(dup)}")
        RULES[name] = Rule(
            name=name,
            codes=codes_t,
            summary=summary,
            func=func,
            scope=scope,
            explain=MappingProxyType(dict(explain)) if explain else _EMPTY_EXPLAIN,
        )
        return func

    return decorate


def file_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.scope == "file"]


def project_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.scope == "project"]


def all_codes() -> list[str]:
    """Every registered rule code, sorted."""
    return sorted(c for r in RULES.values() for c in r.codes)


def rule_for_code(code: str) -> Rule | None:
    """The rule owning ``code`` (``IDDE0NN``), or ``None``."""
    code = code.strip().upper()
    for r in RULES.values():
        if code in r.codes:
            return r
    return None


def explain_code(code: str) -> str | None:
    """Long-form documentation for one code, for ``--explain``.

    Prefers the rule's per-code ``explain`` text; falls back to the rule
    module's docstring, which documents every code the module emits.
    """
    r = rule_for_code(code)
    if r is None:
        return None
    code = code.strip().upper()
    header = f"{code} [{r.name}, scope={r.scope}] — {r.summary}"
    body = r.explain.get(code)
    if body is None:
        mod = sys.modules.get(r.func.__module__)
        body = (mod.__doc__ or "").strip() if mod else ""
    return f"{header}\n\n{body.strip()}" if body else header
