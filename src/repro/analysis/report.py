"""Render lint findings as a human-readable report or JSON document."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Sequence

from .findings import Finding
from .registry import RULES

__all__ = [
    "render_text",
    "render_json",
    "render_rule_table",
    "render_rule_catalog_md",
    "doc_catalog_problems",
    "CATALOG_BEGIN",
    "CATALOG_END",
]

#: Markers delimiting the generated rule catalog in docs/STATIC_ANALYSIS.md.
CATALOG_BEGIN = "<!-- BEGIN RULE CATALOG (generated: idde lint --doc-check) -->"
CATALOG_END = "<!-- END RULE CATALOG -->"


def render_text(findings: Sequence[Finding], *, baselined: int = 0) -> str:
    """One line per finding plus a per-code summary footer."""
    lines = [f.render() for f in findings]
    by_code = Counter(f.code for f in findings)
    if findings:
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(by_code.items()))
        lines.append(f"found {len(findings)} finding(s) ({summary})")
    else:
        lines.append("no findings")
    if baselined:
        lines.append(f"({baselined} baselined finding(s) suppressed)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *, baselined: int = 0) -> str:
    """Stable JSON schema for tooling::

        {"version": 1,
         "summary": {"total": int, "baselined": int, "by_code": {code: int}},
         "findings": [{"path", "line", "col", "code", "message", "snippet"}]}
    """
    doc = {
        "version": 1,
        "summary": {
            "total": len(findings),
            "baselined": baselined,
            "by_code": dict(sorted(Counter(f.code for f in findings).items())),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2)


def render_rule_table(names: Iterable[str] | None = None) -> str:
    """``--list-rules`` output: one line per registered rule."""
    rules = RULES.values() if names is None else [RULES[n] for n in names]
    return "\n".join(
        f"{', '.join(r.codes):<18} {r.name:<18} {r.scope:<8} {r.summary}"
        for r in rules
    )


def render_rule_catalog_md() -> str:
    """The generated markdown rule-catalog table for the docs.

    The exact text between :data:`CATALOG_BEGIN` and :data:`CATALOG_END` in
    ``docs/STATIC_ANALYSIS.md`` — regenerate with ``idde lint --doc-check
    --format json`` output or by pasting this function's result.
    """
    lines = [
        "| codes | rule | scope | summary |",
        "|---|---|---|---|",
    ]
    for r in RULES.values():
        codes = ", ".join(r.codes)
        lines.append(f"| {codes} | {r.name} | {r.scope} | {r.summary} |")
    return "\n".join(lines)


def doc_catalog_problems(doc_text: str) -> list[str]:
    """Drift problems between the docs and the live registry, if any.

    Checks that the generated catalog block exists and matches
    :func:`render_rule_catalog_md` exactly, and that every registered code
    has a ``### IDDE0NN`` section.  Returns human-readable problem strings;
    empty means the docs are in sync.
    """
    problems: list[str] = []
    begin = doc_text.find(CATALOG_BEGIN)
    end = doc_text.find(CATALOG_END)
    if begin == -1 or end == -1 or end < begin:
        problems.append(
            f"missing catalog markers {CATALOG_BEGIN!r} / {CATALOG_END!r}"
        )
    else:
        block = doc_text[begin + len(CATALOG_BEGIN) : end].strip()
        expected = render_rule_catalog_md()
        if block != expected:
            problems.append(
                "rule catalog is out of date; regenerate it from "
                "repro.analysis.report.render_rule_catalog_md()"
            )
    for r in RULES.values():
        for code in r.codes:
            if f"### {code}" not in doc_text:
                problems.append(f"no '### {code}' section documents {code}")
    return problems
