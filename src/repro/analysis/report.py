"""Render lint findings as a human-readable report or JSON document."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Sequence

from .findings import Finding
from .registry import RULES

__all__ = ["render_text", "render_json", "render_rule_table"]


def render_text(findings: Sequence[Finding], *, baselined: int = 0) -> str:
    """One line per finding plus a per-code summary footer."""
    lines = [f.render() for f in findings]
    by_code = Counter(f.code for f in findings)
    if findings:
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(by_code.items()))
        lines.append(f"found {len(findings)} finding(s) ({summary})")
    else:
        lines.append("no findings")
    if baselined:
        lines.append(f"({baselined} baselined finding(s) suppressed)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *, baselined: int = 0) -> str:
    """Stable JSON schema for tooling::

        {"version": 1,
         "summary": {"total": int, "baselined": int, "by_code": {code: int}},
         "findings": [{"path", "line", "col", "code", "message", "snippet"}]}
    """
    doc = {
        "version": 1,
        "summary": {
            "total": len(findings),
            "baselined": baselined,
            "by_code": dict(sorted(Counter(f.code for f in findings).items())),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2)


def render_rule_table(names: Iterable[str] | None = None) -> str:
    """``--list-rules`` output: one line per registered rule."""
    rules = RULES.values() if names is None else [RULES[n] for n in names]
    return "\n".join(f"{', '.join(r.codes):<18} {r.name:<20} {r.summary}" for r in rules)
