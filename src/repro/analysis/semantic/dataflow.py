"""A small forward dataflow framework over the call graph.

Two layers:

* :func:`fixpoint_summaries` — interprocedural: compute one *summary* per
  function with a work-list that re-analyzes callers whenever a callee's
  summary changes.  Summaries must be comparable (``==``) and the analyze
  function monotone, so recursion and mutual recursion converge; a
  generous iteration cap guards against a non-monotone analyzer looping.

* :class:`TagInterpreter` — intraprocedural: an abstract interpreter over
  a lattice of *tag sets* (``frozenset[str]``).  Statements are walked in
  source order; branches are analyzed with copies of the environment and
  joined (set union) at the merge point; loop bodies run twice so a tag
  flowing around the back edge is observed.  Subclasses override
  :meth:`eval_expr` to give expressions meaning and may emit findings via
  the hooks while walking.
"""

from __future__ import annotations

import ast
from typing import Callable, Generic, Iterable, TypeVar

from .callgraph import CallGraph
from .symbols import FunctionInfo

__all__ = ["fixpoint_summaries", "TagInterpreter", "Tags", "NO_TAGS"]

S = TypeVar("S")

#: The lattice element: a set of abstract tags; union is the join.
Tags = frozenset
NO_TAGS: frozenset[str] = frozenset()

#: Safety cap: no real project needs anywhere near this many rounds.
_MAX_ROUNDS_PER_FUNCTION = 50


def fixpoint_summaries(
    functions: dict[str, FunctionInfo],
    graph: CallGraph,
    analyze: Callable[[FunctionInfo, dict[str, S]], S],
    *,
    initial: Callable[[FunctionInfo], S],
) -> dict[str, S]:
    """Run ``analyze`` over every function until summaries stabilise.

    ``analyze(fn, summaries)`` may consult any callee's current summary;
    when a function's summary changes, all its in-graph callers are
    re-queued.  Convergence is guaranteed for monotone analyzers on
    finite lattices; a per-function round cap backstops the rest.
    """
    summaries: dict[str, S] = {q: initial(fn) for q, fn in functions.items()}
    rounds: dict[str, int] = {}
    worklist: list[str] = sorted(functions)
    queued = set(worklist)
    while worklist:
        qname = worklist.pop()
        queued.discard(qname)
        fn = functions[qname]
        rounds[qname] = rounds.get(qname, 0) + 1
        if rounds[qname] > _MAX_ROUNDS_PER_FUNCTION:
            continue
        new = analyze(fn, summaries)
        if new != summaries[qname]:
            summaries[qname] = new
            for caller in graph.callers(qname):
                if caller in functions and caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)
    return summaries


class TagInterpreter(Generic[S]):
    """Structured abstract interpretation of one function body.

    Drives the statement walk and environment bookkeeping; subclasses
    provide expression evaluation (:meth:`eval_expr`) and may override the
    statement hooks (:meth:`on_assign`, :meth:`on_return`, :meth:`on_stmt`)
    to emit findings.  The environment maps local names to tag sets.
    """

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.return_tags: frozenset[str] = NO_TAGS

    # ------------------------------------------------------------------
    # subclass surface
    # ------------------------------------------------------------------
    def initial_env(self) -> dict[str, frozenset[str]]:
        return {}

    def eval_expr(self, node: ast.expr, env: dict[str, frozenset[str]]) -> frozenset[str]:
        raise NotImplementedError

    def on_assign(
        self,
        target: ast.expr,
        value: ast.expr,
        tags: frozenset[str],
        env: dict[str, frozenset[str]],
        node: ast.stmt,
    ) -> frozenset[str]:
        """Hook before binding; returns the tags actually bound."""
        return tags

    def on_return(
        self, node: ast.Return, tags: frozenset[str], env: dict[str, frozenset[str]]
    ) -> None:
        pass

    def on_stmt(self, node: ast.stmt, env: dict[str, frozenset[str]]) -> None:
        pass

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> frozenset[str]:
        """Interpret the function body; returns the joined return tags."""
        env = self.initial_env()
        self._exec_block(self.fn.node.body, env)
        return self.return_tags

    def _bind(self, target: ast.expr, tags: frozenset[str], env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, NO_TAGS, env)
        # attribute/subscript targets don't enter the local environment

    @staticmethod
    def _join_env(a: dict[str, frozenset[str]], b: dict[str, frozenset[str]]) -> dict:
        out = dict(a)
        for k, v in b.items():
            out[k] = out.get(k, NO_TAGS) | v
        return out

    def _exec_block(self, body: Iterable[ast.stmt], env: dict) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: dict) -> None:
        self.on_stmt(stmt, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are separate functions in the table
        if isinstance(stmt, ast.Assign):
            tags = self.eval_expr(stmt.value, env)
            for target in stmt.targets:
                bound = self.on_assign(target, stmt.value, tags, env, stmt)
                self._bind(target, bound, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                tags = self.eval_expr(stmt.value, env)
                bound = self.on_assign(stmt.target, stmt.value, tags, env, stmt)
                self._bind(stmt.target, bound, env)
        elif isinstance(stmt, ast.AugAssign):
            tags = self.eval_expr(
                ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value), env
            ) if isinstance(stmt.target, ast.Name) else self.eval_expr(stmt.value, env)
            self._bind(stmt.target, tags, env)
        elif isinstance(stmt, ast.Return):
            tags = self.eval_expr(stmt.value, env) if stmt.value is not None else NO_TAGS
            self.on_return(stmt, tags, env)
            self.return_tags = self.return_tags | tags
        elif isinstance(stmt, (ast.Expr, ast.Assert)):
            value = stmt.value if isinstance(stmt, ast.Expr) else stmt.test
            self.eval_expr(value, env)
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            merged = self._join_env(then_env, else_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = self.eval_expr(stmt.iter, env)
            for _ in range(2):  # twice: observe tags around the back edge
                self._bind(stmt.target, iter_tags, env)
                body_env = dict(env)
                self._exec_block(stmt.body, body_env)
                merged = self._join_env(env, body_env)
                env.clear()
                env.update(merged)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            for _ in range(2):
                self.eval_expr(stmt.test, env)
                body_env = dict(env)
                self._exec_block(stmt.body, body_env)
                merged = self._join_env(env, body_env)
                env.clear()
                env.update(merged)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self.eval_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tags, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            merged = self._join_env(env, body_env)
            for handler in stmt.handlers:
                h_env = dict(merged)
                self._exec_block(handler.body, h_env)
                merged = self._join_env(merged, h_env)
            env.clear()
            env.update(merged)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval_expr(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Pass/Break/Continue/Import/Global/Nonlocal: no dataflow effect
