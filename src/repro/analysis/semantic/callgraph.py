"""Project call graph over the symbol table.

Each function body is walked once (without descending into nested defs —
those are nodes of their own); every ``ast.Call`` is resolved through the
:class:`~repro.analysis.semantic.symbols.SymbolTable`:

* bare names — local nested defs, module functions, import aliases;
* dotted names — module-attribute chains through aliased imports and
  re-exports (``core.IddeUGame(...)``);
* ``self.method(...)`` — the enclosing class's method;
* ``var.method(...)`` — methods on locals whose type is known from a
  constructor assignment (``eng = SinrEngine(...)``) or an annotation.

Calls that construct a known class resolve to the class qname (the edge
target for ``__init__``-style reasoning); unresolvable calls keep their
dotted spelling (``numpy.einsum``) with ``resolved=False`` so rules can
still pattern-match external targets conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .symbols import LOCALS_MARK, FunctionInfo, SymbolTable

__all__ = ["CallSite", "CallGraph", "build_call_graph", "local_types", "own_body"]


@dataclass
class CallSite:
    """One call expression inside a function body."""

    caller: str  #: qualified name of the enclosing function
    callee: str  #: canonical qname (resolved) or dotted spelling (not)
    node: ast.Call
    path: str
    resolved: bool = False
    #: for ``var.method()`` calls: the receiver variable name, else None
    receiver: str | None = None


@dataclass
class CallGraph:
    """Resolved call edges plus every raw call site."""

    sites: list[CallSite] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)
    reverse: dict[str, set[str]] = field(default_factory=dict)
    _by_caller: dict[str, list[CallSite]] = field(default_factory=dict, repr=False)

    def add(self, site: CallSite) -> None:
        self.sites.append(site)
        self._by_caller.setdefault(site.caller, []).append(site)
        if site.resolved:
            self.edges.setdefault(site.caller, set()).add(site.callee)
            self.reverse.setdefault(site.callee, set()).add(site.caller)

    def callees(self, qname: str) -> set[str]:
        return self.edges.get(qname, set())

    def callers(self, qname: str) -> set[str]:
        return self.reverse.get(qname, set())

    def sites_in(self, qname: str) -> list[CallSite]:
        return self._by_caller.get(qname, [])

    def sites_calling(self, callee: str) -> Iterator[CallSite]:
        for site in self.sites:
            if site.callee == callee:
                yield site

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        nodes = sorted(set(self.edges) | {c for cs in self.edges.values() for c in cs})
        return {
            "schema": "idde-callgraph/1",
            "nodes": nodes,
            "edges": [
                {"from": src, "to": dst}
                for src in sorted(self.edges)
                for dst in sorted(self.edges[src])
            ],
            "unresolved_calls": sum(1 for s in self.sites if not s.resolved),
        }

    def to_dot(self) -> str:
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box, fontsize=9];"]
        for src in sorted(self.edges):
            for dst in sorted(self.edges[src]):
                lines.append(f'  "{src}" -> "{dst}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


def own_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_name(node: ast.expr | None) -> str | None:
    """The dotted class reference inside an annotation, unwrapping
    ``Optional[X]``/``X | None`` and string annotations."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            name = _annotation_name(side)
            if name is not None and name != "None":
                return name
        return None
    if isinstance(node, ast.Subscript):
        outer = _dotted(node.value)
        if outer and outer.split(".")[-1] in ("Optional", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_name(inner)
        return None
    name = _dotted(node)
    return None if name == "None" else name


def local_types(
    fn: FunctionInfo, table: SymbolTable
) -> dict[str, str]:
    """Map of local variable name -> class qname, where inferable.

    Sources: parameter annotations, ``x: C = ...`` / ``x = C(...)``
    assignments whose class resolves in the symbol table, and ``self``
    inside methods.  A name assigned twice with different types (or later
    from an unknown expression) is dropped — only stable bindings count.
    """
    out: dict[str, str] = {}
    poisoned: set[str] = set()

    def record(name: str, cls_q: str | None) -> None:
        if cls_q is None or table.class_(cls_q) is None:
            poisoned.add(name)
            out.pop(name, None)
            return
        if name in poisoned or (name in out and out[name] != cls_q):
            poisoned.add(name)
            out.pop(name, None)
            return
        out[name] = cls_q

    if fn.is_method and fn.cls and fn.params and fn.params[0] == "self":
        out["self"] = fn.cls

    for p in fn.params:
        ann = _annotation_name(fn.param_annotation(p))
        if ann is not None:
            cls_q = table.resolve(fn.module, ann)
            if table.class_(cls_q) is not None:
                out[p] = cls_q  # annotations are declarations, not poisoned
    for node in own_body(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if not isinstance(t, ast.Name):
                continue
            if isinstance(node.value, ast.Call):
                callee = table.resolve(fn.module, _dotted(node.value.func) or "")
                record(t.id, callee if table.class_(callee) else None)
            else:
                record(t.id, None)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ann = _annotation_name(node.annotation)
            cls_q = table.resolve(fn.module, ann) if ann else None
            if table.class_(cls_q) is not None:
                out[node.target.id] = cls_q  # type: ignore[index]
    return out


def resolve_callable_ref(
    fn: FunctionInfo, table: SymbolTable, node: ast.expr
) -> str | None:
    """Canonical qname a *reference* (not call) points at, e.g. the first
    argument of ``parallel_map(run_trial, ...)``.  Checks nested defs in
    the lexical chain, then module scope/imports."""
    name = _dotted(node)
    if name is None:
        if isinstance(node, ast.Call):
            # functools.partial(f, ...) delegates to f
            inner = _dotted(node.func)
            if inner and inner.split(".")[-1] == "partial" and node.args:
                return resolve_callable_ref(fn, table, node.args[0])
        return None
    head = name.split(".")[0]
    # lexically enclosing nested defs: fn's own nested functions first
    scope: FunctionInfo | None = fn
    while scope is not None:
        candidate = table.function(f"{scope.qname}.{LOCALS_MARK}.{head}")
        if candidate is not None and "." not in name:
            return candidate.qname
        scope = table.function(scope.parent) if scope.parent else None
    return table.resolve(fn.module, name)


def _resolve_call(
    fn: FunctionInfo,
    table: SymbolTable,
    types: dict[str, str],
    call: ast.Call,
) -> tuple[str, bool, str | None]:
    """(callee qname or dotted spelling, resolved?, receiver var)."""
    name = _dotted(call.func)
    if name is None:
        return "<dynamic>", False, None
    parts = name.split(".")
    # var.method(...) / self.method(...) on a known type
    if len(parts) >= 2 and parts[0] in types:
        cls = table.class_(types[parts[0]])
        if cls is not None and len(parts) == 2 and parts[1] in cls.methods:
            return cls.methods[parts[1]].qname, True, parts[0]
        return name, False, parts[0]
    # nested function in the lexical chain (bare name only)
    if len(parts) == 1:
        scope: FunctionInfo | None = fn
        while scope is not None:
            nested = table.function(f"{scope.qname}.{LOCALS_MARK}.{parts[0]}")
            if nested is not None:
                return nested.qname, True, None
            scope = table.function(scope.parent) if scope.parent else None
    resolved = table.resolve(fn.module, name)
    if resolved is None:
        return name, False, None
    if table.function(resolved) is not None or table.class_(resolved) is not None:
        return resolved, True, None
    return resolved, False, None


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call site of every function in the table."""
    graph = CallGraph()
    for fn in table.all_functions():
        types = local_types(fn, table)
        for node in own_body(fn.node):
            if isinstance(node, ast.Call):
                callee, resolved, receiver = _resolve_call(fn, table, types, node)
                graph.add(
                    CallSite(
                        caller=fn.qname,
                        callee=callee,
                        node=node,
                        path=fn.path,
                        resolved=resolved,
                        receiver=receiver,
                    )
                )
    return graph
