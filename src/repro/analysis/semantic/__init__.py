"""IDDE-Lint's whole-program layer: symbols, call graph, dataflow, cache.

The per-file rules (IDDE001–IDDE009) see one AST at a time.  This
subpackage provides the *project* view the interprocedural rule families
(IDDE010–IDDE013) are built on:

* :mod:`.symbols` — package-wide symbol table with aliased-import and
  re-export resolution, classes (frozen-ness), methods, nested functions;
* :mod:`.callgraph` — resolved call edges, including method calls on
  locals with inferable types and references passed as callables;
* :mod:`.dataflow` — a work-list fixpoint for per-function summaries plus
  a structured abstract interpreter over tag-set lattices;
* :mod:`.project` — the :class:`~repro.analysis.semantic.project.Project`
  object handed to project-scoped rules;
* :mod:`.cache` — the on-disk incremental cache keyed by content hashes
  that keeps warm ``idde lint`` runs fast in CI.

Everything is stdlib-``ast`` based: nothing is imported or executed, and
unresolvable references degrade to "no finding", never to a crash.
"""

from __future__ import annotations

from .cache import DEFAULT_CACHE_NAME, LintCache, content_hash, rules_signature
from .callgraph import CallGraph, CallSite, build_call_graph, local_types, own_body
from .dataflow import NO_TAGS, TagInterpreter, fixpoint_summaries
from .project import Project
from .symbols import (
    LOCALS_MARK,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    module_name_for,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "DEFAULT_CACHE_NAME",
    "FunctionInfo",
    "LintCache",
    "LOCALS_MARK",
    "ModuleInfo",
    "NO_TAGS",
    "Project",
    "SymbolTable",
    "TagInterpreter",
    "build_call_graph",
    "content_hash",
    "fixpoint_summaries",
    "local_types",
    "module_name_for",
    "own_body",
    "rules_signature",
]
