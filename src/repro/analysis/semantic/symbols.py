"""Package-wide symbol table: modules, functions, classes, imports.

The per-file rules of :mod:`repro.analysis.rules` see one AST at a time;
the interprocedural rules (IDDE010–IDDE013) need to answer questions like
"which function does ``sp(...)`` call when ``sp`` was imported via ``from
..rng import spawn_rng as sp``" or "is ``GameResult`` frozen" across the
whole linted tree.  This module extracts, per module, the facts those
questions need — definitions, import aliases, re-exports — and resolves
dotted references against them.

Resolution is deliberately *syntactic*: nothing is imported or executed,
so linting broken or heavy modules stays safe and fast.  Unresolvable
references (external libraries, dynamic dispatch) resolve to ``None`` and
every downstream rule treats ``None`` conservatively (no finding).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from ..engine import FileContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
    "LOCALS_MARK",
    "module_name_for",
]

#: Separator marking a nested (closure) function in a qualified name, e.g.
#: ``repro.experiments.sweep.run_sweep.<locals>.worker``.
LOCALS_MARK = "<locals>"


def module_name_for(ctx: FileContext) -> str:
    """Dotted module name for a file context.

    Files under a ``repro`` anchor map into the real package namespace
    (``repro.core.game``); anything else gets a private ``<file>``-rooted
    name so single-file lints still build a one-module table.
    """
    parts = ctx.module_parts
    if ctx.repro_parts:
        return ".".join(("repro", *parts)) if parts else "repro"
    stem = ctx.path.rsplit("/", 1)[-1]
    return f"<file>.{stem[:-3] if stem.endswith('.py') else stem}"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    cls: str | None = None  #: qualified class name for methods
    parent: str | None = None  #: qualified name of the enclosing function

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    def param_annotation(self, name: str) -> ast.expr | None:
        a = self.node.args
        for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            if p.arg == name:
                return p.annotation
        return None

    def bind_args(self, call: ast.Call) -> dict[str, ast.expr]:
        """Map a call's arguments onto this function's parameter names.

        Starred arguments and surplus positionals are dropped (conservative:
        rules simply see fewer bound parameters).  Methods skip ``self``.
        """
        params = self.params
        if self.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        bound: dict[str, ast.expr] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(params):
                bound[params[i]] = arg
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in self.params:
                bound[kw.arg] = kw.value
        return bound


@dataclass
class ClassInfo:
    """One class definition with its immediate methods."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    frozen: bool = False
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)  #: unresolved base refs


@dataclass
class ModuleInfo:
    """Everything the resolver knows about one module."""

    name: str
    path: str
    ctx: FileContext
    #: local name -> absolute dotted target (``np`` -> ``numpy``,
    #: ``spawn_rng`` -> ``repro.rng.spawn_rng``).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``name = expr`` bindings (last assignment wins).
    assigns: dict[str, ast.expr] = field(default_factory=dict)


def _is_frozen_classdef(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            name = _dotted(dec.func)
            if name and name.split(".")[-1] == "dataclass":
                for kw in dec.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _package_of(module: str, ctx: FileContext) -> str:
    """The package a module's relative imports resolve against."""
    filename = ctx.repro_parts[-1] if ctx.repro_parts else ctx.path.rsplit("/", 1)[-1]
    if filename == "__init__.py":
        return module
    return module.rsplit(".", 1)[0] if "." in module else ""


def _absolute_import_target(
    module: str, ctx: FileContext, node: ast.ImportFrom
) -> str | None:
    """The absolute dotted module an ``ImportFrom`` statement names."""
    if node.level == 0:
        return node.module
    package = _package_of(module, ctx)
    parts = package.split(".") if package else []
    up = node.level - 1
    if up > len(parts):
        return None  # beyond the package root
    base = parts[: len(parts) - up]
    if node.module:
        base = [*base, *node.module.split(".")]
    return ".".join(base) if base else None


class SymbolTable:
    """All modules of one linted tree, with reference resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._functions: dict[str, FunctionInfo] = {}
        self._classes: dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, contexts: list[FileContext]) -> "SymbolTable":
        table = cls()
        for ctx in contexts:
            table._add_module(ctx)
        return table

    def _add_module(self, ctx: FileContext) -> None:
        name = module_name_for(ctx)
        info = ModuleInfo(name=name, path=ctx.path, ctx=ctx)
        self.modules[name] = info
        self._collect_imports(info)
        self._collect_definitions(info)

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                target_mod = _absolute_import_target(info.name, info.ctx, node)
                if target_mod is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{target_mod}.{alias.name}"

    def _collect_definitions(self, info: ModuleInfo) -> None:
        for stmt in info.ctx.tree.body:
            self._collect_stmt(info, stmt, prefix=info.name, cls=None, parent=None)

    def _collect_stmt(
        self,
        info: ModuleInfo,
        stmt: ast.stmt,
        *,
        prefix: str,
        cls: str | None,
        parent: str | None,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{prefix}.{stmt.name}"
            fn = FunctionInfo(
                qname=qname,
                module=info.name,
                name=stmt.name,
                node=stmt,
                path=info.path,
                cls=cls,
                parent=parent,
            )
            self._functions[qname] = fn
            if cls is not None and parent is None:
                self._classes[cls].methods[stmt.name] = fn
            elif parent is None:
                info.functions[stmt.name] = fn
            # nested defs: their own nodes, qualified through <locals>
            nested_prefix = f"{qname}.{LOCALS_MARK}"
            for sub in stmt.body:
                self._collect_stmt(
                    info, sub, prefix=nested_prefix, cls=None, parent=qname
                )
        elif isinstance(stmt, ast.ClassDef):
            qname = f"{prefix}.{stmt.name}"
            ci = ClassInfo(
                qname=qname,
                module=info.name,
                name=stmt.name,
                node=stmt,
                path=info.path,
                frozen=_is_frozen_classdef(stmt),
                base_names=[b for b in (_dotted(base) for base in stmt.bases) if b],
            )
            self._classes[qname] = ci
            if parent is None and cls is None:
                info.classes[stmt.name] = ci
            for sub in stmt.body:
                self._collect_stmt(info, sub, prefix=qname, cls=qname, parent=parent)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)) and parent is None and cls is None:
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None:
                return
            for t in targets:
                if isinstance(t, ast.Name):
                    info.assigns[t.id] = value
        elif isinstance(stmt, (ast.If, ast.Try)):
            # typing guards (`if TYPE_CHECKING:`) and import fallbacks still
            # contribute definitions/imports; walk their bodies at same level.
            bodies = [stmt.body, stmt.orelse]
            if isinstance(stmt, ast.Try):
                bodies = [stmt.body, stmt.orelse, stmt.finalbody]
                bodies.extend(h.body for h in stmt.handlers)
            for body in bodies:
                for sub in body:
                    self._collect_stmt(info, sub, prefix=prefix, cls=cls, parent=parent)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def function(self, qname: str | None) -> FunctionInfo | None:
        if qname is None:
            return None
        fn = self._functions.get(qname)
        if fn is not None:
            return fn
        # method reference spelled through a re-exported class name
        if "." in qname:
            cls_q, _, meth = qname.rpartition(".")
            ci = self._classes.get(cls_q)
            if ci is not None:
                return ci.methods.get(meth)
        return None

    def class_(self, qname: str | None) -> ClassInfo | None:
        if qname is None:
            return None
        return self._classes.get(qname)

    def all_functions(self) -> Iterator[FunctionInfo]:
        yield from self._functions.values()

    def frozen_classes(self) -> dict[str, ClassInfo]:
        return {q: c for q, c in self._classes.items() if c.frozen}

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def canonical(self, target: str | None, *, _depth: int = 0) -> str | None:
        """Chase import aliases and re-exports to a defining site.

        ``repro.core.IddeUGame`` (re-exported via ``core/__init__``) becomes
        ``repro.core.game.IddeUGame``.  External targets (``numpy.random``)
        pass through unchanged — they are canonical as far as we can see.
        """
        if target is None or _depth > 16:
            return target
        if target in self.modules or target in self._functions or target in self._classes:
            return target
        # Find the longest known-module prefix, then chase the next segment
        # through that module's imports (the re-export case).
        parts = target.split(".")
        for i in range(len(parts) - 1, 0, -1):
            head = ".".join(parts[:i])
            mod = self.modules.get(head)
            if mod is None:
                continue
            first, rest = parts[i], parts[i + 1 :]
            if first in mod.imports:
                base = self.canonical(mod.imports[first], _depth=_depth + 1)
                if not rest:
                    return base
                return self.canonical(".".join([base, *rest]), _depth=_depth + 1)
            return target  # defined (or unknown) in this module: canonical as-is
        return target

    def resolve(self, module: str, dotted: str | None) -> str | None:
        """Canonical qualified name for a dotted reference in ``module``."""
        if dotted is None:
            return None
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in mod.imports:
            base = mod.imports[head]
            full = f"{base}.{rest}" if rest else base
        elif head in mod.functions or head in mod.classes or head in mod.assigns:
            full = f"{module}.{dotted}"
        else:
            return None  # builtin, local variable, or unknown
        return self.canonical(full)
