"""On-disk incremental cache for lint runs, keyed by file content hash.

The cache document stores, per file, the content hash and the per-file
findings produced last run, plus one *project* entry keyed by the hash of
every ``(path, content-hash)`` pair: the interprocedural findings are only
valid for an exact tree state, so any changed/added/removed file re-runs
the semantic pass while untouched files still skip their per-file rules.

Entries are invalidated wholesale when the *rule signature* (registered
rule names, codes and scopes, plus a format version) changes, so editing
a rule never serves stale findings.  Cache files are an optimisation
only: corrupt or unreadable documents are ignored, never fatal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..findings import Finding

__all__ = ["LintCache", "DEFAULT_CACHE_NAME", "content_hash", "rules_signature"]

DEFAULT_CACHE_NAME = ".idde-lint-cache.json"

#: Bump when the cache layout (not the rules) changes incompatibly.
_FORMAT = 2


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def rules_signature() -> str:
    """A fingerprint of the registered rule set (names, codes, scopes)."""
    from ..registry import RULES

    spec = ";".join(
        f"{r.name}:{','.join(r.codes)}:{r.scope}" for r in RULES.values()
    )
    return hashlib.sha256(f"v{_FORMAT}|{spec}".encode("utf-8")).hexdigest()[:24]


def _findings_to_json(findings: list[Finding]) -> list[dict[str, object]]:
    return [f.to_dict() for f in findings]


def _findings_from_json(entries: object) -> list[Finding]:
    out: list[Finding] = []
    if not isinstance(entries, list):
        return out
    for e in entries:
        out.append(
            Finding(
                path=str(e["path"]),
                line=int(e["line"]),
                col=int(e["col"]),
                code=str(e["code"]),
                message=str(e["message"]),
                snippet=str(e.get("snippet", "")),
            )
        )
    return out


@dataclass
class LintCache:
    """One loaded cache document bound to its path."""

    path: Path
    signature: str = field(default_factory=rules_signature)
    files: dict[str, dict] = field(default_factory=dict)
    project: dict = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    # ------------------------------------------------------------------
    # load/save
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "LintCache":
        path = Path(path)
        cache = cls(path=path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(doc, dict) or doc.get("signature") != cache.signature:
            return cache  # rule set changed: start fresh
        files = doc.get("files")
        if isinstance(files, dict):
            cache.files = files
        project = doc.get("project")
        if isinstance(project, dict):
            cache.project = project
        return cache

    def save(self) -> None:
        doc = {
            "schema": "idde-lint-cache/1",
            "signature": self.signature,
            "files": self.files,
            "project": self.project,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:  # read-only checkout: the cache is best-effort
            pass

    # ------------------------------------------------------------------
    # per-file findings
    # ------------------------------------------------------------------
    def get_file(self, path: str, digest: str) -> list[Finding] | None:
        entry = self.files.get(path)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        self.hits += 1
        return _findings_from_json(entry.get("findings"))

    def put_file(self, path: str, digest: str, findings: list[Finding]) -> None:
        self.files[path] = {"hash": digest, "findings": _findings_to_json(findings)}

    # ------------------------------------------------------------------
    # project (interprocedural) findings
    # ------------------------------------------------------------------
    @staticmethod
    def tree_hash(digests: dict[str, str]) -> str:
        joined = ";".join(f"{p}={h}" for p, h in sorted(digests.items()))
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:24]

    def get_project(self, tree_digest: str) -> list[Finding] | None:
        if self.project.get("hash") != tree_digest:
            self.misses += 1
            return None
        self.hits += 1
        return _findings_from_json(self.project.get("findings"))

    def put_project(self, tree_digest: str, findings: list[Finding]) -> None:
        self.project = {"hash": tree_digest, "findings": _findings_to_json(findings)}

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer part of the linted tree."""
        for stale in set(self.files) - live_paths:
            del self.files[stale]
