"""The whole-program context handed to project-scoped lint rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..engine import FileContext
from .callgraph import CallGraph, build_call_graph
from .symbols import FunctionInfo, SymbolTable, module_name_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    import ast

    from ..findings import Finding

__all__ = ["Project"]


@dataclass
class Project:
    """Symbol table + call graph over every parsed file of one lint run.

    Project-scoped rules receive exactly one :class:`Project` per run and
    emit findings through :meth:`finding`, which routes location and
    snippet extraction through the owning file's :class:`FileContext`.
    Expensive shared analyses can memoise on the project instance via
    :meth:`shared` (e.g. two rules consulting the same summary table).
    """

    files: dict[str, FileContext]  #: path -> context
    symbols: SymbolTable
    graph: CallGraph
    _shared: dict[str, object] = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, contexts: list[FileContext]) -> "Project":
        table = SymbolTable.build(contexts)
        graph = build_call_graph(table)
        return cls(
            files={ctx.path: ctx for ctx in contexts}, symbols=table, graph=graph
        )

    # ------------------------------------------------------------------
    # rule conveniences
    # ------------------------------------------------------------------
    def finding(self, path: str, node: "ast.AST", code: str, message: str) -> "Finding":
        return self.files[path].finding(node, code, message)

    def functions(self) -> Iterator[FunctionInfo]:
        """Every function in the project, in deterministic qname order."""
        return iter(sorted(self.symbols.all_functions(), key=lambda f: f.qname))

    def module_of(self, ctx: FileContext) -> str:
        return module_name_for(ctx)

    def shared(self, key: str, compute) -> object:
        """Memoise a cross-rule analysis result on this project."""
        if key not in self._shared:
            self._shared[key] = compute()
        return self._shared[key]
