"""IDDE-Lint: a rule-based AST invariant checker for this repository.

The reproduction's correctness rests on conventions the test suite cannot
see: RNG discipline (every stochastic draw flows through :mod:`repro.rng`
so trials are reproducible across worker processes), unit honesty (the
conventions documented in :mod:`repro.units`), immutability of frozen
profile/value types, and determinism of the potential-game core.  This
subpackage enforces those conventions statically so refactoring PRs cannot
silently break them.

Usage
-----
Command line::

    idde lint src/            # human-readable report, exit 1 on findings
    idde lint src/ --format json

Programmatic::

    from repro.analysis import lint_paths
    findings = lint_paths(["src/repro"])

Each finding carries a stable rule code (``IDDE001``...).  Findings can be
suppressed per line with ``# idde: noqa[IDDE001]`` (or a bare
``# idde: noqa`` for all codes) and grandfathered via a JSON baseline file
(see :mod:`repro.analysis.baseline`).  Rule documentation lives in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .engine import FileContext, iter_python_files, lint_paths, lint_source
from .findings import Finding
from .registry import RULES, all_codes, rule
from .report import render_json, render_text

# Importing the rules package registers every built-in rule.
from . import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "RULES",
    "all_codes",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "rule",
    "write_baseline",
]
